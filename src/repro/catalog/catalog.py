"""The versioned SIT catalog: build → serve → feedback → invalidate → refresh.

The paper treats SITs as build-once statistics and studies how to best
*use* a pool (Section 3); a production estimator must also own the
companion lifecycle.  :class:`StatisticsCatalog` is that subsystem:

* a **versioned registry** of SITs with per-SIT provenance
  (:class:`SITMetadata`: build timestamp/cost, build method full-scan or
  sampled, ``diff_H``, and the source-table versions the SIT was built
  against);
* **immutable snapshots** (:class:`CatalogSnapshot`) handed to
  estimators: every catalog mutation publishes a *new* pool object
  (copy-on-write), so a refresh never mutates a pool mid-estimation and
  an in-flight session keeps answering off exactly the statistics it
  started with;
* **one invalidation event path**: :meth:`notify_table_update` bumps the
  table version, drops stale execution-feedback records
  (:class:`repro.stats.feedback.FeedbackRepository`), invalidates the
  derived bitmask-universe prune masks (through the published pool's
  version counter) and bumps the catalog version so version-keyed caches
  above cannot be reused;
* an **incremental refresh** (:meth:`refresh`, see
  :mod:`repro.catalog.refresh`) that rebuilds only stale SITs — full
  scan or Chao1-backed sampling — and optionally re-ranks the pool under
  a space budget with the advisor's scoring.

The catalog is **safe under concurrent writers**: every mutation
(:meth:`notify_table_update`, :meth:`add`, :meth:`remove`, the refresh
apply) runs under one internal re-entrant lock, so invalidation storms
from many threads (see :mod:`repro.ingest`) keep table and catalog
versions strictly monotone with no lost bumps, and :meth:`snapshot`
always observes a consistent (pool, version, metadata) triple.  A
refresh that raced a concurrent *membership* change detects the
conflict at apply time and rolls back (:class:`RefreshConflict`) rather
than clobbering the other writer; concurrent *invalidations* are
harmless because refresh records the table versions it read at entry,
so a table bumped mid-rebuild simply stays stale for the next round.
"""

from __future__ import annotations

import threading
import time
import weakref
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Iterable, Iterator, Mapping

from repro.core.predicates import Attribute, PredicateSet
from repro.engine.database import Database
from repro.engine.expressions import Query
from repro.obs.metrics import MetricsRegistry
from repro.obs.snapshot import StatsSnapshot
from repro.stats.builder import SITBuilder
from repro.stats.feedback import FeedbackRepository
from repro.stats.io import (
    CatalogDocument,
    load_document,
    save_document,
)
from repro.stats.pool import SITPool, build_workload_pool
from repro.stats.sit import SIT

if TYPE_CHECKING:  # pragma: no cover - cycle guard
    from repro.catalog.refresh import RefreshPolicy, RefreshReport

#: the identity of a SIT inside the catalog (``SIT`` itself hashes on its
#: histogram contents too; the registry keys on *what* the SIT describes)
SITKey = tuple[Attribute, PredicateSet]

#: recognised build methods
BUILD_FULL = "full"
BUILD_SAMPLED = "sampled"


def sit_key(sit: SIT) -> SITKey:
    """The registry key of a SIT: (attribute, generating expression)."""
    return (sit.attribute, sit.expression)


class RefreshConflict(RuntimeError):
    """A refresh raced a concurrent membership change and rolled back.

    Raised by the refresh apply when the set of registered SIT keys
    moved between refresh entry and publish (an ``add``/``remove`` won
    the race).  The catalog is left exactly as the concurrent writer
    made it — the refresh's work is discarded, never merged torn.
    Re-running the refresh picks up the new membership.
    """


@dataclass(frozen=True)
class SITMetadata:
    """Provenance of one registered SIT."""

    #: ``time.time()`` at build completion (0.0 == unknown/migrated)
    built_at: float = 0.0
    #: wall-clock seconds the build took
    build_seconds: float = 0.0
    #: ``"full"`` (exact expression scan) or ``"sampled"`` (Chao1-scaled)
    build_method: str = BUILD_FULL
    #: table -> table version the SIT was built against
    source_versions: Mapping[str, int] = field(default_factory=dict)
    #: the SIT's ``diff_H`` (duplicated from the SIT for cheap reporting)
    diff: float = 0.0

    def __post_init__(self) -> None:
        if self.build_method not in (BUILD_FULL, BUILD_SAMPLED):
            raise ValueError(
                f"build_method must be {BUILD_FULL!r} or {BUILD_SAMPLED!r}, "
                f"got {self.build_method!r}"
            )
        object.__setattr__(
            self, "source_versions", dict(self.source_versions)
        )

    def is_stale(self, table_versions: Mapping[str, int], tables: Iterable[str]) -> bool:
        """True when any source table moved past the recorded version."""
        recorded = self.source_versions
        for table in tables:
            if table_versions.get(table, 0) > recorded.get(table, 0):
                return True
        return False

    def to_dict(self) -> dict:
        return {
            "built_at": self.built_at,
            "build_seconds": self.build_seconds,
            "build_method": self.build_method,
            "source_versions": dict(self.source_versions),
        }

    @classmethod
    def from_dict(cls, data: Mapping, diff: float = 0.0) -> "SITMetadata":
        return cls(
            built_at=float(data.get("built_at", 0.0)),
            build_seconds=float(data.get("build_seconds", 0.0)),
            build_method=str(data.get("build_method", BUILD_FULL)),
            source_versions=dict(data.get("source_versions", {})),
            diff=diff,
        )


@dataclass(frozen=True)
class CatalogSnapshot:
    """An immutable, consistent view of the catalog at one version.

    The snapshot's :attr:`pool` is the pool object *published* at snapshot
    time; the catalog never mutates a published pool's membership (every
    mutation publishes a fresh pool), so estimators holding a snapshot are
    isolated from concurrent refreshes.  ``metadata`` is keyed by
    :func:`sit_key`.
    """

    pool: SITPool
    version: int
    table_versions: Mapping[str, int]
    metadata: Mapping[SITKey, SITMetadata]
    created_at: float
    catalog: "StatisticsCatalog | None" = field(
        default=None, repr=False, compare=False
    )

    @property
    def database(self) -> Database | None:
        return self.catalog.database if self.catalog is not None else None

    @property
    def is_current(self) -> bool:
        """False once the owning catalog has moved past this version."""
        return self.catalog is not None and self.catalog.version == self.version

    def metadata_for(self, sit: SIT) -> SITMetadata:
        return self.metadata[sit_key(sit)]

    def stale_sits(self) -> list[SIT]:
        """SITs of this snapshot stale against the *catalog's current*
        table versions (empty when the snapshot has no owning catalog)."""
        if self.catalog is None:
            return []
        current = self.catalog.table_versions
        return [
            sit
            for sit in self.pool
            if self.metadata[sit_key(sit)].is_stale(current, sit.tables)
        ]

    def __len__(self) -> int:
        return len(self.pool)

    def __iter__(self) -> Iterator[SIT]:
        return iter(self.pool)


class StatisticsCatalog:
    """The one owner of the SIT lifecycle for a database.

    Reads go through :meth:`snapshot`; every mutation (``add``,
    ``remove``, :meth:`notify_table_update`, :meth:`refresh`) bumps
    :attr:`version`, and membership changes publish a brand-new
    :class:`~repro.stats.pool.SITPool` so previously handed-out snapshots
    stay frozen.
    """

    def __init__(
        self,
        database: Database | None = None,
        builder: SITBuilder | None = None,
    ):
        if builder is None and database is not None:
            builder = SITBuilder(database)
        if builder is not None and database is None:
            database = builder.database
        self.database = database
        self.builder = builder
        #: guards every mutation and consistent multi-field reads, so
        #: concurrent ``notify_table_update`` storms never lose a bump
        self._lock = threading.RLock()
        #: monotonically increasing; bumped on every catalog mutation
        self.version = 0
        self._table_versions: dict[str, int] = {}
        self._metadata: dict[SITKey, SITMetadata] = {}
        self._pool = SITPool()
        self._feedback: list[FeedbackRepository] = []
        #: live compiled-plan caches of sessions serving this catalog
        #: (weakly held; see :meth:`attach_plan_cache`)
        self._plan_caches: "weakref.WeakSet" = weakref.WeakSet()
        #: lifecycle metrics (refresh/invalidation counters; see
        #: :meth:`metrics_registry`)
        self.metrics = MetricsRegistry()
        #: records skipped by a quarantining :meth:`load` (see
        #: :mod:`repro.stats.io`); empty for healthy files
        self.quarantined: list[dict] = []
        #: optional :class:`repro.obs.StalenessTracker` joined by the
        #: ingest pipeline (see :meth:`attach_staleness`)
        self._staleness = None

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def from_pool(
        cls,
        pool: SITPool,
        database: Database | None = None,
        builder: SITBuilder | None = None,
        build_method: str = BUILD_FULL,
    ) -> "StatisticsCatalog":
        """Wrap an existing pool (serve-only unless a database is given).

        Metadata is synthesized: every SIT is recorded as built *now*
        against the current (all-zero) table versions with the given
        method, so nothing starts stale.
        """
        catalog = cls(database, builder)
        now = time.time()
        for sit in pool:
            catalog._register(
                sit,
                SITMetadata(
                    built_at=now,
                    build_method=build_method,
                    source_versions=catalog._source_versions_of(sit),
                    diff=sit.diff,
                ),
            )
        catalog._publish([sit for sit in pool])
        return catalog

    @classmethod
    def build(
        cls,
        database: Database,
        queries: Iterable[Query],
        max_joins: int = 2,
        builder: SITBuilder | None = None,
    ) -> "StatisticsCatalog":
        """Build the paper's ``J_{max_joins}`` workload pool into a catalog."""
        catalog = cls(database, builder)
        assert catalog.builder is not None
        method = (
            BUILD_SAMPLED
            if type(catalog.builder).__name__ == "SamplingSITBuilder"
            or hasattr(catalog.builder, "sample_fraction")
            else BUILD_FULL
        )
        started = time.time()
        pool = build_workload_pool(catalog.builder, queries, max_joins)
        elapsed = time.time() - started
        per_sit = elapsed / max(1, len(pool))
        now = time.time()
        for sit in pool:
            catalog._register(
                sit,
                SITMetadata(
                    built_at=now,
                    build_seconds=per_sit,
                    build_method=method,
                    source_versions=catalog._source_versions_of(sit),
                    diff=sit.diff,
                ),
            )
        catalog._publish(list(pool))
        catalog.metrics.counter("catalog.sits_built").inc(len(pool))
        return catalog

    @classmethod
    def load(
        cls,
        path,
        database: Database | None = None,
        builder: SITBuilder | None = None,
        *,
        quarantine: bool = True,
    ) -> "StatisticsCatalog":
        """Load a catalog from a v2 file (v1 pool files migrate).

        ``quarantine=True`` (the default) makes the load *crash-safe*:
        torn or corrupt SIT records — a truncated save, a flipped bit
        caught by the per-record checksum — are skipped instead of
        failing the whole catalog.  Every skipped record is kept in
        :attr:`quarantined` and counted under
        ``catalog.quarantined_sits`` so the loss is observable; the
        estimator degrades gracefully over the surviving statistics.
        Pass ``quarantine=False`` to demand a pristine file.
        """
        document = load_document(path, quarantine=quarantine)
        catalog = cls(database, builder)
        catalog._table_versions = dict(document.table_versions)
        metas = document.sit_meta or [{} for _ in document.sits]
        for sit, meta in zip(document.sits, metas):
            catalog._register(sit, SITMetadata.from_dict(meta, diff=sit.diff))
        catalog._publish(list(document.sits))
        # the stored version is a floor: loading itself published once
        catalog.version = max(catalog.version, int(document.catalog_version))
        catalog.quarantined = list(document.quarantined)
        if catalog.quarantined:
            catalog.metrics.counter("catalog.quarantined_sits").inc(
                len(catalog.quarantined)
            )
        return catalog

    def save(self, path) -> None:
        """Persist the catalog (v2 format) to ``path``."""
        with self._lock:
            sits = list(self._pool)
            document = CatalogDocument(
                sits=sits,
                sit_meta=[self._metadata[sit_key(s)].to_dict() for s in sits],
                table_versions=dict(self._table_versions),
                catalog_version=self.version,
            )
        save_document(document, path)

    # ------------------------------------------------------------------
    # Registry internals
    # ------------------------------------------------------------------
    def _source_versions_of(self, sit: SIT) -> dict[str, int]:
        return {
            table: self._table_versions.get(table, 0) for table in sit.tables
        }

    def _register(self, sit: SIT, metadata: SITMetadata) -> None:
        self._metadata[sit_key(sit)] = metadata

    def _publish(self, sits: list[SIT]) -> None:
        """Install a fresh pool (copy-on-write) and bump the version."""
        with self._lock:
            self._pool = SITPool(sits)
            self.version += 1
            self.metrics.gauge("catalog.version").set(float(self.version))
            self.metrics.gauge("catalog.sit_count").set(float(len(sits)))

    # ------------------------------------------------------------------
    # Read surface
    # ------------------------------------------------------------------
    @property
    def pool(self) -> SITPool:
        """The currently published pool (frozen membership; prefer
        :meth:`snapshot` so callers also get version + metadata)."""
        return self._pool

    @property
    def table_versions(self) -> Mapping[str, int]:
        with self._lock:
            return dict(self._table_versions)

    def table_version(self, table: str) -> int:
        return self._table_versions.get(table, 0)

    def metadata_for(self, sit: SIT) -> SITMetadata:
        return self._metadata[sit_key(sit)]

    def snapshot(self) -> CatalogSnapshot:
        """An immutable view of the catalog at its current version."""
        with self._lock:
            return CatalogSnapshot(
                pool=self._pool,
                version=self.version,
                table_versions=dict(self._table_versions),
                metadata=dict(self._metadata),
                created_at=time.time(),
                catalog=self,
            )

    def stale_sits(self) -> list[SIT]:
        """Registered SITs whose source tables moved since their build."""
        with self._lock:
            return [
                sit
                for sit in self._pool
                if self._metadata[sit_key(sit)].is_stale(
                    self._table_versions, sit.tables
                )
            ]

    def __len__(self) -> int:
        return len(self._pool)

    def __iter__(self) -> Iterator[SIT]:
        return iter(self._pool)

    # ------------------------------------------------------------------
    # Mutation surface
    # ------------------------------------------------------------------
    def add(self, sit: SIT, metadata: SITMetadata | None = None) -> None:
        """Register (or replace) one SIT; publishes a new pool."""
        with self._lock:
            if metadata is None:
                metadata = SITMetadata(
                    built_at=time.time(),
                    source_versions=self._source_versions_of(sit),
                    diff=sit.diff,
                )
            key = sit_key(sit)
            sits = [s for s in self._pool if sit_key(s) != key]
            sits.append(sit)
            self._register(sit, metadata)
            self._publish(sits)
            self.metrics.counter("catalog.sits_built").inc()

    def remove(self, sit: SIT) -> bool:
        """Drop one SIT by key; returns whether anything was removed."""
        with self._lock:
            key = sit_key(sit)
            sits = [s for s in self._pool if sit_key(s) != key]
            if len(sits) == len(self._pool):
                return False
            self._metadata.pop(key, None)
            self._publish(sits)
            self.metrics.counter("catalog.sits_dropped").inc()
            return True

    # ------------------------------------------------------------------
    # Feedback + invalidation: the one event path
    # ------------------------------------------------------------------
    def attach_feedback(self, repository: FeedbackRepository) -> FeedbackRepository:
        """Join a feedback repository to the invalidation event path.

        Once attached, every :meth:`notify_table_update` drops the
        repository's records touching the updated table — execution
        feedback is exact only for the data it was observed on.
        """
        if repository not in self._feedback:
            self._feedback.append(repository)
        return repository

    def attach_plan_cache(self, cache) -> None:
        """Register a session's compiled-plan cache for status reporting.

        Caches are weakly held: a retired session's cache disappears from
        the aggregate on garbage collection.  Coherence does *not* depend
        on this registration — each :class:`~repro.core.plancache
        .PlanCache` revalidates its pinned pool's version on every
        lookup, so :meth:`notify_table_update` invalidates plans through
        the existing path whether or not the cache is attached.
        """
        self._plan_caches.add(cache)

    def attach_staleness(self, tracker) -> None:
        """Join a :class:`repro.obs.StalenessTracker` so ``status()`` and
        the metrics registry surface the ingest pipeline's staleness and
        drift view alongside the lifecycle counters.  The tracker is fed
        by :class:`repro.ingest.IngestPipeline`, not by the catalog —
        attaching is pure observability plumbing."""
        self._staleness = tracker

    def notify_table_update(self, table: str) -> int:
        """Record that ``table``'s data changed; returns the new table
        version.

        One call flows through the whole invalidation path:

        1. the table version is bumped (making dependent SITs *stale*);
        2. attached feedback repositories drop records touching the table;
        3. the builder evicts its memoized base histograms / counts for
           the table, so a later refresh reads current data;
        4. the published pool's derived-state version is bumped so bitmask
           universes rebuild their Section 3.4 prune masks;
        5. the catalog version is bumped so version-keyed caches and
           sessions observe the change.
        """
        with self._lock:
            version = self._table_versions.get(table, 0) + 1
            self._table_versions[table] = version
            dropped = 0
            for repository in self._feedback:
                dropped += repository.invalidate_table(table)
            if self.builder is not None:
                self.builder.invalidate_table(table)
            self._pool.invalidate_derived()
            self.version += 1
            metrics = self.metrics
            metrics.counter("catalog.invalidations").inc()
            metrics.counter("catalog.feedback_dropped").inc(dropped)
            metrics.gauge("catalog.version").set(float(self.version))
            metrics.gauge("catalog.stale_sits").set(
                float(len(self.stale_sits()))
            )
            return version

    # ------------------------------------------------------------------
    # Refresh
    # ------------------------------------------------------------------
    def refresh(
        self,
        policy: "RefreshPolicy | None" = None,
        queries: Iterable[Query] | None = None,
    ) -> "RefreshReport":
        """Rebuild stale SITs under ``policy`` (see
        :func:`repro.catalog.refresh.execute_refresh`)."""
        from repro.catalog.refresh import RefreshPolicy, execute_refresh

        return execute_refresh(
            self, policy if policy is not None else RefreshPolicy(), queries
        )

    def _apply_refresh(
        self,
        sits: list[SIT],
        metadata: dict[SITKey, SITMetadata],
        expected_keys: "frozenset[SITKey] | None" = None,
    ) -> None:
        """Install a refresh outcome (called by the refresh engine).

        ``expected_keys`` is the registry membership the refresh read at
        entry.  When given and the membership moved meanwhile (a
        concurrent ``add``/``remove`` won the race), the apply raises
        :class:`RefreshConflict` and leaves the catalog exactly as the
        concurrent writer made it — complete coherently or roll back,
        never publish a torn merge.  Concurrent *invalidations* do not
        conflict: the refresh recorded the table versions it read at
        entry, so a table bumped mid-rebuild stays stale.
        """
        with self._lock:
            if expected_keys is not None:
                current = frozenset(sit_key(s) for s in self._pool)
                if current != expected_keys:
                    self.metrics.counter("catalog.refresh_conflicts").inc()
                    raise RefreshConflict(
                        "catalog membership changed during refresh "
                        f"({len(current ^ expected_keys)} keys moved); "
                        "refresh rolled back — re-run to pick up the "
                        "new membership"
                    )
            self._metadata = metadata
            self._publish(sits)
            self.metrics.counter("catalog.refreshes").inc()
            self.metrics.gauge("catalog.stale_sits").set(
                float(len(self.stale_sits()))
            )

    # ------------------------------------------------------------------
    # Observability
    # ------------------------------------------------------------------
    def status(self) -> dict:
        """A JSON-ready lifecycle summary (the CLI's ``status`` output)."""
        with self._lock:
            stale = self.stale_sits()
            by_method: dict[str, int] = {}
            for metadata in self._metadata.values():
                by_method[metadata.build_method] = (
                    by_method.get(metadata.build_method, 0) + 1
                )
        caches = list(self._plan_caches)
        plan_cache = {
            "caches": len(caches),
            "plans": sum(len(c) for c in caches),
            "hits": sum(c.hits for c in caches),
            "misses": sum(c.misses for c in caches),
            "compiles": sum(c.compiles for c in caches),
            "evictions": sum(c.evictions for c in caches),
            "bytes": sum(c.bytes for c in caches),
        }
        total = plan_cache["hits"] + plan_cache["misses"]
        plan_cache["hit_rate"] = plan_cache["hits"] / total if total else 0.0
        with self._lock:
            pool = self._pool
            out = {
                "version": self.version,
                "sits": len(pool),
                "base_histograms": sum(1 for s in pool if s.is_base),
                "conditioned_sits": sum(1 for s in pool if not s.is_base),
                "stale_sits": len(stale),
                "table_versions": dict(self._table_versions),
                "build_methods": by_method,
                "feedback_repositories": len(self._feedback),
                "plan_cache": plan_cache,
            }
        if self._staleness is not None:
            out["ingest"] = self._staleness.status()
        return out

    def metrics_registry(self) -> MetricsRegistry:
        """Lifecycle metrics under the ``catalog.*`` namespace."""
        registry = MetricsRegistry()
        registry.merge(self.metrics)
        registry.gauge("catalog.version").set(float(self.version))
        registry.gauge("catalog.sit_count").set(float(len(self._pool)))
        registry.gauge("catalog.stale_sits").set(float(len(self.stale_sits())))
        if self._feedback:
            totals: dict[str, float] = {}
            for repository in self._feedback:
                for key, value in repository.counters().items():
                    totals[key] = totals.get(key, 0.0) + value
            for key, value in totals.items():
                registry.gauge(f"catalog.{key}").set(value)
        caches = list(self._plan_caches)
        if caches:
            gauge = registry.gauge
            gauge("plan_cache.caches").set(float(len(caches)))
            gauge("plan_cache.plans").set(float(sum(len(c) for c in caches)))
            gauge("plan_cache.hits").set(float(sum(c.hits for c in caches)))
            gauge("plan_cache.misses").set(
                float(sum(c.misses for c in caches))
            )
            gauge("plan_cache.compiles").set(
                float(sum(c.compiles for c in caches))
            )
            gauge("plan_cache.evictions").set(
                float(sum(c.evictions for c in caches))
            )
            gauge("plan_cache.bytes").set(float(sum(c.bytes for c in caches)))
        if self._staleness is not None:
            for name, value in self._staleness.metrics().items():
                registry.gauge(f"ingest.{name}").set(float(value))
        return registry

    def stats_snapshot(self) -> StatsSnapshot:
        """The catalog's lifecycle state as a ``StatsSnapshot`` (the
        ``catalog`` namespace carries versions, counts and refresh /
        invalidation counters)."""
        return StatsSnapshot.from_registry(
            self.metrics_registry(),
            meta={"subsystem": "catalog", "version": self.version},
        )


def refreshed_metadata(
    catalog: StatisticsCatalog,
    sit: SIT,
    build_method: str,
    build_seconds: float,
    table_versions: Mapping[str, int] | None = None,
) -> SITMetadata:
    """Fresh provenance for a just-rebuilt SIT.

    ``table_versions`` should be the versions the refresh *read at
    entry*: recording the versions current at rebuild time would mark a
    SIT fresh against an update that arrived mid-rebuild — a lost
    invalidation under a write storm.  Falls back to the catalog's
    current versions for single-writer callers.
    """
    if table_versions is None:
        table_versions = catalog.table_versions
    return SITMetadata(
        built_at=time.time(),
        build_seconds=build_seconds,
        build_method=build_method,
        source_versions={
            table: table_versions.get(table, 0) for table in sit.tables
        },
        diff=sit.diff,
    )


__all__ = [
    "BUILD_FULL",
    "BUILD_SAMPLED",
    "CatalogSnapshot",
    "RefreshConflict",
    "SITKey",
    "SITMetadata",
    "StatisticsCatalog",
    "refreshed_metadata",
    "sit_key",
]
