"""Incremental catalog refresh: rebuild only what table updates staled.

A refresh is the lifecycle's write path.  Given a
:class:`~repro.catalog.catalog.StatisticsCatalog` whose table versions
have moved past some SITs' recorded source versions, ``execute_refresh``

1. partitions the registered SITs into *fresh* (kept as-is, same objects)
   and *stale* (source table updated since build);
2. rebuilds the stale ones, grouped by generating expression so each
   expression executes exactly once — with the catalog's full-scan
   :class:`~repro.stats.builder.SITBuilder` or, under
   ``RefreshPolicy(method="sampled")``, a
   :class:`~repro.stats.sampling.SamplingSITBuilder` whose Chao1-scaled
   histograms trade accuracy for a fraction of the scan cost (Shin's
   sample-backed refresh argument);
3. optionally re-runs the advisor's scoring over the *rebuilt* pool under
   a space budget (``max_sits``), dropping the lowest-value conditioned
   SITs — ``score = diff_H * applicability / (1 + joins)``, the
   Section 3.5 policy, with applicability taken from the optional
   workload;
4. atomically publishes the new pool (snapshot isolation: sessions pinned
   to older snapshots are untouched) and returns a
   :class:`RefreshReport`.

A refresh is **storm-hardened**: it either completes coherently or
rolls back.  Membership, metadata and table versions are read in one
consistent snapshot at entry; rebuilt SITs record the *entry* table
versions, so an invalidation that lands mid-rebuild leaves them stale
for the next round instead of being silently absorbed (no lost
invalidations).  A concurrent ``add``/``remove`` is detected at publish
and raises :class:`~repro.catalog.catalog.RefreshConflict` with the
catalog left untouched by the refresh.  The seeded
``refresh_during_storm`` injection point
(:data:`repro.resilience.POINT_REFRESH_DURING_STORM`) fires inside the
rebuild loop, before anything is published — an injected fault aborts
the whole round with the catalog exactly as it was (counted under
``catalog.refresh_aborts``).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Iterable

from repro.core.predicates import PredicateSet
from repro.engine.expressions import Query
from repro.resilience.faults import POINT_REFRESH_DURING_STORM, inject
from repro.stats.builder import SITBuilder
from repro.stats.sit import SIT

from repro.catalog.catalog import (
    BUILD_FULL,
    BUILD_SAMPLED,
    SITKey,
    SITMetadata,
    StatisticsCatalog,
    refreshed_metadata,
    sit_key,
)


@dataclass(frozen=True)
class RefreshPolicy:
    """How a refresh rebuilds and what it keeps.

    ``method``
        ``"full"`` re-executes each stale generating expression exactly
        (the build-time default); ``"sampled"`` rebuilds from a uniform
        sample with Chao1 distinct-count scaling.
    ``sample_fraction`` / ``min_sample_rows`` / ``sampling_seed``
        forwarded to :class:`~repro.stats.sampling.SamplingSITBuilder`
        when ``method="sampled"``.
    ``max_sits``
        space budget: after rebuilding, keep at most this many
        *conditioned* SITs (base histograms are always kept), re-ranked
        with the advisor's score.  ``None`` keeps everything.
    ``min_diff``
        conditioned SITs whose rebuilt ``diff_H`` fell below this provide
        no benefit over the base histogram (Section 3.5 / Example 4) and
        are dropped.
    ``keep_keys``
        an explicit allow-list of *conditioned* :data:`SITKey` to retain
        (base histograms are always kept); everything conditioned outside
        it is dropped.  This is the apply path of the self-tuning loop
        (:mod:`repro.advisor`), which decides membership by measured
        q-error rather than the score heuristic.  ``None`` (the default)
        disables the filter.
    """

    method: str = BUILD_FULL
    sample_fraction: float = 0.1
    min_sample_rows: int = 200
    sampling_seed: int = 0
    max_sits: int | None = None
    min_diff: float = 0.0
    keep_keys: frozenset | None = None

    def __post_init__(self) -> None:
        if self.method not in (BUILD_FULL, BUILD_SAMPLED):
            raise ValueError(
                f"method must be {BUILD_FULL!r} or {BUILD_SAMPLED!r}, "
                f"got {self.method!r}"
            )
        if self.max_sits is not None and self.max_sits < 0:
            raise ValueError("max_sits must be non-negative")
        if self.keep_keys is not None:
            object.__setattr__(self, "keep_keys", frozenset(self.keep_keys))


@dataclass
class RefreshReport:
    """What one :meth:`StatisticsCatalog.refresh` call did."""

    policy: RefreshPolicy
    #: catalog version before / after the refresh
    version_before: int = 0
    version_after: int = 0
    #: keys rebuilt this round (stale at entry)
    rebuilt: list[SITKey] = field(default_factory=list)
    #: keys kept untouched (fresh at entry; same SIT objects)
    kept: list[SITKey] = field(default_factory=list)
    #: keys dropped by the space budget / min_diff filter
    dropped: list[SITKey] = field(default_factory=list)
    #: wall-clock seconds spent rebuilding
    build_seconds: float = 0.0

    @property
    def rebuilt_count(self) -> int:
        return len(self.rebuilt)

    def to_dict(self) -> dict:
        return {
            "method": self.policy.method,
            "version_before": self.version_before,
            "version_after": self.version_after,
            "rebuilt": len(self.rebuilt),
            "kept": len(self.kept),
            "dropped": len(self.dropped),
            "build_seconds": self.build_seconds,
        }


def _refresh_builder(
    catalog: StatisticsCatalog, policy: RefreshPolicy
) -> SITBuilder:
    """The builder the policy prescribes, bound to the catalog's database."""
    if catalog.database is None:
        raise RuntimeError(
            "catalog has no database attached; refresh requires one "
            "(construct the catalog with a Database or SITBuilder)"
        )
    if policy.method == BUILD_SAMPLED:
        from repro.stats.sampling import SamplingSITBuilder

        base = catalog.builder
        kwargs = dict(
            sample_fraction=policy.sample_fraction,
            min_sample_rows=policy.min_sample_rows,
            sampling_seed=policy.sampling_seed,
        )
        if base is not None:
            kwargs.update(
                histogram_builder=base.histogram_builder,
                max_buckets=base.max_buckets,
                exact_diffs=base.exact_diffs,
            )
        return SamplingSITBuilder(catalog.database, **kwargs)
    if catalog.builder is not None and not hasattr(
        catalog.builder, "sample_fraction"
    ):
        return catalog.builder
    return SITBuilder(catalog.database)


def _advisor_scores(
    sits: Iterable[SIT], queries: Iterable[Query] | None
) -> dict[SITKey, float]:
    """Advisor scores for conditioned SITs: ``diff * applicability /
    (1 + joins)``; applicability defaults to 1 without a workload."""
    query_list = list(queries) if queries is not None else []
    scores: dict[SITKey, float] = {}
    for sit in sits:
        if sit.is_base:
            continue
        if query_list:
            applicability = sum(
                1 for query in query_list if sit.expression <= query.joins
            )
        else:
            applicability = 1
        scores[sit_key(sit)] = (
            sit.diff * applicability / (1.0 + sit.join_count)
        )
    return scores


def execute_refresh(
    catalog: StatisticsCatalog,
    policy: RefreshPolicy,
    queries: Iterable[Query] | None = None,
) -> RefreshReport:
    """Run one refresh round against ``catalog`` (see module docstring)."""
    # One consistent read of (pool, metadata, table versions) at entry.
    # Rebuilt SITs record *these* versions: an invalidation landing
    # mid-rebuild keeps them stale for the next round (never lost).
    entry = catalog.snapshot()
    entry_versions = dict(entry.table_versions)
    report = RefreshReport(policy=policy, version_before=entry.version)
    stale = [
        sit
        for sit in entry.pool
        if entry.metadata[sit_key(sit)].is_stale(entry_versions, sit.tables)
    ]
    stale_keys = {sit_key(sit) for sit in stale}
    entry_keys = frozenset(sit_key(sit) for sit in entry.pool)

    kept_sits: list[SIT] = []
    metadata: dict[SITKey, SITMetadata] = {}
    for sit in entry.pool:
        key = sit_key(sit)
        if key in stale_keys:
            continue
        kept_sits.append(sit)  # same object: provably untouched
        metadata[key] = entry.metadata[key]
        report.kept.append(key)

    rebuilt_sits: list[SIT] = []
    if stale:
        builder = _refresh_builder(catalog, policy)
        method = policy.method
        # One execution per distinct generating expression (the builder's
        # build_many contract), exactly like the initial pool build.
        by_expression: dict[PredicateSet, list[SIT]] = {}
        for sit in stale:
            by_expression.setdefault(sit.expression, []).append(sit)
        started = time.perf_counter()
        try:
            for expression in sorted(
                by_expression, key=lambda e: (len(e), sorted(map(str, e)))
            ):
                inject(
                    POINT_REFRESH_DURING_STORM,
                    detail=f"expression={expression} "
                    f"version={entry.version}",
                    sits=by_expression[expression],
                )
                attributes = sorted(
                    sit.attribute for sit in by_expression[expression]
                )
                expression_started = time.perf_counter()
                fresh = builder.build_many(expression, attributes)
                per_sit = (time.perf_counter() - expression_started) / max(
                    1, len(fresh)
                )
                for sit in fresh:
                    rebuilt_sits.append(sit)
                    metadata[sit_key(sit)] = refreshed_metadata(
                        catalog,
                        sit,
                        # base histograms are whole-column scans either way
                        BUILD_FULL if sit.is_base else method,
                        per_sit,
                        table_versions=entry_versions,
                    )
                    report.rebuilt.append(sit_key(sit))
        except Exception:
            # nothing was published: the catalog is exactly as the
            # storm left it — a clean rollback, counted
            catalog.metrics.counter("catalog.refresh_aborts").inc()
            raise
        report.build_seconds = time.perf_counter() - started

    sits = kept_sits + rebuilt_sits

    # ------------------------------------------------------------------
    # Space budget / benefit filter (advisor re-run)
    # ------------------------------------------------------------------
    if (
        policy.max_sits is not None
        or policy.min_diff > 0.0
        or policy.keep_keys is not None
    ):
        scores = _advisor_scores(sits, queries)
        conditioned = [sit for sit in sits if not sit.is_base]
        survivors = {
            sit_key(sit)
            for sit in conditioned
            if sit.diff >= policy.min_diff
            and (policy.keep_keys is None or sit_key(sit) in policy.keep_keys)
        }
        if policy.max_sits is not None and len(survivors) > policy.max_sits:
            ranked = sorted(
                (sit for sit in conditioned if sit_key(sit) in survivors),
                key=lambda sit: (-scores[sit_key(sit)], str(sit)),
            )
            survivors = {sit_key(sit) for sit in ranked[: policy.max_sits]}
        filtered: list[SIT] = []
        for sit in sits:
            key = sit_key(sit)
            if sit.is_base or key in survivors:
                filtered.append(sit)
            else:
                report.dropped.append(key)
                metadata.pop(key, None)
        sits = filtered
        if report.dropped:
            catalog.metrics.counter("catalog.sits_dropped").inc(
                len(report.dropped)
            )

    catalog.metrics.gauge("catalog.refresh_seconds").set(report.build_seconds)
    catalog._apply_refresh(sits, metadata, expected_keys=entry_keys)
    catalog.metrics.counter("catalog.sits_rebuilt").inc(len(report.rebuilt))
    report.version_after = catalog.version
    return report


__all__ = ["RefreshPolicy", "RefreshReport", "execute_refresh"]
