"""The estimator-backend shootout: accuracy vs latency vs space.

Races the three :mod:`repro.estimators` backends — the paper's SIT/DP
path, the per-table Bayesian-network estimator and the guaranteed-sample
estimator — over the synthetic snowflake workload plus the TPC-H
motivating query, and merges an ``estimators`` block into the existing
``BENCH_core.json`` (read-modify-write: every other block, including the
acceptance gates, is left byte-for-byte untouched).  Run with::

    PYTHONPATH=src python -m repro.bench.estimators [output.json]

Per backend, over the snowflake workload:

* **accuracy** — median / maximum q-error against the exact
  :class:`~repro.engine.executor.Executor` truth (q-error is the
  symmetric ratio ``max(est, true) / min(est, true)`` with an additive
  floor so empty results stay finite);
* **latency** — best-of-``repeats`` per-query milliseconds in the steady
  regime (the estimator is ``reset()`` between queries, models and
  caches stay warm — the optimizer's per-query cost);
* **space** — ``space_bytes()``: histogram arrays for SIT, CPTs +
  bin edges for the BN, reservoir rows for sampling.

The sampling backend additionally reports how often the truth fell
inside its distribution-free ``error_bound`` (the VC guarantee must hold
on every query) and the mean bound width.

The block also re-times the SIT DP's n7 steady scenario (the
``get_selectivity`` acceptance gate's workload) on this machine and
reports the drift against the recorded ``BENCH_core.json`` number — the
refactor onto the :class:`~repro.estimators.base.Estimator` protocol
must not regress the gate by more than ``SIT_REGRESSION_PCT_MAX``.
"""

from __future__ import annotations

import json
import pathlib
import sys
import time

from repro.bench.perf import DEFAULT_OUTPUT, _best_of, build_scenario
from repro.core.errors import NIndError
from repro.core.get_selectivity import GetSelectivity
from repro.engine.executor import Executor
from repro.estimators import BACKENDS, create_estimator
from repro.workload.queries import WorkloadConfig, WorkloadGenerator
from repro.workload.snowflake import SnowflakeConfig, generate_snowflake
from repro.workload.tpch import TPCHConfig, generate_tpch, motivating_query

#: additive floor keeping q-errors finite on empty-result queries
EPSILON = 1e-9

#: the acceptance bar on SIT n7 steady drift vs the recorded gate run
SIT_REGRESSION_PCT_MAX = 5.0

SNOWFLAKE_SCALE = 0.15
SNOWFLAKE_SEED = 42
WORKLOAD_QUERIES = 12


def q_error(estimate: float, truth: float) -> float:
    high = max(estimate, truth) + EPSILON
    low = min(estimate, truth) + EPSILON
    return high / low


def _median(values: list[float]) -> float:
    ordered = sorted(values)
    mid = len(ordered) // 2
    if len(ordered) % 2:
        return ordered[mid]
    return 0.5 * (ordered[mid - 1] + ordered[mid])


# ----------------------------------------------------------------------
# Workloads
# ----------------------------------------------------------------------
def snowflake_workload():
    """The Section 5 synthetic database with a mixed SPJ workload and a
    J2 SIT pool (the configuration the paper's Figure 7 sweep uses)."""
    from repro.stats.builder import SITBuilder
    from repro.stats.pool import build_workload_pool

    database = generate_snowflake(
        SnowflakeConfig(scale=SNOWFLAKE_SCALE, seed=SNOWFLAKE_SEED)
    )
    generator = WorkloadGenerator(
        database,
        WorkloadConfig(join_count=2, filter_count=2, seed=SNOWFLAKE_SEED),
    )
    queries = generator.generate(WORKLOAD_QUERIES)
    pool = build_workload_pool(SITBuilder(database), queries, max_joins=2)
    return database, pool, queries


def tpch_motivating():
    """The Figure 1 motivating query on the skewed mini TPC-H database."""
    from repro.stats.builder import SITBuilder
    from repro.stats.pool import build_workload_pool

    database = generate_tpch(TPCHConfig())
    query = motivating_query(database)
    pool = build_workload_pool(SITBuilder(database), [query], max_joins=2)
    return database, pool, query


# ----------------------------------------------------------------------
# Per-backend measurement
# ----------------------------------------------------------------------
def bench_backend(name, database, pool, queries, truths, repeats: int) -> dict:
    estimator = create_estimator(name, database, pool)
    # warm pass: reservoirs drawn, BN models built, SIT caches populated
    results = [estimator.estimate(query) for query in queries]

    def steady_pass() -> None:
        for query in queries:
            estimator.reset()
            estimator.estimate(query)

    per_pass = _best_of(steady_pass, repeats)
    errors = [
        q_error(result.selectivity, truth)
        for result, truth in zip(results, truths)
    ]
    out = {
        "median_q_error": _median(errors),
        "max_q_error": max(errors),
        "latency_per_query_ms": per_pass * 1000.0 / len(queries),
        "space_bytes": float(estimator.space_bytes()),
    }
    if name == "sample":
        bounds = [result.error_bound for result in results]
        holds = [
            abs(result.selectivity - truth) <= result.error_bound
            for result, truth in zip(results, truths)
        ]
        out["mean_error_bound"] = sum(bounds) / len(bounds)
        out["bound_holds_rate"] = sum(holds) / len(holds)
    return out


def bench_sit_n7_steady(repeats: int) -> float:
    """Re-time the ``get_selectivity`` gate's n7 steady scenario through
    the current code (milliseconds, best-of)."""
    predicates, pool = build_scenario(7)
    algorithm = GetSelectivity.create(pool, NIndError(), engine="bitmask")
    algorithm(predicates)  # warm the pool-pure caches

    def steady_run() -> None:
        algorithm.reset()
        algorithm(predicates)

    return _best_of(steady_run, repeats) * 1000.0


# ----------------------------------------------------------------------
def run(repeats: int = 7, recorded_n7_steady_ms: float | None = None) -> dict:
    database, pool, queries = snowflake_workload()
    executor = Executor(database)
    truths = [executor.selectivity(query.predicates) for query in queries]

    block: dict = {
        "workload": {
            "database": "snowflake",
            "scale": SNOWFLAKE_SCALE,
            "seed": SNOWFLAKE_SEED,
            "queries": len(queries),
            "pool_sits": len(pool),
        },
        "backends": {},
    }
    for name in BACKENDS:
        block["backends"][name] = bench_backend(
            name, database, pool, queries, truths, repeats
        )

    tpch_database, tpch_pool, tpch_query = tpch_motivating()
    tpch_truth = Executor(tpch_database).selectivity(tpch_query.predicates)
    tpch: dict = {"true_selectivity": tpch_truth}
    for name in BACKENDS:
        estimator = create_estimator(name, tpch_database, tpch_pool)
        result = estimator.estimate(tpch_query)
        tpch[name] = {
            "selectivity": result.selectivity,
            "q_error": q_error(result.selectivity, tpch_truth),
        }
    block["tpch_motivating_query"] = tpch

    # a microsecond-scale measurement needs a deeper best-of to reach
    # the noise floor the recorded gate run was taken at
    steady_ms = bench_sit_n7_steady(max(repeats, 15))
    gate: dict = {
        "sit_n7_steady_ms": steady_ms,
        "regression_pct_max": SIT_REGRESSION_PCT_MAX,
    }
    if recorded_n7_steady_ms:
        drift = (steady_ms / recorded_n7_steady_ms - 1.0) * 100.0
        gate["recorded_n7_steady_ms"] = recorded_n7_steady_ms
        gate["drift_pct"] = drift
        gate["within_gate"] = drift <= SIT_REGRESSION_PCT_MAX
    block["sit_gate"] = gate
    return block


def render(block: dict) -> str:
    work = block["workload"]
    lines = [
        f"estimator shootout (snowflake scale {work['scale']}, "
        f"{work['queries']} queries, {work['pool_sits']} SITs):",
        f"  {'backend':>8}  {'med q-err':>10}  {'max q-err':>10}  "
        f"{'ms/query':>9}  {'space KiB':>10}",
    ]
    for name, row in block["backends"].items():
        lines.append(
            f"  {name:>8}  {row['median_q_error']:>10.3f}  "
            f"{row['max_q_error']:>10.3f}  "
            f"{row['latency_per_query_ms']:>9.3f}  "
            f"{row['space_bytes'] / 1024.0:>10.1f}"
        )
    sample = block["backends"]["sample"]
    lines.append(
        f"  sampling guarantee: mean bound "
        f"{sample['mean_error_bound']:.4f}, holds on "
        f"{sample['bound_holds_rate'] * 100.0:.0f}% of queries"
    )
    tpch = block["tpch_motivating_query"]
    lines.append(
        "tpch motivating query "
        f"(true sel {tpch['true_selectivity']:.6f}): "
        + ", ".join(
            f"{name} q-err {tpch[name]['q_error']:.2f}" for name in BACKENDS
        )
    )
    gate = block["sit_gate"]
    line = f"sit n7 steady: {gate['sit_n7_steady_ms']:.3f} ms"
    if "drift_pct" in gate:
        line += (
            f" (recorded {gate['recorded_n7_steady_ms']:.3f} ms, "
            f"drift {gate['drift_pct']:+.1f}%, "
            f"gate <= +{gate['regression_pct_max']:.0f}%: "
            f"{'pass' if gate['within_gate'] else 'FAIL'})"
        )
    lines.append(line)
    return "\n".join(lines)


def main(argv: list[str] | None = None) -> int:
    argv = sys.argv[1:] if argv is None else argv
    output = pathlib.Path(argv[0]) if argv else DEFAULT_OUTPUT
    existing: dict = {}
    if output.exists():
        existing = json.loads(output.read_text())
    recorded = (
        existing.get("get_selectivity", {})
        .get("n7", {})
        .get("bitmask", {})
        .get("steady_ms")
    )
    started = time.perf_counter()
    block = run(recorded_n7_steady_ms=recorded)
    elapsed = time.perf_counter() - started
    existing["estimators"] = block
    output.write_text(json.dumps(existing, indent=2) + "\n")
    print(render(block))
    print(f"wrote {output} ({elapsed:.1f}s)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
