"""Write-storm benchmark for the streaming-ingestion pipeline.

Measures what continuous ingestion costs the serving path, on this
host, with no projection:

``invalidation``
    raw pipeline throughput — update events admitted, coalesced into
    epochs and applied through the catalog's one
    ``notify_table_update`` path, events per second from first submit
    to quiesce.  The coalescing ratio (events per epoch) is the
    mechanism under test: invalidation cost must be per-*epoch*, not
    per-*event*, or a hot table amplifies a write storm into a pool-
    invalidation storm.
``serving``
    the same request stream estimated twice through an
    :class:`~repro.service.EstimationService` — once idle, once with
    the storm running — so the report carries the measured
    serving-latency delta under write pressure.  The numbers are taken
    on whatever this container gives us (one core, usually): the gate
    budget is deliberately generous and recorded alongside the
    observation, never tuned to flatter it.
``staleness``
    bounded-staleness accounting observed from the client side: every
    storm-phase answer carries ``staleness_s`` provenance (worst
    pending-write age over the tables it touched); the block reports
    the p95 and max over those stamped answers and asserts the tracker
    quiesced (no acked write left unapplied) once the storm drained.

Merges an ``ingest`` block into ``BENCH_core.json`` at the repository
root — read-modify-write, every other block untouched::

    PYTHONPATH=src python -m repro.bench.ingest [output.json]

Gates (reported in the block, non-zero exit on failure):

* ``events_per_s`` >= 1000 — coalesced invalidation keeps up with a
  storm three orders of magnitude faster than refresh;
* ``coalesce_ratio`` >= 2 — the storm really coalesced;
* storm-phase p95 serving latency <= ``latency_budget_ms`` (idle p95
  x 5 + 20 ms — generous because a 1-core container serializes the
  apply thread against the serving workers);
* conservation — accepted events all applied, tracker quiesced.
"""

from __future__ import annotations

import json
import pathlib
import platform
import random
import sys
import threading
import time

from repro.catalog import StatisticsCatalog
from repro.ingest import IngestConfig, IngestOverloaded, IngestPipeline
from repro.obs import StalenessTracker
from repro.service import EstimationService, ServiceConfig
from repro.workload.queries import WorkloadConfig, WorkloadGenerator
from repro.workload.snowflake import SnowflakeConfig, generate_snowflake

DEFAULT_OUTPUT = (
    pathlib.Path(__file__).resolve().parents[3] / "BENCH_core.json"
)


def build_workload(
    scale: float, seed: int, distinct: int
) -> tuple[StatisticsCatalog, list]:
    database = generate_snowflake(SnowflakeConfig(scale=scale, seed=seed))
    generator = WorkloadGenerator(
        database, WorkloadConfig(join_count=2, filter_count=2, seed=seed)
    )
    queries = generator.generate(distinct)
    catalog = StatisticsCatalog.build(database, queries, max_joins=1)
    return catalog, queries


def _percentile(values: list[float], q: float) -> float:
    if not values:
        return 0.0
    ordered = sorted(values)
    return ordered[min(len(ordered) - 1, int(q * len(ordered)))]


def _serve(service: EstimationService, stream: list) -> tuple[
    list[float], list[float]
]:
    """Sequentially estimate the stream; per-request latency (ms) and
    the staleness provenance stamped on each answer."""
    latencies: list[float] = []
    staleness: list[float] = []
    for query in stream:
        t0 = time.perf_counter()
        answer = service.estimate(query, timeout=None)
        latencies.append((time.perf_counter() - t0) * 1000.0)
        if answer.staleness_s is not None:
            staleness.append(answer.staleness_s)
    return latencies, staleness


def run(
    scale: float = 0.05,
    seed: int = 11,
    distinct: int = 4,
    requests: int = 200,
    storm_events: int = 5000,
) -> dict:
    catalog, queries = build_workload(scale, seed, distinct)
    rng = random.Random(seed)
    stream = [rng.choice(queries) for _ in range(requests)]
    tables = sorted(catalog.database.tables)
    config = ServiceConfig(workers=1, queue_depth=max(256, requests))

    with EstimationService(catalog, config=config) as service:
        for query in queries:  # warm the worker session off the clock
            service.estimate(query, timeout=None)
        idle_latencies, _ = _serve(service, stream)

        tracker = StalenessTracker()
        service.attach_staleness(tracker)
        pipeline = IngestPipeline(
            catalog,
            config=IngestConfig(queue_depth=4096),
            tracker=tracker,
        )
        shed = 0
        storm_done = threading.Event()

        def storm() -> None:
            nonlocal shed
            try:
                for index in range(storm_events):
                    try:
                        pipeline.submit(tables[index % len(tables)])
                    except IngestOverloaded:
                        shed += 1
                        time.sleep(0.0002)  # typed backpressure: back off
            finally:
                storm_done.set()

        storm_started = time.perf_counter()
        thread = threading.Thread(target=storm, name="bench-storm")
        thread.start()
        storm_latencies, storm_staleness = _serve(service, stream)
        thread.join(timeout=120.0)
        assert not thread.is_alive(), "storm producer wedged"
        drained = pipeline.flush(timeout=120.0)
        storm_elapsed = time.perf_counter() - storm_started
        snapshot = pipeline.stats_snapshot().ingest
        pipeline.close()
        quiesced = tracker.quiesced()

    accepted = storm_events - shed
    idle_p95 = _percentile(idle_latencies, 0.95)
    storm_p95 = _percentile(storm_latencies, 0.95)
    latency_budget_ms = idle_p95 * 5.0 + 20.0
    gates = {
        "events_per_s_floor": 1000.0,
        "events_per_s_ok": accepted / storm_elapsed >= 1000.0,
        "coalesce_ratio_floor": 2.0,
        "coalesce_ratio_ok": snapshot.get("coalesce_ratio", 0.0) >= 2.0,
        "latency_budget_ms": latency_budget_ms,
        "latency_ok": storm_p95 <= latency_budget_ms,
        "conservation_ok": (
            drained
            and quiesced
            and snapshot.get("events_applied", 0.0) == float(accepted)
        ),
    }
    return {
        "meta": {
            "python": platform.python_version(),
            "platform": platform.platform(),
            "scale": scale,
            "seed": seed,
            "distinct_queries": distinct,
            "requests": requests,
            "generated_at": time.strftime("%Y-%m-%dT%H:%M:%S"),
        },
        "invalidation": {
            "offered_events": storm_events,
            "accepted_events": accepted,
            "shed_events": shed,
            "seconds": storm_elapsed,
            "events_per_s": accepted / storm_elapsed,
            "epochs_applied": snapshot.get("epochs_applied", 0.0),
            "coalesce_ratio": snapshot.get("coalesce_ratio", 0.0),
            "epoch_requeues": snapshot.get("epoch_requeues", 0.0),
        },
        "serving": {
            "idle_mean_ms": sum(idle_latencies) / len(idle_latencies),
            "idle_p95_ms": idle_p95,
            "storm_mean_ms": sum(storm_latencies) / len(storm_latencies),
            "storm_p95_ms": storm_p95,
            "delta_p95_ms": storm_p95 - idle_p95,
        },
        "staleness": {
            "stamped_answers": len(storm_staleness),
            "p95_s": _percentile(storm_staleness, 0.95),
            "max_s": max(storm_staleness, default=0.0),
            "quiesced_after_drain": quiesced,
        },
        "gates": gates,
    }


def render(block: dict) -> str:
    invalidation = block["invalidation"]
    serving = block["serving"]
    staleness = block["staleness"]
    gates = block["gates"]
    ok = all(value for key, value in gates.items() if key.endswith("_ok"))
    return "\n".join(
        [
            (
                f"ingest bench: {invalidation['accepted_events']} events "
                f"({invalidation['shed_events']} shed) in "
                f"{invalidation['seconds']:.2f}s = "
                f"{invalidation['events_per_s']:.0f} events/s over "
                f"{invalidation['epochs_applied']:.0f} epochs "
                f"(coalesce ratio {invalidation['coalesce_ratio']:.1f})"
            ),
            (
                f"serving: idle p95 {serving['idle_p95_ms']:.2f} ms, "
                f"storm p95 {serving['storm_p95_ms']:.2f} ms "
                f"(delta {serving['delta_p95_ms']:+.2f} ms, budget "
                f"{gates['latency_budget_ms']:.2f} ms)"
            ),
            (
                f"staleness: {staleness['stamped_answers']} stamped answers, "
                f"p95 {staleness['p95_s'] * 1000.0:.1f} ms, "
                f"max {staleness['max_s'] * 1000.0:.1f} ms, "
                f"quiesced={staleness['quiesced_after_drain']}"
            ),
            f"gates: {'pass' if ok else 'FAIL'}",
        ]
    )


def main(argv: list[str] | None = None) -> int:
    argv = sys.argv[1:] if argv is None else argv
    output = pathlib.Path(argv[0]) if argv else DEFAULT_OUTPUT
    existing: dict = {}
    if output.exists():
        existing = json.loads(output.read_text())
    started = time.perf_counter()
    block = run()
    elapsed = time.perf_counter() - started
    existing["ingest"] = block
    output.write_text(json.dumps(existing, indent=2) + "\n")
    print(render(block))
    print(f"wrote {output} ({elapsed:.1f}s)")
    gates = block["gates"]
    if not all(value for key, value in gates.items() if key.endswith("_ok")):
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
