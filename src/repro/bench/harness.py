"""Experiment harness: runs estimation techniques over workloads and
collects the paper's metrics.

Metric (Section 5, "Metrics"): for each workload query, estimate the
cardinality of each of its sub-queries with every technique, evaluate each
sub-query exactly, average the absolute error over the sub-queries, then
average over the workload's queries.  Efficiency metrics — view-matching
calls (Figure 6) and decomposition-analysis versus histogram-manipulation
time (Figure 8) — come from the shared :class:`ViewMatcher` counter and
the ``GetSelectivity`` timing hooks.

``getSelectivity``-based techniques answer every sub-query of a query from
one memoized run (Section 4's reuse); GVM re-runs per sub-plan, exactly as
the paper observes.

Workloads run through :class:`repro.catalog.EstimationSession`: each
technique's estimator is wrapped in a session pinned to the statistics
source (a bare :class:`~repro.stats.pool.SITPool`, a
:class:`~repro.catalog.StatisticsCatalog` or a
:class:`~repro.catalog.CatalogSnapshot`), so per-query accounting windows
open via ``begin_query()`` while the pool-pure factor-match and estimate
caches are shared across the whole workload — the cross-query hit rates
land in :attr:`WorkloadEvaluation.session_snapshots`.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Sequence

from repro.catalog.session import EstimationSession
from repro.estimators import SITEstimator, resolve_statistics
from repro.core.gvm import GreedyViewMatching
from repro.core.predicates import PredicateSet, tables_of
from repro.engine.database import Database
from repro.engine.executor import Executor
from repro.engine.expressions import Query
from repro.obs.metrics import MetricsRegistry
from repro.obs.snapshot import StatsSnapshot
from repro.stats.pool import SITPool
from repro.workload.queries import connected_subqueries

#: builds an estimator for (database, statistics)
EstimatorFactory = Callable[[Database, SITPool], SITEstimator]


@dataclass
class QueryMetrics:
    """Per-query outcome of one technique."""

    query: Query
    mean_absolute_error: float
    full_query_error: float
    vm_calls: int
    analysis_seconds: float
    estimation_seconds: float
    estimates: dict[PredicateSet, float] = field(default_factory=dict)
    #: unified observability snapshot (``None`` for GVM)
    snapshot: StatsSnapshot | None = None


@dataclass
class TechniqueReport:
    """A technique's metrics over a whole workload."""

    name: str
    per_query: list[QueryMetrics] = field(default_factory=list)

    @property
    def mean_absolute_error(self) -> float:
        if not self.per_query:
            return 0.0
        return sum(q.mean_absolute_error for q in self.per_query) / len(
            self.per_query
        )

    @property
    def mean_vm_calls(self) -> float:
        if not self.per_query:
            return 0.0
        return sum(q.vm_calls for q in self.per_query) / len(self.per_query)

    @property
    def mean_analysis_ms(self) -> float:
        if not self.per_query:
            return 0.0
        return (
            sum(q.analysis_seconds for q in self.per_query)
            / len(self.per_query)
            * 1000.0
        )

    @property
    def mean_estimation_ms(self) -> float:
        if not self.per_query:
            return 0.0
        return (
            sum(q.estimation_seconds for q in self.per_query)
            / len(self.per_query)
            * 1000.0
        )

    def aggregate_metrics(self) -> MetricsRegistry:
        """Workload-level roll-up of the per-query snapshots.

        Counters and cache hit/miss counts sum across queries; timings sum
        (they are per-query accumulators); cache sizes keep the last
        query's value.  This is the registry figure runs and BENCH output
        report from.
        """
        registry = MetricsRegistry()
        for metrics in self.per_query:
            snapshot = metrics.snapshot
            if snapshot is None:
                continue
            for name, value in snapshot.timings.items():
                registry.gauge(f"timings.{name}").add(float(value))
            for name, value in snapshot.counters.items():
                if not isinstance(value, (int, float)):
                    continue
                if name == "universe_size":  # a size, not an event count
                    registry.gauge(f"counters.{name}").set(float(value))
                else:
                    registry.counter(f"counters.{name}").inc(float(value))
            for name, value in snapshot.caches.items():
                if name.endswith(("_hits", "_misses")):
                    registry.counter(f"caches.{name}").inc(float(value))
                else:
                    registry.gauge(f"caches.{name}").set(float(value))
        return registry

    def aggregate_snapshot(self) -> StatsSnapshot:
        """The roll-up of :meth:`aggregate_metrics` as a ``StatsSnapshot``."""
        return StatsSnapshot.from_registry(
            self.aggregate_metrics(),
            meta={"technique": self.name, "queries": len(self.per_query)},
        )


@dataclass
class WorkloadEvaluation:
    """All techniques' reports plus the ground truth used."""

    reports: dict[str, TechniqueReport]
    true_cardinalities: dict[PredicateSet, int]
    #: per-technique session-lifetime snapshots (cross-query cache hit
    #: rates, pinned snapshot/catalog versions); absent for GVM, which
    #: runs sessionless.
    session_snapshots: dict[str, StatsSnapshot] = field(default_factory=dict)

    def report(self, name: str) -> TechniqueReport:
        """The report of one technique by name."""
        return self.reports[name]


class Harness:
    """Evaluates techniques against exact ground truth over workloads."""

    def __init__(self, database: Database, executor: Executor | None = None):
        self.database = database
        self.executor = executor if executor is not None else Executor(database)
        self._truth: dict[PredicateSet, int] = {}

    # ------------------------------------------------------------------
    def true_cardinality(self, predicates: PredicateSet) -> int:
        """Exact cardinality via the executor, memoized across queries."""
        cached = self._truth.get(predicates)
        if cached is None:
            cached = self.executor.cardinality(predicates)
            self._truth[predicates] = cached
        return cached

    def subqueries(
        self, query: Query, max_count: int | None, seed: int = 0
    ) -> list[PredicateSet]:
        """The sub-query universe of ``query`` (sampled when capped)."""
        return connected_subqueries(query, max_count=max_count, seed=seed)

    # ------------------------------------------------------------------
    def evaluate(
        self,
        queries: Sequence[Query],
        statistics,
        estimator_factories: dict[str, EstimatorFactory],
        include_gvm: bool = True,
        max_subqueries: int | None = None,
        tracing: bool = False,
    ) -> WorkloadEvaluation:
        """Run every technique over every query of the workload.

        ``statistics`` is a :class:`~repro.stats.pool.SITPool`, a
        :class:`~repro.catalog.StatisticsCatalog` (pinned once for the
        whole evaluation, so a concurrent refresh cannot skew a figure
        run mid-workload) or a :class:`~repro.catalog.CatalogSnapshot`.

        With ``tracing=True`` every ``getSelectivity`` estimator runs with
        the per-stage :class:`repro.obs.trace.Trace` enabled, so the
        per-query ``snapshot`` carries ``dp_enumeration`` /
        ``factor_matching`` / ``histogram_join`` / ``error_scoring``
        timings and the candidate-funnel counters (at a small measured
        overhead; leave it off for timing-sensitive figure runs).
        """
        pool, snapshot = resolve_statistics(statistics)
        pinned = snapshot if snapshot is not None else pool
        reports: dict[str, TechniqueReport] = {}
        sessions = {
            name: EstimationSession(
                pinned,
                database=self.database,
                estimator=factory(self.database, pinned),
                name=name,
            )
            for name, factory in estimator_factories.items()
        }
        if tracing:
            for session in sessions.values():
                session.estimator.enable_tracing()
        for name in sessions:
            reports[name] = TechniqueReport(name)
        if include_gvm:
            reports["GVM"] = TechniqueReport("GVM")

        for index, query in enumerate(queries):
            subqueries = self.subqueries(query, max_subqueries, seed=index)
            truth = {s: self.true_cardinality(s) for s in subqueries}
            for name, session in sessions.items():
                reports[name].per_query.append(
                    self._run_gs(session, query, subqueries, truth)
                )
            if include_gvm:
                reports["GVM"].per_query.append(
                    self._run_gvm(pool, query, subqueries, truth)
                )
        session_snapshots = {
            name: session.stats_snapshot()
            for name, session in sessions.items()
        }
        return WorkloadEvaluation(
            reports, dict(self._truth), session_snapshots
        )

    # ------------------------------------------------------------------
    def _cardinality_of(self, predicates: PredicateSet, selectivity: float) -> float:
        return selectivity * self.database.cross_product_size(tables_of(predicates))

    def _run_gs(
        self,
        session: EstimationSession,
        query: Query,
        subqueries: list[PredicateSet],
        truth: dict[PredicateSet, int],
    ) -> QueryMetrics:
        # Per-query accounting window, as in the paper; the session's
        # pool-pure factor-match/estimate caches survive across queries.
        session.begin_query()
        session.queries += 1
        estimator = session.estimator
        estimates: dict[PredicateSet, float] = {}
        for predicates in subqueries:
            result = session.estimate_predicates(predicates)
            estimates[predicates] = self._cardinality_of(
                predicates, result.selectivity
            )
        errors = [abs(estimates[s] - truth[s]) for s in subqueries]
        snapshot = estimator.stats_snapshot()
        return QueryMetrics(
            query=query,
            mean_absolute_error=sum(errors) / len(errors),
            full_query_error=abs(
                estimates[query.predicates] - truth[query.predicates]
            )
            if query.predicates in estimates
            else 0.0,
            vm_calls=estimator.view_matching_calls,
            analysis_seconds=estimator.analysis_seconds,
            estimation_seconds=estimator.estimation_seconds,
            estimates=estimates,
            snapshot=snapshot,
        )

    def _run_gvm(
        self,
        pool: SITPool,
        query: Query,
        subqueries: list[PredicateSet],
        truth: dict[PredicateSet, int],
    ) -> QueryMetrics:
        gvm = GreedyViewMatching(pool)
        estimates: dict[PredicateSet, float] = {}
        started = time.perf_counter()
        for predicates in subqueries:  # one greedy run per sub-plan
            selectivity = gvm.estimate_selectivity(predicates)
            estimates[predicates] = self._cardinality_of(predicates, selectivity)
        elapsed = time.perf_counter() - started
        errors = [abs(estimates[s] - truth[s]) for s in subqueries]
        return QueryMetrics(
            query=query,
            mean_absolute_error=sum(errors) / len(errors),
            full_query_error=abs(
                estimates[query.predicates] - truth[query.predicates]
            )
            if query.predicates in estimates
            else 0.0,
            vm_calls=gvm.matcher.calls,
            analysis_seconds=elapsed,
            estimation_seconds=0.0,
            estimates=estimates,
        )
