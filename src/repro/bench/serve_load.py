"""Load generator for the estimation-serving subsystem.

Measures three regimes on a *shared-factor* workload (a request stream
sampled from a small set of distinct queries, the optimizer-inner-loop
pattern where many concurrent estimations share decomposition factors):

``baseline``
    single-session sequential: one
    :class:`~repro.catalog.EstimationSession` answers the whole stream
    one query at a time — the pre-service serving story, and the QPS
    the batched service must beat;
``closed_loop``
    ``--clients`` threads drive the service synchronously (each submits,
    waits, submits again).  Micro-batching coalesces the concurrent
    requests; identical queries in one batch are answered by one DP run;
``open_loop``
    requests arrive at a fixed rate (default: 4x the measured baseline
    QPS) against a deliberately small queue — the overload regime.
    Admission control must shed with typed ``Overloaded`` responses, and
    everything admitted must still be answered (no hangs, no crashes).

``--cluster`` additionally drives the multi-process tier
(:mod:`repro.cluster`): the same closed-loop stream through an
``EstimationCluster`` at 1 shard and at ``--shards`` shards, so the
report carries the process-parallel speedup *measured on this host*.
The block records ``cores`` (``os.cpu_count()``) because the headline
scaling claim only materialises with >= ``shards`` physical cores —
on a 1-core container the expected honest result is ~1x (plus IPC
overhead), and the numbers are reported as observed, never projected.

Writes ``BENCH_service.json`` at the repository root::

    PYTHONPATH=src python -m repro.bench.serve_load [output.json]

The acceptance gate reads ``closed_loop.speedup_vs_baseline`` (>= 2x on
this workload) and ``open_loop.shed`` (> 0, with
``served + shed == offered``).
"""

from __future__ import annotations

import argparse
import json
import os
import pathlib
import platform
import random
import sys
import threading
import time

from repro.catalog import EstimationSession, StatisticsCatalog
from repro.engine.database import Database
from repro.engine.expressions import Query
from repro.service import (
    EstimationService,
    Overloaded,
    ServiceConfig,
)
from repro.workload.queries import WorkloadConfig, WorkloadGenerator
from repro.workload.snowflake import SnowflakeConfig, generate_snowflake

DEFAULT_OUTPUT = (
    pathlib.Path(__file__).resolve().parents[3] / "BENCH_service.json"
)


# ----------------------------------------------------------------------
# Workload
# ----------------------------------------------------------------------
def build_workload(
    scale: float, seed: int, distinct: int
) -> tuple[Database, StatisticsCatalog, list[Query]]:
    """A snowflake database, its catalog, and ``distinct`` queries whose
    decompositions overlap heavily (same join templates, varied
    filters)."""
    database = generate_snowflake(SnowflakeConfig(scale=scale, seed=seed))
    generator = WorkloadGenerator(
        database, WorkloadConfig(join_count=4, filter_count=4, seed=seed)
    )
    queries = generator.generate(distinct)
    catalog = StatisticsCatalog.build(database, queries, max_joins=2)
    return database, catalog, queries


def request_stream(
    queries: list[Query], requests: int, seed: int
) -> list[Query]:
    """The shared-factor stream: ``requests`` draws from the distinct
    query set (duplicates are the point — concurrent consumers of an
    optimizer ask overlapping questions)."""
    rng = random.Random(seed)
    return [rng.choice(queries) for _ in range(requests)]


def _percentiles(latencies_ms: list[float]) -> dict[str, float]:
    if not latencies_ms:
        return {"p50_ms": 0.0, "p95_ms": 0.0, "p99_ms": 0.0}
    ordered = sorted(latencies_ms)

    def pick(q: float) -> float:
        index = min(len(ordered) - 1, int(q * len(ordered)))
        return ordered[index]

    return {
        "p50_ms": pick(0.50),
        "p95_ms": pick(0.95),
        "p99_ms": pick(0.99),
    }


# ----------------------------------------------------------------------
# Regimes
# ----------------------------------------------------------------------
def _distinct(stream: list[Query]) -> list[Query]:
    return list({id(query): query for query in stream}.values())


def run_baseline(
    catalog: StatisticsCatalog, stream: list[Query]
) -> dict:
    """Single-session sequential QPS over the stream."""
    session = EstimationSession(catalog)
    # Warm the pool-pure caches exactly like a long-lived session would
    # be: the first estimation of each template pays one-off factor
    # construction (hundreds of ms) that would otherwise swamp the
    # steady-state numbers this benchmark is about.
    for query in _distinct(stream):
        session.estimate(query)
    latencies: list[float] = []
    started = time.perf_counter()
    for query in stream:
        t0 = time.perf_counter()
        session.estimate(query)
        latencies.append((time.perf_counter() - t0) * 1000.0)
    elapsed = time.perf_counter() - started
    return {
        "requests": len(stream),
        "seconds": elapsed,
        "qps": len(stream) / elapsed if elapsed > 0 else 0.0,
        "mean_ms": sum(latencies) / len(latencies),
        **_percentiles(latencies),
    }


def run_closed_loop(
    catalog: StatisticsCatalog,
    stream: list[Query],
    clients: int,
    workers: int,
    batch_window_s: float,
    pipeline: int = 8,
) -> dict:
    """``clients`` synchronous threads against the batched service.

    Each client keeps up to ``pipeline`` requests in flight (submit
    ahead, then wait for the oldest) — the optimizer-inner-loop shape,
    where one planning thread issues estimation requests for many
    candidate plans before it needs the first answer.  Latency is still
    measured per request, submit to completion.
    """
    config = ServiceConfig(
        workers=workers,
        queue_depth=max(256, len(stream)),
        batch_window_s=batch_window_s,
        max_batch=64,
    )
    shards: list[list[Query]] = [stream[i::clients] for i in range(clients)]
    latencies_by_client: list[list[float]] = [[] for _ in range(clients)]
    errors: list[BaseException] = []

    with EstimationService(catalog, config=config) as service:
        # warm the worker's session off the clock (same treatment as
        # the baseline's warm-up pass)
        for query in _distinct(stream):
            service.estimate(query)

        def client_loop(index: int) -> None:
            try:
                window: list[tuple[float, object]] = []
                record = latencies_by_client[index].append

                def reap() -> None:
                    t0, future = window.pop(0)
                    future.result(timeout=60.0)
                    record((time.perf_counter() - t0) * 1000.0)

                for query in shards[index]:
                    if len(window) >= pipeline:
                        reap()
                    window.append(
                        (time.perf_counter(), service.submit(query))
                    )
                while window:
                    reap()
            except BaseException as exc:  # pragma: no cover - failure path
                errors.append(exc)

        threads = [
            threading.Thread(target=client_loop, args=(index,))
            for index in range(clients)
        ]
        started = time.perf_counter()
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        elapsed = time.perf_counter() - started
        snapshot = service.stats_snapshot()

    if errors:
        raise RuntimeError(f"closed-loop client failed: {errors[0]!r}")
    latencies = [value for client in latencies_by_client for value in client]
    service_ns = dict(snapshot.service)
    return {
        "clients": clients,
        "workers": workers,
        "pipeline": pipeline,
        "requests": len(latencies),
        "seconds": elapsed,
        "qps": len(latencies) / elapsed if elapsed > 0 else 0.0,
        "mean_ms": sum(latencies) / len(latencies),
        **_percentiles(latencies),
        "batches": service_ns.get("batches", 0.0),
        "deduplicated": service_ns.get("deduplicated", 0.0),
        "mean_batch_size": (
            service_ns.get("batched_requests", 0.0)
            / max(1.0, service_ns.get("batches", 0.0))
        ),
    }


def run_open_loop(
    catalog: StatisticsCatalog,
    stream: list[Query],
    rate_qps: float,
    workers: int,
    queue_depth: int,
) -> dict:
    """Fixed-rate arrivals against a small queue: the overload regime."""
    config = ServiceConfig(
        workers=workers,
        queue_depth=queue_depth,
        batch_window_s=0.001,
        max_batch=64,
    )
    interval = 1.0 / rate_qps if rate_qps > 0 else 0.0
    futures = []
    shed = 0
    with EstimationService(catalog, config=config) as service:
        for query in _distinct(stream):  # warm
            service.estimate(query)
        started = time.perf_counter()
        for index, query in enumerate(stream):
            target = started + index * interval
            delay = target - time.perf_counter()
            if delay > 0:
                time.sleep(delay)
            try:
                futures.append(service.submit(query))
            except Overloaded:
                shed += 1
        # everything admitted must complete (graceful drain)
        for future in futures:
            future.result(timeout=60.0)
        elapsed = time.perf_counter() - started
        snapshot = service.stats_snapshot()
        clean = service.close()
    service_ns = dict(snapshot.service)
    latency = service_ns.get("latency_ms", {})
    offered = len(stream)
    served = len(futures)
    return {
        "offered": offered,
        "offered_qps": rate_qps,
        "served": served,
        "shed": shed,
        "shed_rate": shed / offered if offered else 0.0,
        "seconds": elapsed,
        "achieved_qps": served / elapsed if elapsed > 0 else 0.0,
        "queue_depth": queue_depth,
        "clean_shutdown": clean,
        "p50_ms": latency.get("p50", 0.0),
        "p95_ms": latency.get("p95", 0.0),
        "p99_ms": latency.get("p99", 0.0),
        "conservation_ok": served + shed == offered,
    }


def _drive_cluster(
    catalog,
    stream: list[Query],
    shards: int,
    clients: int,
    pipeline: int = 8,
) -> dict:
    """Closed loop through an :class:`~repro.cluster.EstimationCluster`
    of ``shards`` single-worker shard processes."""
    from repro.cluster import EstimationCluster
    from repro.service import ClusterConfig

    config = ServiceConfig(
        queue_depth=max(256, len(stream)),
        cluster=ClusterConfig(
            shards=shards,
            shard_workers=1,
            # hedging off for the throughput measurement: a hedge doubles
            # the work of the slowest tail, which is honest for latency
            # but noise when comparing shard counts
            hedge_delay_s=60.0,
        ),
    )
    shards_of_work = [stream[i::clients] for i in range(clients)]
    latencies_by_client: list[list[float]] = [[] for _ in range(clients)]
    errors: list[BaseException] = []

    cluster = EstimationCluster(catalog, config=config)
    try:
        for query in _distinct(stream):  # warm every shard's template
            cluster.estimate(query)

        def client_loop(index: int) -> None:
            try:
                window: list[tuple[float, object]] = []
                record = latencies_by_client[index].append

                def reap() -> None:
                    t0, future = window.pop(0)
                    future.result(timeout=120.0)
                    record((time.perf_counter() - t0) * 1000.0)

                for query in shards_of_work[index]:
                    if len(window) >= pipeline:
                        reap()
                    window.append(
                        (time.perf_counter(), cluster.submit(query))
                    )
                while window:
                    reap()
            except BaseException as exc:  # pragma: no cover - failure path
                errors.append(exc)

        threads = [
            threading.Thread(target=client_loop, args=(index,))
            for index in range(clients)
        ]
        started = time.perf_counter()
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        elapsed = time.perf_counter() - started
        snapshot = cluster.stats_snapshot()
    finally:
        cluster.close()
    if errors:
        raise RuntimeError(f"cluster client failed: {errors[0]!r}")
    latencies = [value for client in latencies_by_client for value in client]
    cluster_ns = dict(snapshot.cluster)
    return {
        "shards": shards,
        "clients": clients,
        "pipeline": pipeline,
        "requests": len(latencies),
        "seconds": elapsed,
        "qps": len(latencies) / elapsed if elapsed > 0 else 0.0,
        "mean_ms": sum(latencies) / len(latencies),
        **_percentiles(latencies),
        "routed": cluster_ns.get("routed", 0.0),
        "spilled": cluster_ns.get("spilled", 0.0),
        "ejections": cluster_ns.get("ejections", 0.0),
    }


def run_cluster(
    catalog,
    stream: list[Query],
    shards: int,
    clients: int,
) -> dict:
    """The ``cluster`` report block: 1 shard vs ``shards`` shards.

    ``cores`` is recorded so the reader can judge the speedup honestly:
    shard processes beat one process only when they run on distinct
    cores.  The numbers are measured, never projected.
    """
    single = _drive_cluster(catalog, stream, shards=1, clients=clients)
    print(
        f"cluster 1x:  {single['qps']:8.1f} qps", file=sys.stderr
    )
    sharded = _drive_cluster(catalog, stream, shards=shards, clients=clients)
    speedup = sharded["qps"] / single["qps"] if single["qps"] else 0.0
    cores = os.cpu_count() or 1
    print(
        f"cluster {shards}x:  {sharded['qps']:8.1f} qps "
        f"({speedup:.2f}x on {cores} core(s))",
        file=sys.stderr,
    )
    return {
        "cores": cores,
        "single_shard": single,
        "sharded": sharded,
        "speedup_vs_single_shard": speedup,
        "core_limited": cores < shards,
    }


# ----------------------------------------------------------------------
# Entry point
# ----------------------------------------------------------------------
def run(
    scale: float = 0.15,
    seed: int = 42,
    distinct: int = 4,
    requests: int = 400,
    clients: int = 16,
    workers: int = 1,
    batch_window_ms: float = 1.0,
    overload_queue_depth: int = 8,
    cluster_shards: int = 0,
) -> dict:
    database, catalog, queries = build_workload(scale, seed, distinct)
    stream = request_stream(queries, requests, seed)
    del database

    # Bench-scoped: shrink the GIL switch interval so worker wake-ups
    # (future completions) propagate promptly instead of waiting out the
    # default 5ms scheduling quantum.  Restored before returning.
    previous_switch_interval = sys.getswitchinterval()
    sys.setswitchinterval(0.0005)
    try:
        return _run_regimes(
            catalog,
            stream,
            scale=scale,
            seed=seed,
            distinct=distinct,
            requests=requests,
            clients=clients,
            workers=workers,
            batch_window_ms=batch_window_ms,
            overload_queue_depth=overload_queue_depth,
            cluster_shards=cluster_shards,
        )
    finally:
        sys.setswitchinterval(previous_switch_interval)


def _run_regimes(
    catalog: StatisticsCatalog,
    stream: list[Query],
    *,
    scale: float,
    seed: int,
    distinct: int,
    requests: int,
    clients: int,
    workers: int,
    batch_window_ms: float,
    overload_queue_depth: int,
    cluster_shards: int = 0,
) -> dict:
    print(
        f"workload: {distinct} distinct queries, {requests} requests, "
        f"{len(catalog)} SITs",
        file=sys.stderr,
    )
    baseline = run_baseline(catalog, stream)
    print(f"baseline:    {baseline['qps']:8.1f} qps", file=sys.stderr)
    closed = run_closed_loop(
        catalog, stream, clients, workers, batch_window_ms / 1000.0
    )
    closed["speedup_vs_baseline"] = (
        closed["qps"] / baseline["qps"] if baseline["qps"] else 0.0
    )
    print(
        f"closed loop: {closed['qps']:8.1f} qps "
        f"({closed['speedup_vs_baseline']:.2f}x, "
        f"mean batch {closed['mean_batch_size']:.1f})",
        file=sys.stderr,
    )
    open_loop = run_open_loop(
        catalog,
        stream,
        rate_qps=4.0 * baseline["qps"],
        workers=workers,
        queue_depth=overload_queue_depth,
    )
    print(
        f"open loop:   shed {open_loop['shed']}/{open_loop['offered']} "
        f"({open_loop['shed_rate']:.0%}), clean={open_loop['clean_shutdown']}",
        file=sys.stderr,
    )
    cluster = None
    if cluster_shards:
        cluster = run_cluster(
            catalog, stream, shards=cluster_shards, clients=clients
        )
    return {
        "meta": {
            "python": platform.python_version(),
            "platform": platform.platform(),
            "scale": scale,
            "seed": seed,
            "distinct_queries": distinct,
            "requests": requests,
            "generated_at": time.strftime("%Y-%m-%dT%H:%M:%S"),
        },
        "baseline": baseline,
        "closed_loop": closed,
        "open_loop": open_loop,
        **({"cluster": cluster} if cluster is not None else {}),
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench.serve_load",
        description="closed- and open-loop load generator for repro.service",
    )
    parser.add_argument(
        "output", nargs="?", default=str(DEFAULT_OUTPUT), help="output JSON"
    )
    parser.add_argument("--scale", type=float, default=0.15)
    parser.add_argument("--seed", type=int, default=42)
    parser.add_argument("--distinct", type=int, default=4)
    parser.add_argument("--requests", type=int, default=400)
    parser.add_argument("--clients", type=int, default=16)
    parser.add_argument("--workers", type=int, default=1)
    parser.add_argument(
        "--batch-window-ms", type=float, default=1.0, dest="batch_window_ms"
    )
    parser.add_argument(
        "--cluster",
        action="store_true",
        help=(
            "also measure the multi-process tier: closed loop at 1 shard "
            "vs --shards shards, reported with the host core count"
        ),
    )
    parser.add_argument(
        "--shards",
        type=int,
        default=4,
        help="shard processes for the --cluster comparison (default 4)",
    )
    args = parser.parse_args(argv)
    report = run(
        scale=args.scale,
        seed=args.seed,
        distinct=args.distinct,
        requests=args.requests,
        clients=args.clients,
        workers=args.workers,
        batch_window_ms=args.batch_window_ms,
        cluster_shards=args.shards if args.cluster else 0,
    )
    output = pathlib.Path(args.output)
    output.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")
    print(f"wrote {output}", file=sys.stderr)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
