"""Self-tuning advisor vs the static ``diff_H`` advisor, under budget.

The experiment behind :mod:`repro.advisor`: on a skewed snowflake
workload, impose a space budget that excludes at least half of the
candidate conditioned SITs (the sum of the smaller half of their
footprints), then compare three configurations on a *held-out* workload
(a disjoint suffix of the same generator stream — same join/filter mix,
queries unseen during feedback):

* **base-only** — base histograms, no conditioned SITs;
* **static** — the static advisor's ranking
  (``diff_H * applicability / (1 + joins)``), greedily packed into the
  budget — the best one can do without looking at live traffic;
* **tuned** — what :class:`~repro.advisor.loop.SelfTuningAdvisor`
  accepts after observing the feedback workload, with the safety gate's
  three constraints verified on its held-out safety split.

The gate: the tuned configuration's median q-error on the holdout
workload must not exceed the static advisor's.  The block merges into
``BENCH_core.json`` read-modify-write (every other block untouched)::

    PYTHONPATH=src python -m repro.bench.advisor [output.json]
"""

from __future__ import annotations

import json
import pathlib
import sys
import time

from repro.advisor import AdvisorConfig, SelfTuningAdvisor
from repro.advisor.search import q_error, sit_space_bytes
from repro.bench.perf import DEFAULT_OUTPUT
from repro.catalog import EstimationSession, StatisticsCatalog
from repro.core.predicates import attributes_of
from repro.engine.executor import Executor
from repro.estimators.sit import SITEstimator
from repro.stats.pool import SITPool
from repro.workload.queries import WorkloadConfig, WorkloadGenerator
from repro.workload.snowflake import SnowflakeConfig, generate_snowflake

SNOWFLAKE_SCALE = 0.15
FEEDBACK_SEED = 42
FEEDBACK_QUERIES = 20
HOLDOUT_QUERIES = 12
MAX_JOINS = 2

#: the advisor's safety bounds for the bench run (space budget is
#: computed from the candidate pool; see :func:`run`)
MAX_Q_ERROR = 1000.0
REFRESH_BUDGET_S = 60.0


def _median(values: list[float]) -> float:
    ordered = sorted(values)
    mid = len(ordered) // 2
    if len(ordered) % 2:
        return ordered[mid]
    return 0.5 * (ordered[mid - 1] + ordered[mid])


def build_setup():
    """Database, feedback/holdout workloads, and a J2 catalog whose base
    histograms cover *both* workloads (so every configuration under test
    can answer every holdout query)."""
    database = generate_snowflake(
        SnowflakeConfig(scale=SNOWFLAKE_SCALE, seed=FEEDBACK_SEED)
    )
    stream = WorkloadGenerator(
        database,
        WorkloadConfig(join_count=2, filter_count=2, seed=FEEDBACK_SEED),
    ).generate(FEEDBACK_QUERIES + HOLDOUT_QUERIES)
    # one workload distribution, disjoint query split: the holdout
    # queries are unseen by both advisors but share the feedback
    # stream's join/filter mix (the regime self-tuning targets)
    feedback = stream[:FEEDBACK_QUERIES]
    holdout = stream[FEEDBACK_QUERIES:]
    catalog = StatisticsCatalog.build(database, feedback, max_joins=MAX_JOINS)
    present = {sit.attribute for sit in catalog.pool if sit.is_base}
    needed = set()
    for query in (*feedback, *holdout):
        needed |= attributes_of(query.predicates)
    for attribute in sorted(needed - present):
        catalog.add(catalog.builder.build_base(attribute))
    return database, catalog, feedback, holdout


def static_selection(conditioned, feedback, budget: float) -> set[str]:
    """The static advisor's pick: rank by
    ``diff_H * applicability / (1 + joins)`` and greedily pack the
    budget (best score first, skipping what no longer fits)."""

    def score(sit) -> float:
        applicability = sum(
            1 for query in feedback if sit.expression <= query.joins
        )
        return sit.diff * applicability / (1.0 + sit.join_count)

    chosen: set[str] = set()
    used = 0.0
    for sit in sorted(conditioned, key=lambda s: (-score(s), str(s))):
        space = sit_space_bytes(sit)
        if used + space <= budget:
            chosen.add(str(sit))
            used += space
    return chosen


def holdout_q_errors(database, base, conditioned, chosen, holdout, executor):
    """Median/max holdout q-error of ``base + chosen`` conditioned SITs."""
    pool = SITPool(list(base))
    for sit in conditioned:
        if str(sit) in chosen:
            pool.add(sit)
    estimator = SITEstimator(database, pool)
    errors = [
        q_error(
            estimator.estimate(query).selectivity,
            executor.selectivity(query.predicates),
        )
        for query in holdout
    ]
    return {
        "sits": len(chosen),
        "space_bytes": sum(
            sit_space_bytes(sit)
            for sit in conditioned
            if str(sit) in chosen
        ),
        "median_q_error": _median(errors),
        "max_q_error": max(errors),
    }


def run() -> dict:
    database, catalog, feedback, holdout = build_setup()
    base = [sit for sit in catalog.pool if sit.is_base]
    conditioned = [sit for sit in catalog.pool if not sit.is_base]
    spaces = sorted(sit_space_bytes(sit) for sit in conditioned)
    budget = sum(spaces[: len(spaces) // 2])

    advisor = SelfTuningAdvisor(
        catalog,
        config=AdvisorConfig(
            max_q_error=MAX_Q_ERROR,
            space_budget_bytes=budget,
            refresh_budget_s=REFRESH_BUDGET_S,
            min_feedback=8,
            min_interval_s=0.0,
        ),
    )
    session = EstimationSession(catalog)
    session.feedback_sink = advisor.record_result
    for query in feedback:
        session.estimate(query)
    report = advisor.tick()

    executor = Executor(database)
    static_chosen = static_selection(conditioned, feedback, budget)
    configurations = {
        "base_only": holdout_q_errors(
            database, base, conditioned, set(), holdout, executor
        ),
        "static": holdout_q_errors(
            database, base, conditioned, static_chosen, holdout, executor
        ),
        "tuned": holdout_q_errors(
            database, base, conditioned, set(report.chosen), holdout, executor
        ),
    }
    tuned_median = configurations["tuned"]["median_q_error"]
    static_median = configurations["static"]["median_q_error"]
    return {
        "workload": {
            "database": "snowflake",
            "scale": SNOWFLAKE_SCALE,
            "feedback_seed": FEEDBACK_SEED,
            "feedback_queries": len(feedback),
            "holdout_queries": len(holdout),
            "candidate_sits": len(conditioned),
            "space_budget_bytes": budget,
            "budget_fraction_of_pool": budget / sum(spaces) if spaces else 0.0,
        },
        "tuning": report.to_dict(),
        "configurations": configurations,
        "gate": {
            "tuned_median_q_error": tuned_median,
            "static_median_q_error": static_median,
            "within_gate": tuned_median <= static_median,
            "tuned_accepted": report.status == "accepted",
            "space_within_budget": (
                configurations["tuned"]["space_bytes"] <= budget
            ),
        },
    }


def render(block: dict) -> str:
    work = block["workload"]
    lines = [
        f"advisor bench (snowflake scale {work['scale']}, "
        f"{work['feedback_queries']} feedback / "
        f"{work['holdout_queries']} holdout queries, "
        f"{work['candidate_sits']} candidate SITs, budget "
        f"{work['space_budget_bytes'] / 1024.0:.1f} KiB = "
        f"{work['budget_fraction_of_pool'] * 100.0:.0f}% of pool):",
        f"  {'config':>9}  {'SITs':>5}  {'space KiB':>10}  "
        f"{'med q-err':>10}  {'max q-err':>10}",
    ]
    for name, row in block["configurations"].items():
        lines.append(
            f"  {name:>9}  {row['sits']:>5}  "
            f"{row['space_bytes'] / 1024.0:>10.1f}  "
            f"{row['median_q_error']:>10.3f}  {row['max_q_error']:>10.3f}"
        )
    tuning = block["tuning"]
    decision = tuning["decision"] or {}
    lines.append(
        f"tuning: {tuning['status']} "
        f"(safety worst q-err {decision.get('worst_q_error', float('nan')):.2f}, "
        f"space {decision.get('space_bytes', 0.0) / 1024.0:.1f} KiB, "
        f"refresh {decision.get('refresh_seconds', 0.0):.3f}s)"
    )
    gate = block["gate"]
    lines.append(
        f"gate tuned <= static median q-error: "
        f"{gate['tuned_median_q_error']:.3f} vs "
        f"{gate['static_median_q_error']:.3f} "
        f"({'pass' if gate['within_gate'] else 'FAIL'})"
    )
    return "\n".join(lines)


def main(argv: list[str] | None = None) -> int:
    argv = sys.argv[1:] if argv is None else argv
    output = pathlib.Path(argv[0]) if argv else DEFAULT_OUTPUT
    existing: dict = {}
    if output.exists():
        existing = json.loads(output.read_text())
    started = time.perf_counter()
    block = run()
    elapsed = time.perf_counter() - started
    existing["advisor"] = block
    output.write_text(json.dumps(existing, indent=2) + "\n")
    print(render(block))
    print(f"wrote {output} ({elapsed:.1f}s)")
    if not block["gate"]["within_gate"]:
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
