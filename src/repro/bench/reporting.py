"""Paper-style textual reporting of harness results.

Each figure of the paper corresponds to one renderer producing the same
rows/series the paper plots, as aligned monospace tables suitable for a
terminal or a log file.
"""

from __future__ import annotations

from typing import Sequence

from repro.bench.harness import TechniqueReport, WorkloadEvaluation


def _rule(width: int = 72) -> str:
    return "-" * width


def render_table(
    title: str, headers: Sequence[str], rows: Sequence[Sequence[str]]
) -> str:
    """Render an aligned monospace table."""
    widths = [len(h) for h in headers]
    for row in rows:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    lines = [title, _rule(sum(widths) + 2 * len(widths))]
    lines.append("  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)))
    lines.append(_rule(sum(widths) + 2 * len(widths)))
    for row in rows:
        lines.append(
            "  ".join(cell.rjust(widths[i]) for i, cell in enumerate(row))
        )
    return "\n".join(lines)


def figure5_rows(
    evaluation: WorkloadEvaluation, x_name: str = "GVM", y_name: str = "GS-nInd"
) -> list[tuple[float, float]]:
    """Per-query (x, y) absolute-error pairs of Figure 5's scatter plot."""
    x_report = evaluation.report(x_name)
    y_report = evaluation.report(y_name)
    return [
        (xq.mean_absolute_error, yq.mean_absolute_error)
        for xq, yq in zip(x_report.per_query, y_report.per_query)
    ]


def render_figure5(evaluation: WorkloadEvaluation) -> str:
    """Figure 5 as a table: per-query GVM-vs-GS-nInd absolute errors."""
    pairs = figure5_rows(evaluation)
    below = sum(1 for x, y in pairs if y <= x + 1e-9)
    rows = [
        (f"{x:,.1f}", f"{y:,.1f}", "yes" if y <= x + 1e-9 else "NO")
        for x, y in pairs
    ]
    table = render_table(
        "Figure 5 — absolute cardinality error per query (GVM vs GS-nInd)",
        ["GVM error (x)", "GS-nInd error (y)", "y <= x"],
        rows,
    )
    return table + f"\npoints under x=y: {below}/{len(pairs)}"


def render_figure6(
    by_join_count: dict[int, WorkloadEvaluation],
    techniques: Sequence[str] = ("GS-nInd", "GVM"),
) -> str:
    """Figure 6 as a table: average view-matching calls per query."""
    rows = []
    for join_count in sorted(by_join_count):
        evaluation = by_join_count[join_count]
        cells = [str(join_count)]
        for name in techniques:
            cells.append(f"{evaluation.report(name).mean_vm_calls:,.0f}")
        gvm = evaluation.report("GVM").mean_vm_calls
        gs = evaluation.report(techniques[0]).mean_vm_calls
        cells.append(f"{gvm / gs:.2f}x" if gs else "n/a")
        rows.append(cells)
    return render_table(
        "Figure 6 — avg. view-matching calls per query",
        ["joins", *techniques, "GVM/GS"],
        rows,
    )


def render_figure7(
    by_pool: dict[str, WorkloadEvaluation],
    techniques: Sequence[str],
    join_count: int,
) -> str:
    """Figure 7 as a table: mean absolute error per technique per pool."""
    rows = []
    for pool_name in by_pool:
        evaluation = by_pool[pool_name]
        cells = [pool_name]
        for name in techniques:
            if name in evaluation.reports:
                cells.append(f"{evaluation.report(name).mean_absolute_error:,.1f}")
            else:
                cells.append("-")
        rows.append(cells)
    return render_table(
        f"Figure 7 — avg. absolute error, {join_count}-way join workload",
        ["pool", *techniques],
        rows,
    )


def render_figure8(
    by_pool: dict[str, WorkloadEvaluation],
    technique: str,
    join_count: int,
) -> str:
    """Figure 8 as a table: analysis vs histogram-manipulation time."""
    rows = []
    for pool_name in by_pool:
        report = by_pool[pool_name].report(technique)
        rows.append(
            [
                pool_name,
                f"{report.mean_analysis_ms:.2f}",
                f"{report.mean_estimation_ms:.2f}",
                f"{report.mean_analysis_ms + report.mean_estimation_ms:.2f}",
            ]
        )
    return render_table(
        f"Figure 8 — {technique} time per query (ms), {join_count}-way joins",
        ["pool", "decomposition analysis", "histogram manipulation", "total"],
        rows,
    )


def render_summary(report: TechniqueReport) -> str:
    """One-line accuracy/efficiency summary of a technique's report."""
    return (
        f"{report.name}: mean |error| = {report.mean_absolute_error:,.1f}, "
        f"vm calls = {report.mean_vm_calls:,.0f}, "
        f"analysis = {report.mean_analysis_ms:.2f} ms, "
        f"estimation = {report.mean_estimation_ms:.2f} ms"
    )
