"""Experiment harness regenerating every table and figure of the paper."""

from repro.bench.config import BenchConfig
from repro.bench.harness import (
    Harness,
    QueryMetrics,
    TechniqueReport,
    WorkloadEvaluation,
)
from repro.bench.reporting import (
    figure5_rows,
    render_figure5,
    render_figure6,
    render_figure7,
    render_figure8,
    render_summary,
    render_table,
)

__all__ = [
    "BenchConfig",
    "Harness",
    "QueryMetrics",
    "TechniqueReport",
    "WorkloadEvaluation",
    "figure5_rows",
    "render_figure5",
    "render_figure6",
    "render_figure7",
    "render_figure8",
    "render_summary",
    "render_table",
]
