"""Core-DP and histogram-algebra performance benchmarks.

Measures the bitmask ``GetSelectivity`` rewrite against the preserved
``LegacyGetSelectivity`` baseline, and the vectorized histogram algebra
against the pure-Python reference kernels, then writes a machine-readable
``BENCH_core.json`` at the repository root.  Run with::

    PYTHONPATH=src python -m repro.bench.perf [output.json]

Two regimes are timed for the DP:

* ``cold``   — a fresh instance answers the full query once (universe
  interning, factor matching and the whole ``O(3^n)`` enumeration);
* ``steady`` — the per-query optimizer regime the harness uses: the same
  instance is ``reset()`` between queries, so the pool-pure factor-match
  cache and interned universe are warm and the measured cost is the
  decomposition search itself.

``analysis_ms`` / ``estimation_ms`` split each technique's time into the
paper's Figure 8 categories (decomposition analysis vs. histogram
manipulation) using the ``GetSelectivity`` timing accumulators.

The histogram microbenchmarks join / diff two ~200-bucket maxDiff
histograms — the paper's SIT format — through both kernel generations.
"""

from __future__ import annotations

import contextlib
import json
import pathlib
import platform
import random
import statistics
import sys
import time
from typing import Callable, Iterator

import numpy as np

import repro.core.matching as _matching

from repro.core.errors import NIndError
from repro.core.get_selectivity import GetSelectivity
from repro.core.predicates import (
    Attribute,
    FilterPredicate,
    JoinPredicate,
    attributes_of,
)
from repro.histograms.base import Bucket, Histogram
from repro.histograms.maxdiff import build_maxdiff
from repro.histograms.operations import (
    join_histograms,
    join_histograms_reference,
    variation_distance,
    variation_distance_reference,
)
from repro.stats.pool import SITPool
from repro.stats.sit import SIT

DEFAULT_OUTPUT = pathlib.Path(__file__).resolve().parents[3] / "BENCH_core.json"

#: predicate counts benchmarked (the acceptance gate reads ``n7``)
PREDICATE_COUNTS = (5, 7, 9)

COLUMNS = ("a", "b", "c")


# ----------------------------------------------------------------------
# Scenario construction (deterministic)
# ----------------------------------------------------------------------
def _scenario_histogram(rng: random.Random) -> Histogram:
    count = rng.randint(2, 4)
    edges = sorted(rng.sample(range(0, 401), 2 * count))
    buckets = []
    for i in range(count):
        low, high = float(edges[2 * i]), float(edges[2 * i + 1])
        frequency = float(rng.randint(100, 1000))
        distinct = float(rng.randint(1, max(1, int(min(frequency, high - low + 1)))))
        buckets.append(Bucket(low, high, frequency, distinct))
    return Histogram(buckets)


def build_scenario(size: int, seed: int = 0) -> tuple[frozenset, SITPool]:
    """A connected chain-join workload with ``size`` predicates and a pool
    with base SITs on every attribute plus a few conditioned SITs."""
    rng = random.Random(20260806 + seed + size)
    n_tables = min(5, size)
    tables = [f"T{i}" for i in range(n_tables)]
    joins = [
        JoinPredicate(
            Attribute(tables[i - 1], rng.choice(COLUMNS)),
            Attribute(tables[i], rng.choice(COLUMNS)),
        )
        for i in range(1, n_tables)
    ]
    predicates: set = set(joins)
    while len(predicates) < size:
        table = rng.choice(tables)
        low = float(rng.randint(0, 390))
        predicates.add(
            FilterPredicate(
                Attribute(table, rng.choice(COLUMNS)), low, low + rng.randint(0, 60)
            )
        )
    frozen = frozenset(predicates)
    attributes = sorted(attributes_of(frozen))
    pool = SITPool()
    for attribute in attributes:
        pool.add(SIT(attribute, frozenset(), _scenario_histogram(rng)))
    for _ in range(4):
        expression = frozenset(rng.sample(joins, rng.randint(1, min(2, len(joins)))))
        pool.add(
            SIT(
                rng.choice(attributes),
                expression,
                _scenario_histogram(rng),
                diff=round(rng.random(), 3),
            )
        )
    return frozen, pool


# ----------------------------------------------------------------------
# Timing helpers
# ----------------------------------------------------------------------
def _time_once(function: Callable[[], object]) -> float:
    started = time.perf_counter()
    function()
    return time.perf_counter() - started


def _best_of(function: Callable[[], object], repeats: int) -> float:
    """Minimum wall-clock seconds over ``repeats`` runs (noise floor)."""
    return min(_time_once(function) for _ in range(repeats))


def _median_of(function: Callable[[], object], repeats: int) -> float:
    return statistics.median(_time_once(function) for _ in range(repeats))


@contextlib.contextmanager
def seed_kernels() -> Iterator[None]:
    """Run the factor-estimation pipeline on the seed's loop kernels.

    The seed implementation used the pure-Python ``join_histograms``; the
    vectorized kernel is part of this optimisation round, so the honest
    end-to-end baseline patches the reference back in for the legacy DP.
    """
    original = _matching.join_histograms
    _matching.join_histograms = join_histograms_reference
    try:
        yield
    finally:
        _matching.join_histograms = original


def bench_get_selectivity(size: int, repeats: int) -> dict:
    predicates, pool = build_scenario(size)

    def fresh(engine: str) -> GetSelectivity:
        return GetSelectivity.create(pool, NIndError(), engine=engine)

    out: dict = {"predicates": size}
    for name in ("legacy", "bitmask"):
        # legacy == the seed configuration: frozenset DP + loop kernels.
        is_legacy = name == "legacy"
        context = seed_kernels() if is_legacy else contextlib.nullcontext()
        with context:
            cold = _median_of(
                lambda: fresh(name)(predicates), max(3, repeats // 2)
            )
            algorithm = fresh(name)
            algorithm(predicates)  # warm the pool-pure caches

            def steady_run() -> None:
                algorithm.reset()
                algorithm(predicates)

            steady = _best_of(steady_run, repeats)
        snapshot = algorithm.stats_snapshot()
        out[name] = {
            "cold_ms": cold * 1000.0,
            "steady_ms": steady * 1000.0,
            "analysis_ms": snapshot.timings["analysis_seconds"] * 1000.0,
            "estimation_ms": snapshot.timings["estimation_seconds"] * 1000.0,
            "matcher_calls": snapshot.counters["matcher_calls"],
            "memo_entries": snapshot.caches["memo_entries"],
            "explored_decompositions": snapshot.counters[
                "explored_decompositions"
            ],
        }
    out["cold_speedup"] = out["legacy"]["cold_ms"] / out["bitmask"]["cold_ms"]
    out["steady_speedup"] = out["legacy"]["steady_ms"] / out["bitmask"]["steady_ms"]
    return out


def _constant_variants(
    rng: random.Random, predicates: frozenset, count: int
) -> list[frozenset]:
    """Fresh filter constants for the scenario shape, rejection-sampled so
    the str-sort order (and therefore the shape fingerprint) is preserved
    — the templated-workload regime the plan cache is built for."""
    from repro.core.plancache import shape_fingerprint

    joins = {p for p in predicates if p.is_join}
    filters = [p for p in predicates if not p.is_join]
    base = shape_fingerprint(predicates)[0]
    variants: list[frozenset] = []
    while len(variants) < count:
        for attempt in range(64):
            scale = 0.6 * (0.7**attempt)
            fresh: set = set(joins)
            for old in filters:
                span = max(1.0, old.high - old.low)
                low = round(old.low + rng.uniform(-scale, scale) * span, 3)
                if old.low == old.high:
                    high = low  # point filters render attribute-first
                else:
                    high = round(low + span * rng.uniform(0.6, 1.4), 3)
                fresh.add(FilterPredicate(old.attribute, low, high))
            variant = frozenset(fresh)
            if (
                len(variant) == len(predicates)
                and shape_fingerprint(variant)[0] == base
            ):
                variants.append(variant)
                break
        else:
            raise RuntimeError("could not re-instantiate the scenario shape")
    return variants


def bench_plan_cache(size: int, repeats: int, variants: int = 64) -> dict:
    """Compiled-plan cache: miss (compile) latency, template-hit steady
    latency, batched replay, and the hit rate over a templated workload.

    ``steady_hit_ms`` is the headline number — one template-hit
    estimation through :meth:`PlanCache.estimate` (probe + vectorized
    replay + result construction) — gated at <= 0.17 ms and >= 5x the
    same machine's full-DP steady figure.  ``replay_bit_identical``
    asserts the replayed result equals the cold DP on fresh constants
    (the parity suite pins this across 400 pairs; the bench re-checks
    the exact workload it timed).
    """
    from repro.core.plancache import PlanCache, shape_fingerprint

    predicates, pool = build_scenario(size)
    rng = random.Random(20260807 + size)
    workload = _constant_variants(rng, predicates, variants)

    algorithm = GetSelectivity.create(pool, NIndError(), engine="bitmask")
    cold_result = algorithm(predicates)  # warm pool-pure caches + memo

    def dp_steady_run() -> None:
        algorithm.reset()
        algorithm(predicates)

    dp_steady = _best_of(dp_steady_run, repeats)
    algorithm.reset()
    cold_result = algorithm(predicates)  # leave the memo matching the query

    # miss path: compiling the DP's winning decomposition into a plan
    def compile_once() -> None:
        scratch = PlanCache(pool)
        if scratch.compile(predicates, algorithm, cold_result) is None:
            raise RuntimeError("scenario shape refused compilation")

    compile_s = _best_of(compile_once, max(3, repeats // 2))

    # steady path: template hits with fresh constants
    cache = PlanCache(pool)
    cache.compile(predicates, algorithm, cold_result)
    probe = workload[0]
    hit_s = _best_of(lambda: cache.estimate(probe), repeats * 4)

    # batched replay: the whole workload as stacked numpy ops
    plan, _ = cache.plan_for(predicates)
    assert plan is not None
    ordered_batch = [shape_fingerprint(v)[1] for v in workload]
    batch_s = _best_of(lambda: plan.replay_batch(ordered_batch), repeats)

    # hit rate + bit-identity over the templated workload (estimator flow:
    # shape miss -> full DP + compile, template hit -> replay)
    served = PlanCache(pool)
    identical = True
    for variant in workload:
        replayed = served.estimate(variant)
        algorithm.reset()
        reference = algorithm(variant)
        if replayed is None:
            served.compile(variant, algorithm, reference)
        elif replayed != reference:
            identical = False
    status = served.status()
    return {
        "predicates": size,
        "workload_variants": len(workload),
        "compile_ms": compile_s * 1000.0,
        "steady_hit_ms": hit_s * 1000.0,
        "dp_steady_ms": dp_steady * 1000.0,
        "speedup_vs_dp_steady": dp_steady / hit_s,
        "batch_replay_per_query_ms": batch_s / len(workload) * 1000.0,
        "replay_bit_identical": identical,
        "workload_hit_rate": status["hit_rate"],
        "plans": status["plans"],
        "compiles": status["compiles"],
        "plan_bytes": status["bytes"],
    }


def bench_tracing_overhead(size: int, repeats: int) -> dict:
    """Steady-state cost of the observability layer on the bitmask DP.

    ``disabled_ms`` is the production configuration (``trace is None``:
    one branch per instrumented call site); ``enabled_ms`` runs the same
    workload with the per-stage :class:`repro.obs.trace.Trace` attached.
    The disabled figure is the one the <=5% acceptance gate tracks against
    the pre-observability baseline recorded in ``BENCH_core.json``.
    """
    predicates, pool = build_scenario(size)
    algorithm = GetSelectivity.create(pool, NIndError(), engine="bitmask")
    algorithm(predicates)  # warm pool-pure caches

    def steady_run() -> None:
        algorithm.reset()
        algorithm(predicates)

    disabled = _best_of(steady_run, repeats)
    trace = algorithm.enable_tracing()
    enabled = _best_of(steady_run, repeats)
    stages = {
        stage: seconds * 1000.0 for stage, seconds, _ in trace.stages()
    }
    counters = dict(trace.counters)
    algorithm.disable_tracing()
    return {
        "predicates": size,
        "disabled_ms": disabled * 1000.0,
        "enabled_ms": enabled * 1000.0,
        "enabled_overhead_pct": (enabled / disabled - 1.0) * 100.0,
        "trace_stage_ms": stages,
        "trace_counters": counters,
    }


def bench_fault_overhead(size: int, repeats: int) -> dict:
    """Steady-state cost of the fault-injection guards on the bitmask DP.

    ``disarmed_ms`` is the production configuration (no ``FaultPlan``
    armed: each instrumented call site pays one global load and a
    ``None`` check).  ``armed_zero_fault_ms`` runs the same workload
    with an armed plan whose only rule can never fire (``after`` beyond
    the workload), so the cost measured is rule evaluation, not fault
    handling.  Both configurations must produce *bit-identical*
    selectivities — the zero-fault parity half of the acceptance gate —
    and the disarmed figure is what the <=5% overhead gate tracks
    against the pre-resilience ``n7`` steady baseline.
    """
    from repro.resilience.faults import FaultPlan, FaultRule, armed

    predicates, pool = build_scenario(size)
    algorithm = GetSelectivity.create(pool, NIndError(), engine="bitmask")
    baseline = algorithm(predicates)  # warm pool-pure caches

    def steady_run() -> None:
        algorithm.reset()
        algorithm(predicates)

    disarmed = _best_of(steady_run, repeats)
    plan = FaultPlan(
        [FaultRule(point="sit_match", after=10**9, max_fires=None)],
        seed=0,
    )
    with armed(plan):
        armed_zero = _best_of(steady_run, repeats)
        algorithm.reset()
        under_plan = algorithm(predicates)
    algorithm.reset()
    disarmed_again = algorithm(predicates)
    return {
        "predicates": size,
        "disarmed_ms": disarmed * 1000.0,
        "armed_zero_fault_ms": armed_zero * 1000.0,
        "armed_overhead_pct": (armed_zero / disarmed - 1.0) * 100.0,
        "zero_fault_bit_identical": (
            under_plan == baseline == disarmed_again
        ),
        "rule_evaluations": plan.rules[0].evaluations,
    }


def bench_catalog_refresh(repeats: int) -> dict:
    """Incremental catalog refresh: full rebuild vs Chao1-sampled rebuild.

    Builds a ``J1`` workload catalog over the snowflake database, then
    repeatedly invalidates the ``customer`` dimension (the table most
    conditioned SITs depend on) and times ``refresh()`` under both
    policies.  Only the stale SITs are rebuilt — ``kept`` counts the
    fresh SITs that survive as the *same objects* — so the measured cost
    is the incremental maintenance path, not a cold build.
    """
    from repro.catalog import RefreshPolicy, StatisticsCatalog
    from repro.workload.queries import WorkloadConfig, WorkloadGenerator
    from repro.workload.snowflake import SnowflakeConfig, generate_snowflake

    scale = 8.0
    database = generate_snowflake(SnowflakeConfig(scale=scale, seed=42))
    generator = WorkloadGenerator(
        database, WorkloadConfig(join_count=2, filter_count=2, seed=42)
    )
    queries = generator.generate(3)

    build_started = time.perf_counter()
    catalog = StatisticsCatalog.build(database, queries, max_joins=1)
    build_seconds = time.perf_counter() - build_started
    table = "customer"

    out: dict = {
        "scale": scale,
        "sits": len(catalog),
        "initial_build_ms": build_seconds * 1000.0,
        "invalidated_table": table,
    }
    runs = max(3, repeats // 3)
    policies = {
        "full": RefreshPolicy(),
        "sampled": RefreshPolicy(method="sampled", sample_fraction=0.05),
    }
    for method, policy in policies.items():
        best = float("inf")
        report = None
        for _ in range(runs):
            catalog.notify_table_update(table)
            started = time.perf_counter()
            report = catalog.refresh(policy)
            best = min(best, time.perf_counter() - started)
        assert report is not None
        out[method] = {
            "refresh_ms": best * 1000.0,
            "rebuilt": len(report.rebuilt),
            "kept": len(report.kept),
            "dropped": len(report.dropped),
        }
    out["sampled_speedup"] = (
        out["full"]["refresh_ms"] / out["sampled"]["refresh_ms"]
    )
    out["refresh_vs_build_pct"] = (
        out["full"]["refresh_ms"] / (build_seconds * 1000.0) * 100.0
    )
    return out


def _micro_histograms(buckets: int = 200, size: int = 60_000):
    rng = np.random.default_rng(7)
    skewed = rng.zipf(1.3, size=size).clip(max=50_000).astype(float)
    normal = np.floor(rng.normal(25_000.0, 8_000.0, size=size)).clip(0, 50_000)
    return (
        build_maxdiff(skewed, max_buckets=buckets),
        build_maxdiff(normal, max_buckets=buckets),
    )


def bench_histogram_ops(repeats: int) -> dict:
    left, right = _micro_histograms()
    cases = {
        "histogram_join": (
            lambda: join_histograms_reference(left, right),
            lambda: join_histograms(left, right),
        ),
        "variation_distance": (
            lambda: variation_distance_reference(left, right),
            lambda: variation_distance(left, right),
        ),
    }
    out = {
        "buckets": (left.bucket_count, right.bucket_count),
    }
    for name, (reference, vectorized) in cases.items():
        reference_s = _best_of(reference, max(3, repeats // 3))
        vectorized_s = _best_of(vectorized, repeats)
        out[name] = {
            "reference_ms": reference_s * 1000.0,
            "vectorized_ms": vectorized_s * 1000.0,
            "speedup": reference_s / vectorized_s,
        }
    return out


# ----------------------------------------------------------------------
def run(repeats: int = 9) -> dict:
    """Run every benchmark and return the ``BENCH_core.json`` payload."""
    result = {
        "meta": {
            "python": platform.python_version(),
            "platform": platform.platform(),
            "numpy": np.__version__,
            "repeats": repeats,
            "timer": "perf_counter; cold=median, steady/micro=best-of",
            "baseline": (
                "legacy = seed frozenset implementation "
                "(LegacyGetSelectivity / *_reference kernels), "
                "preserved in-tree and timed on this machine"
            ),
        },
        "get_selectivity": {
            f"n{size}": bench_get_selectivity(size, repeats)
            for size in PREDICATE_COUNTS
        },
        "plan_cache": bench_plan_cache(7, repeats),
        "histograms": bench_histogram_ops(repeats),
        "observability": {
            "n7_tracing": bench_tracing_overhead(7, repeats),
        },
        "resilience": {
            "n7_fault_guards": bench_fault_overhead(7, repeats),
        },
        "catalog": bench_catalog_refresh(repeats),
    }
    result["gates"] = {
        # The rewrite targets the optimizer inner loop: an end-to-end
        # getSelectivity call per query in the harness's reset-per-query
        # regime (cold calls are matching-layer bound, which both paths
        # share; cold speedups are reported above for transparency).
        "n7_steady_speedup": result["get_selectivity"]["n7"]["steady_speedup"],
        "n7_steady_target": 3.0,
        # Plan-cache acceptance: a template hit must answer in
        # microseconds — <= 0.17 ms and >= 5x the same-run full-DP steady
        # figure — and the replay must be bit-identical to the cold DP on
        # the exact workload the bench timed.
        "n7_plan_cache_steady_ms": result["plan_cache"]["steady_hit_ms"],
        "n7_plan_cache_steady_target_ms": 0.17,
        "n7_plan_cache_speedup": result["plan_cache"]["speedup_vs_dp_steady"],
        "n7_plan_cache_speedup_target": 5.0,
        "n7_plan_cache_replay_bit_identical": result["plan_cache"][
            "replay_bit_identical"
        ],
        "histogram_join_speedup": result["histograms"]["histogram_join"][
            "speedup"
        ],
        "variation_distance_speedup": result["histograms"][
            "variation_distance"
        ]["speedup"],
        "histogram_target": 5.0,
        # Observability acceptance: the production configuration (tracing
        # disabled) must stay within 5% of the pre-observability steady
        # baseline; the same-run enabled overhead is recorded alongside.
        "n7_tracing_enabled_overhead_pct": result["observability"][
            "n7_tracing"
        ]["enabled_overhead_pct"],
        # Resilience acceptance: the disarmed guards must stay within 5%
        # of the pre-resilience n7 steady baseline (the disarmed figure
        # *is* the n7 steady run; the armed-zero-fault overhead and the
        # bit-identity flag are recorded alongside).
        "n7_fault_guards_armed_overhead_pct": result["resilience"][
            "n7_fault_guards"
        ]["armed_overhead_pct"],
        "n7_fault_guards_zero_fault_bit_identical": result["resilience"][
            "n7_fault_guards"
        ]["zero_fault_bit_identical"],
        # Lifecycle acceptance: an incremental refresh after one table
        # update must be strictly cheaper than rebuilding the catalog
        # (only the stale SITs are re-executed).  The sampled-policy
        # ratio is recorded for transparency; expression execution, not
        # histogram construction, dominates at benchmark scale, so the
        # Chao1 path wins only modestly here.
        "catalog_refresh_vs_build_pct": result["catalog"][
            "refresh_vs_build_pct"
        ],
        "catalog_sampled_speedup": result["catalog"]["sampled_speedup"],
    }
    return result


def render(result: dict) -> str:
    lines = ["core DP (getSelectivity), legacy vs bitmask:"]
    for key, row in result["get_selectivity"].items():
        lines.append(
            f"  {key}: cold {row['legacy']['cold_ms']:8.2f} -> "
            f"{row['bitmask']['cold_ms']:8.2f} ms ({row['cold_speedup']:5.1f}x)   "
            f"steady {row['legacy']['steady_ms']:8.2f} -> "
            f"{row['bitmask']['steady_ms']:8.2f} ms ({row['steady_speedup']:5.1f}x)"
        )
    plan = result["plan_cache"]
    lines.append(
        f"plan cache (n{plan['predicates']}, "
        f"{plan['workload_variants']} constant variants): "
        f"compile {plan['compile_ms']:.3f} ms, "
        f"hit {plan['steady_hit_ms']:.4f} ms "
        f"({plan['speedup_vs_dp_steady']:.0f}x vs DP steady "
        f"{plan['dp_steady_ms']:.3f} ms), "
        f"batched {plan['batch_replay_per_query_ms']:.4f} ms/query, "
        f"hit-rate {plan['workload_hit_rate']:.3f}, "
        f"bit-identical={plan['replay_bit_identical']}"
    )
    lines.append("histogram algebra, reference vs vectorized:")
    for name in ("histogram_join", "variation_distance"):
        row = result["histograms"][name]
        lines.append(
            f"  {name}: {row['reference_ms']:8.2f} -> "
            f"{row['vectorized_ms']:8.2f} ms ({row['speedup']:5.1f}x)"
        )
    tracing = result["observability"]["n7_tracing"]
    lines.append(
        "observability (bitmask n7 steady): "
        f"disabled {tracing['disabled_ms']:.3f} ms, "
        f"enabled {tracing['enabled_ms']:.3f} ms "
        f"({tracing['enabled_overhead_pct']:+.1f}%)"
    )
    guards = result["resilience"]["n7_fault_guards"]
    lines.append(
        "fault-injection guards (bitmask n7 steady): "
        f"disarmed {guards['disarmed_ms']:.3f} ms, "
        f"armed zero-fault {guards['armed_zero_fault_ms']:.3f} ms "
        f"({guards['armed_overhead_pct']:+.1f}%), "
        f"bit-identical={guards['zero_fault_bit_identical']}"
    )
    catalog = result["catalog"]
    lines.append(
        f"catalog refresh ({catalog['sits']} SITs, "
        f"stale table {catalog['invalidated_table']!r}): "
        f"full {catalog['full']['refresh_ms']:.1f} ms "
        f"(rebuilt {catalog['full']['rebuilt']}, "
        f"kept {catalog['full']['kept']}), "
        f"sampled {catalog['sampled']['refresh_ms']:.1f} ms "
        f"({catalog['sampled_speedup']:.1f}x); "
        f"{catalog['refresh_vs_build_pct']:.0f}% of a cold build"
    )
    return "\n".join(lines)


def main(argv: list[str] | None = None) -> int:
    argv = sys.argv[1:] if argv is None else argv
    output = pathlib.Path(argv[0]) if argv else DEFAULT_OUTPUT
    result = run()
    output.write_text(json.dumps(result, indent=2) + "\n")
    print(render(result))
    print(f"wrote {output}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
