"""Benchmark-scale configuration via environment variables.

The paper's experiments run on 8 tables of 1K-1M tuples and 100-query
workloads.  The defaults here are scaled down so the full harness runs on
a laptop in minutes; set the environment variables to approach the paper's
scale:

* ``REPRO_SCALE``       — snowflake row-count multiplier (default 0.25)
* ``REPRO_QUERIES``     — queries per workload (default 12; paper: 100)
* ``REPRO_SUBQUERIES``  — sub-queries sampled per query (default 40)
* ``REPRO_SEED``        — master seed (default 42)
"""

from __future__ import annotations

import os
from dataclasses import dataclass


def _env_float(name: str, default: float) -> float:
    raw = os.environ.get(name)
    return float(raw) if raw else default


def _env_int(name: str, default: int) -> int:
    raw = os.environ.get(name)
    return int(raw) if raw else default


@dataclass(frozen=True)
class BenchConfig:
    """Resolved benchmark-scale settings."""

    scale: float
    queries_per_workload: int
    subqueries_per_query: int
    seed: int

    @classmethod
    def from_env(cls) -> "BenchConfig":
        """Resolve the configuration from ``REPRO_*`` environment variables."""
        return cls(
            scale=_env_float("REPRO_SCALE", 0.25),
            queries_per_workload=_env_int("REPRO_QUERIES", 12),
            subqueries_per_query=_env_int("REPRO_SUBQUERIES", 40),
            seed=_env_int("REPRO_SEED", 42),
        )
