"""Configuration search over conditioned SITs, scored by *measured* q-error.

The static advisor (:mod:`repro.stats.advisor`) ranks candidates by the
build-time heuristic ``diff_H * applicability / (1 + joins)``.  That
ranking is the right prior, but it knows nothing about how the deployed
estimator actually performs on live traffic.  This module closes the
loop: a *configuration* is a subset of conditioned SIT names, and it is
evaluated by replaying the candidate-split feedback records against an
estimator built from exactly that subset (plus the always-kept base
histograms), scoring the median q-error against engine-exact truth.

The search is a bounded greedy: walk the candidates in static-score
order, trial-adding each (kept only if the measured median improves and
the space budget still holds), then one drop pass removing anything
whose absence doesn't hurt.  Every step is deterministic — tie-breaks
by static rank then name — so the same records and candidates always
produce the same configuration.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from repro.advisor.feedback import FeedbackRecord
from repro.core.predicates import join_predicates, tables_of
from repro.engine.database import Database
from repro.estimators.sit import SITEstimator
from repro.stats.pool import SITPool
from repro.stats.sit import SIT

#: guard against exact zeros in the q-error ratio
EPSILON = 1e-9
#: minimum median improvement for an add move to be kept
IMPROVEMENT_TOLERANCE = 1e-9


def q_error(estimated: float, true: float) -> float:
    """``max(est, true) / min(est, true)``, epsilon-guarded."""
    high = max(estimated, true) + EPSILON
    low = min(estimated, true) + EPSILON
    return high / low


def median(values: Sequence[float]) -> float:
    """Deterministic median (mean of middle pair on even length)."""
    if not values:
        raise ValueError("median of no values")
    ordered = sorted(values)
    mid = len(ordered) // 2
    if len(ordered) % 2:
        return ordered[mid]
    return (ordered[mid - 1] + ordered[mid]) / 2.0


def sit_space_bytes(sit: SIT) -> float:
    """Histogram footprint of one SIT (its bucket arrays)."""
    return float(sum(array.nbytes for array in sit.histogram.bucket_arrays()))


def static_score(sit: SIT, records: Sequence[FeedbackRecord]) -> float:
    """The static advisor's prior, with applicability measured against
    the feedback records instead of a synthetic workload: the number of
    records whose join set makes ``sit`` a match candidate."""
    applicability = sum(
        1
        for record in records
        if sit.expression <= join_predicates(record.predicates)
    )
    return sit.diff * applicability / (1.0 + sit.join_count)


@dataclass(frozen=True)
class MeasuredRecord:
    """A feedback record with its engine-exact truth resolved."""

    record: FeedbackRecord
    true_cardinality: int


@dataclass
class ConfigurationSearch:
    """Greedy add/drop search over conditioned-SIT subsets."""

    database: Database
    #: always-kept base histograms
    base_sits: Sequence[SIT]
    #: conditioned candidates (any order; ranked internally)
    candidates: Sequence[SIT]
    #: candidate-split records with resolved truth
    records: Sequence[MeasuredRecord]
    space_budget_bytes: float | None = None
    max_moves: int = 24
    #: configuration evaluations actually spent (for observability)
    evaluations: int = field(init=False, default=0)

    def evaluate(self, chosen: frozenset[str]) -> list[float]:
        """Replay the records against ``base + chosen``; per-record q-errors."""
        self.evaluations += 1
        pool = SITPool(list(self.base_sits))
        for sit in self.candidates:
            if str(sit) in chosen:
                pool.add(sit)
        estimator = SITEstimator(self.database, pool)
        errors = []
        for measured in self.records:
            predicates = measured.record.predicates
            result = estimator.estimate_predicates(predicates)
            estimated = result.selectivity * self.database.cross_product_size(
                tables_of(predicates)
            )
            errors.append(q_error(estimated, float(measured.true_cardinality)))
        return errors

    def ranked_candidates(self) -> list[SIT]:
        """Candidates by descending static prior, name-tie-broken."""
        plain = [r.record for r in self.records]
        return sorted(
            self.candidates,
            key=lambda sit: (-static_score(sit, plain), str(sit)),
        )

    def greedy(self) -> tuple[frozenset[str], float]:
        """The search; returns ``(chosen names, candidate-split median)``."""
        if not self.records:
            return frozenset(), float("inf")
        spaces = {str(sit): sit_space_bytes(sit) for sit in self.candidates}
        chosen: set[str] = set()
        used_space = 0.0
        best = median(self.evaluate(frozenset()))
        budget = self.space_budget_bytes
        # add pass: static-prior order, keep a move only if measured
        # median q-error improves and the space budget still holds
        for sit in self.ranked_candidates():
            if self.evaluations >= self.max_moves:
                break
            name = str(sit)
            if budget is not None and used_space + spaces[name] > budget:
                continue
            trial_median = median(self.evaluate(frozenset(chosen | {name})))
            if trial_median < best - IMPROVEMENT_TOLERANCE:
                chosen.add(name)
                used_space += spaces[name]
                best = trial_median
        # drop pass: anything whose absence doesn't hurt goes (smaller
        # configurations are cheaper to hold and to refresh)
        for name in sorted(chosen):
            if self.evaluations >= self.max_moves:
                break
            trial_median = median(self.evaluate(frozenset(chosen - {name})))
            if trial_median <= best + IMPROVEMENT_TOLERANCE:
                chosen.discard(name)
                used_space -= spaces[name]
                best = trial_median
        return frozenset(chosen), best


__all__ = [
    "EPSILON",
    "ConfigurationSearch",
    "MeasuredRecord",
    "median",
    "q_error",
    "sit_space_bytes",
    "static_score",
]
