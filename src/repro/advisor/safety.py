"""The safety gate: hard constraints verified on held-out records.

The search (:mod:`repro.advisor.search`) optimises freely on the
candidate split; nothing it proposes touches the catalog until this
gate has checked, on the *safety* split the search never saw:

1. **q-error** — worst-case measured q-error <= ``max_q_error``;
2. **space** — conditioned-SIT bytes <= ``space_budget_bytes``;
3. **refresh cost** — estimated rebuild seconds (the sum of recorded
   per-SIT build times) <= ``refresh_budget_s``.

Any violation yields ``NO_SOLUTION_FOUND``: the loop keeps the current
configuration and says so, rather than applying a plausible-but-
unverified change.  An empty safety split is also a rejection — a
constraint that cannot be checked is not a constraint that holds.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass

from repro.advisor.config import AdvisorConfig

#: the gate's rejection verdict (the loop reports it verbatim)
NO_SOLUTION_FOUND = "no-solution-found"


@dataclass(frozen=True)
class SafetyDecision:
    """The gate's verdict on one proposed configuration."""

    accepted: bool
    #: ``"accepted"`` or the first violated constraint
    #: (``"q_error"`` | ``"space"`` | ``"refresh_cost"`` |
    #: ``"no_safety_records"``)
    reason: str
    #: every violated constraint (superset of ``reason`` when rejected)
    violations: tuple[str, ...]
    #: measured worst-case q-error on the safety split
    worst_q_error: float
    #: conditioned-SIT bytes of the proposed configuration
    space_bytes: float
    #: estimated rebuild seconds of the proposed configuration
    refresh_seconds: float
    #: the bounds the measurements were checked against
    max_q_error: float
    space_budget_bytes: float | None
    refresh_budget_s: float | None

    @property
    def verdict(self) -> str:
        return "accepted" if self.accepted else NO_SOLUTION_FOUND

    def to_dict(self) -> dict:
        payload = asdict(self)
        payload["violations"] = list(self.violations)
        payload["verdict"] = self.verdict
        return payload


@dataclass(frozen=True)
class SafetyGate:
    """Checks measured safety-split numbers against the config's bounds."""

    config: AdvisorConfig

    def check(
        self,
        *,
        worst_q_error: float,
        space_bytes: float,
        refresh_seconds: float,
        safety_records: int,
    ) -> SafetyDecision:
        violations: list[str] = []
        if safety_records < 1:
            violations.append("no_safety_records")
        if worst_q_error > self.config.max_q_error:
            violations.append("q_error")
        budget = self.config.space_budget_bytes
        if budget is not None and space_bytes > budget:
            violations.append("space")
        refresh_budget = self.config.refresh_budget_s
        if refresh_budget is not None and refresh_seconds > refresh_budget:
            violations.append("refresh_cost")
        return SafetyDecision(
            accepted=not violations,
            reason=violations[0] if violations else "accepted",
            violations=tuple(violations),
            worst_q_error=worst_q_error,
            space_bytes=space_bytes,
            refresh_seconds=refresh_seconds,
            max_q_error=self.config.max_q_error,
            space_budget_bytes=budget,
            refresh_budget_s=refresh_budget,
        )


__all__ = ["NO_SOLUTION_FOUND", "SafetyDecision", "SafetyGate"]
