"""Deterministic candidate/safety partitioning of feedback records.

The Seldonian discipline behind the loop: the search is free to overfit
the *candidate* split, because nothing it proposes is applied until the
:class:`~repro.advisor.safety.SafetyGate` has verified the hard
constraints on the held-out *safety* split.  For that to be sound the
split must not leak: all records of the same predicate set must land on
the same side (a query seen during search must not also vouch for
safety).

The assignment is a seeded hash of the canonical predicate-set text —
no RNG state, no ordering sensitivity, stable across processes and
Python hash randomisation (``blake2b``, not built-in ``hash``).
"""

from __future__ import annotations

import hashlib
from typing import Iterable, Sequence

from repro.advisor.feedback import FeedbackRecord
from repro.core.predicates import PredicateSet

SAFETY = "safety"
CANDIDATE = "candidate"


def canonical_key(predicates: PredicateSet) -> str:
    """Order-independent text form of a predicate set."""
    return " & ".join(sorted(str(p) for p in predicates))


def assign_split(
    predicates: PredicateSet, seed: int, safety_fraction: float
) -> str:
    """``"safety"`` or ``"candidate"`` for a predicate set, deterministically.

    The first 8 bytes of ``blake2b(seed | canonical_key)`` are mapped to
    ``[0, 1)``; below ``safety_fraction`` goes to the safety split.
    """
    if not 0.0 < safety_fraction < 1.0:
        raise ValueError("safety_fraction must be in (0, 1)")
    payload = f"{seed}|{canonical_key(predicates)}".encode()
    digest = hashlib.blake2b(payload, digest_size=8).digest()
    point = int.from_bytes(digest, "big") / 2**64
    return SAFETY if point < safety_fraction else CANDIDATE


def split_records(
    records: Iterable[FeedbackRecord], seed: int, safety_fraction: float
) -> tuple[Sequence[FeedbackRecord], Sequence[FeedbackRecord]]:
    """Partition records into ``(candidate, safety)``, order preserved."""
    candidate: list[FeedbackRecord] = []
    safety: list[FeedbackRecord] = []
    for record in records:
        side = assign_split(record.predicates, seed, safety_fraction)
        (safety if side == SAFETY else candidate).append(record)
    return candidate, safety


__all__ = [
    "CANDIDATE",
    "SAFETY",
    "assign_split",
    "canonical_key",
    "split_records",
]
