"""Per-query feedback records feeding the self-tuning loop.

Every served estimation can be *observed*: the predicate set, the
estimated cardinality the service answered with, and the names of the
conditioned SITs that matched during decomposition.  The observations go
into a :class:`FeedbackLog` — a bounded, thread-safe, append-only window
over recent traffic.  Exact cardinalities are deliberately **not**
stored here: the tuning tick resolves truth lazily (and at most once per
distinct predicate set) through the LEO-style
:class:`repro.stats.feedback.FeedbackRepository`, so the serving path
never pays for an engine execution.

Record sequence numbers are deterministic (a monotone counter, no
clocks), which keeps the candidate/safety split and the greedy search
replayable: same log, same seed -> same tuning outcome.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass

from repro.core.predicates import PredicateSet, tables_of

#: default bound on retained feedback records
DEFAULT_LOG_CAPACITY = 1024


@dataclass(frozen=True)
class FeedbackRecord:
    """One observed estimation: what was asked and what was answered."""

    #: monotone position in the log (deterministic, no timestamps)
    seq: int
    #: the served predicate set (the feedback key)
    predicates: PredicateSet
    #: the cardinality the estimator answered with
    estimated_cardinality: float
    #: names (``str(sit)``) of conditioned SITs used by the decomposition
    matched_sits: tuple[str, ...]
    #: tables the predicate set touches (precomputed for invalidation)
    tables: frozenset[str]


class FeedbackLog:
    """A bounded window of :class:`FeedbackRecord` in arrival order.

    Appends past ``capacity`` drop the oldest record and count it in
    ``dropped`` — the loop tunes against *recent* traffic by design.
    """

    def __init__(self, capacity: int = DEFAULT_LOG_CAPACITY) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = capacity
        self._records: list[FeedbackRecord] = []
        self._lock = threading.Lock()
        self._next_seq = 0
        self.appended = 0
        self.dropped = 0

    def append(
        self,
        predicates: PredicateSet,
        estimated_cardinality: float,
        matched_sits: tuple[str, ...] = (),
    ) -> FeedbackRecord:
        """Observe one served estimation; returns the stored record."""
        key = frozenset(predicates)
        with self._lock:
            record = FeedbackRecord(
                seq=self._next_seq,
                predicates=key,
                estimated_cardinality=float(estimated_cardinality),
                matched_sits=tuple(sorted(matched_sits)),
                tables=tables_of(key),
            )
            self._next_seq += 1
            self.appended += 1
            self._records.append(record)
            overflow = len(self._records) - self.capacity
            if overflow > 0:
                del self._records[:overflow]
                self.dropped += overflow
        return record

    def records(self) -> tuple[FeedbackRecord, ...]:
        """A point-in-time snapshot, oldest first."""
        with self._lock:
            return tuple(self._records)

    def clear(self) -> int:
        """Drop everything (e.g. after an accepted reconfiguration made
        old estimates unrepresentative); returns the number dropped."""
        with self._lock:
            count = len(self._records)
            self._records.clear()
        return count

    def counters(self) -> dict[str, float]:
        with self._lock:
            return {
                "feedback_records": float(len(self._records)),
                "feedback_appended": float(self.appended),
                "feedback_dropped": float(self.dropped),
            }

    def __len__(self) -> int:
        with self._lock:
            return len(self._records)


__all__ = ["DEFAULT_LOG_CAPACITY", "FeedbackLog", "FeedbackRecord"]
