"""The self-tuning loop: observe -> split -> search -> gate -> apply.

:class:`SelfTuningAdvisor` closes the loop the static advisor
(:mod:`repro.stats.advisor`) leaves open.  It watches served estimates
(:class:`~repro.advisor.feedback.FeedbackLog`), resolves engine-exact
truth through the LEO-style
:class:`~repro.stats.feedback.FeedbackRepository` (attached to the
catalog, so table updates invalidate stale truth), and on every *tick*:

1. deterministically splits the feedback into candidate/safety sets
   (:mod:`repro.advisor.split`);
2. greedy-searches conditioned-SIT configurations on the candidate set,
   scored by measured q-error (:mod:`repro.advisor.search`);
3. verifies the three hard constraints on the held-out safety set
   (:mod:`repro.advisor.safety`) — any violation keeps the current
   configuration and reports ``no-solution-found``;
4. applies an accepted configuration through the catalog's existing
   refresh path (``RefreshPolicy(keep_keys=...)`` +
   :func:`~repro.catalog.refresh.execute_refresh`), never by mutating a
   pool in place, so serving sessions keep their snapshot isolation.

A tick that cannot evaluate safety (engine executor unavailable or
failing) is *skipped*, counted under ``advisor.skipped_ticks``, and
changes nothing — tuning degrades to a no-op rather than blocking or
corrupting the serving path.

SITs dropped by an accepted configuration stay in the advisor's
*universe* (with their provenance), so a later tick can re-propose them
when the workload shifts back.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field

from repro.advisor.config import AdvisorConfig
from repro.advisor.feedback import FeedbackLog
from repro.advisor.safety import (
    NO_SOLUTION_FOUND,
    SafetyDecision,
    SafetyGate,
)
from repro.advisor.search import (
    ConfigurationSearch,
    MeasuredRecord,
    sit_space_bytes,
)
from repro.advisor.split import split_records
from repro.catalog.catalog import (
    SITMetadata,
    StatisticsCatalog,
    sit_key,
)
from repro.catalog.refresh import RefreshPolicy, execute_refresh
from repro.core.predicates import PredicateSet, tables_of
from repro.engine.executor import Executor
from repro.obs.metrics import MetricsRegistry
from repro.obs.snapshot import StatsSnapshot
from repro.stats.feedback import FeedbackRepository
from repro.stats.sit import SIT

#: bound on retained tuning-tick reports
HISTORY_LIMIT = 50

#: tick outcomes
ACCEPTED = "accepted"
DEFERRED = "deferred"  # not enough feedback yet
SKIPPED = "skipped"  # safety evaluation unavailable


@dataclass(frozen=True)
class TuningReport:
    """What one :meth:`SelfTuningAdvisor.tick` did."""

    #: ``"accepted"`` | ``"no-solution-found"`` | ``"deferred"`` |
    #: ``"skipped"``
    status: str
    #: human-readable cause (gate reason, or why the tick stopped early)
    reason: str = ""
    #: the proposed conditioned-SIT names (sorted; empty when none)
    chosen: tuple[str, ...] = ()
    #: whether the catalog was actually reconfigured
    applied: bool = False
    candidate_records: int = 0
    safety_records: int = 0
    #: candidate-split median q-error of the proposal (inf when unset)
    candidate_median_q_error: float = float("inf")
    #: the gate's verdict (None when the tick stopped before the gate)
    decision: SafetyDecision | None = None
    #: configuration evaluations the search spent
    evaluations: int = 0
    catalog_version_before: int = 0
    catalog_version_after: int = 0

    def to_dict(self) -> dict:
        return {
            "status": self.status,
            "reason": self.reason,
            "chosen": list(self.chosen),
            "applied": self.applied,
            "candidate_records": self.candidate_records,
            "safety_records": self.safety_records,
            "candidate_median_q_error": self.candidate_median_q_error,
            "decision": (
                self.decision.to_dict() if self.decision is not None else None
            ),
            "evaluations": self.evaluations,
            "catalog_version_before": self.catalog_version_before,
            "catalog_version_after": self.catalog_version_after,
        }


@dataclass
class SelfTuningAdvisor:
    """Feedback-driven, safety-gated SIT configuration tuning."""

    catalog: StatisticsCatalog
    executor: Executor | None = None
    config: AdvisorConfig = field(default_factory=AdvisorConfig)
    name: str = "repro.advisor"

    def __post_init__(self) -> None:
        if self.executor is None and self.catalog.database is not None:
            self.executor = Executor(self.catalog.database)
        self.log = FeedbackLog(self.config.log_capacity)
        #: engine-exact truth, LRU-bounded, table-invalidated through the
        #: catalog's one event path
        self.truth = self.catalog.attach_feedback(
            FeedbackRepository(max_entries=self.config.log_capacity)
        )
        self.metrics = MetricsRegistry()
        self.history: list[TuningReport] = []
        self._tick_lock = threading.Lock()
        #: every conditioned SIT (+ provenance) ever seen in a snapshot,
        #: keyed by name — the search's candidate universe
        self._universe: dict[str, tuple[SIT, SITMetadata]] = {}
        self._last_tick: float | None = None
        #: rolling-median estimated cardinality captured at the last
        #: tick — the baseline the drift trigger compares against
        self._drift_baseline: float | None = None

    # ------------------------------------------------------------------
    # Observation (the serving-path side; must stay cheap and safe)
    # ------------------------------------------------------------------
    def observe(
        self,
        predicates: PredicateSet,
        estimated_cardinality: float,
        matched_sits: tuple[str, ...] = (),
    ) -> None:
        """Record one served estimation."""
        self.log.append(predicates, estimated_cardinality, matched_sits)

    def record_result(self, predicates: PredicateSet, result) -> None:
        """Feedback-sink adapter for estimation sessions: derives the
        estimated cardinality and the matched conditioned-SIT names from
        an :class:`~repro.core.get_selectivity.EstimationResult`."""
        predicates = frozenset(predicates)
        if not predicates:
            return
        database = self.catalog.database
        if database is None:
            return
        estimated = result.selectivity * database.cross_product_size(
            tables_of(predicates)
        )
        matched = tuple(
            sorted(
                {
                    str(match.sit)
                    for factor_match in result.matches
                    for match in factor_match.attribute_matches
                    if not match.sit.is_base
                }
            )
        )
        self.observe(predicates, estimated, matched)

    # ------------------------------------------------------------------
    # Tick scheduling
    # ------------------------------------------------------------------
    def ready(self, now: float | None = None) -> bool:
        """Whether a tick is worth attempting (enough feedback, interval
        elapsed — or the feedback distribution drifted).  Pure check —
        does not mutate state.

        With ``config.drift_threshold`` set, a shift of the rolling
        median estimated cardinality by at least that factor relative to
        the baseline captured at the last tick makes the advisor ready
        immediately, without waiting out ``min_interval_s`` — a write
        storm that moves the workload's cardinality profile re-tunes as
        soon as the shift is visible in feedback.
        """
        if len(self.log) < self.config.min_feedback:
            return False
        if self._last_tick is None:
            return True
        threshold = self.config.drift_threshold
        if threshold is not None and self.drift_ratio() >= threshold:
            return True
        now = time.monotonic() if now is None else now
        return now - self._last_tick >= self.config.min_interval_s

    def drift_ratio(self) -> float:
        """Shift factor (>= 1) of the rolling feedback median versus the
        baseline captured at the last tick; 1.0 before any baseline."""
        baseline = self._drift_baseline
        if baseline is None:
            return 1.0
        current = self._rolling_median()
        if current is None:
            return 1.0
        eps = 1e-9
        high = max(current, baseline) + eps
        low = min(current, baseline) + eps
        return high / low

    def _rolling_median(self) -> float | None:
        """Median estimated cardinality over the most recent
        ``min_feedback`` records (the drift trigger's rolling window)."""
        records = self.log.records()
        if not records:
            return None
        window = records[-self.config.min_feedback :]
        values = sorted(record.estimated_cardinality for record in window)
        return values[len(values) // 2]

    # ------------------------------------------------------------------
    # The tick
    # ------------------------------------------------------------------
    def tick(self) -> TuningReport:
        """Run one tuning round; never raises, never blocks observers."""
        with self._tick_lock:
            self._last_tick = time.monotonic()
            self.metrics.counter("advisor.ticks").inc()
            threshold = self.config.drift_threshold
            if threshold is not None and self.drift_ratio() >= threshold:
                self.metrics.counter("advisor.drift_ticks").inc()
            # re-baseline: the next drift comparison starts from the
            # distribution this tick tuned against
            self._drift_baseline = self._rolling_median()
            report = self._tick_locked()
        self.history.append(report)
        del self.history[:-HISTORY_LIMIT]
        return report

    def _tick_locked(self) -> TuningReport:
        version_before = self.catalog.version
        records = self.log.records()
        if len(records) < self.config.min_feedback:
            self.metrics.counter("advisor.deferred_ticks").inc()
            return TuningReport(
                status=DEFERRED,
                reason=(
                    f"{len(records)} feedback records "
                    f"< min_feedback={self.config.min_feedback}"
                ),
                catalog_version_before=version_before,
                catalog_version_after=self.catalog.version,
            )

        snapshot = self.catalog.snapshot()
        for sit in snapshot.pool:
            if not sit.is_base:
                self._universe[str(sit)] = (sit, snapshot.metadata_for(sit))

        # Resolve engine-exact truth, once per distinct predicate set.
        # Failure here (no executor, engine down) is the wire-degradation
        # path: skip the tick, count it, change nothing.
        try:
            if self.executor is None:
                raise RuntimeError("no executor attached")
            if self.catalog.database is None:
                raise RuntimeError("catalog has no database attached")
            truth = {
                predicates: self._resolve_truth(predicates)
                for predicates in {record.predicates for record in records}
            }
        except Exception as error:
            self.metrics.counter("advisor.skipped_ticks").inc()
            return TuningReport(
                status=SKIPPED,
                reason=f"safety evaluation unavailable: {error}",
                catalog_version_before=version_before,
                catalog_version_after=self.catalog.version,
            )

        candidate_raw, safety_raw = split_records(
            records, self.config.split_seed, self.config.safety_fraction
        )
        candidate = [
            MeasuredRecord(record, truth[record.predicates])
            for record in candidate_raw
        ]
        safety = [
            MeasuredRecord(record, truth[record.predicates])
            for record in safety_raw
        ]
        if not candidate:
            self.metrics.counter("advisor.deferred_ticks").inc()
            return TuningReport(
                status=DEFERRED,
                reason="no candidate-split records",
                candidate_records=0,
                safety_records=len(safety),
                catalog_version_before=version_before,
                catalog_version_after=self.catalog.version,
            )

        base_sits = [sit for sit in snapshot.pool if sit.is_base]
        candidates = [
            sit for _, (sit, _) in sorted(self._universe.items())
        ]

        search = ConfigurationSearch(
            database=self.catalog.database,
            base_sits=base_sits,
            candidates=candidates,
            records=candidate,
            space_budget_bytes=self.config.space_budget_bytes,
            max_moves=self.config.max_moves,
        )
        chosen, candidate_median = search.greedy()
        self.metrics.counter("advisor.proposals").inc()

        # Safety evaluation on the held-out split the search never saw.
        evaluator = ConfigurationSearch(
            database=self.catalog.database,
            base_sits=base_sits,
            candidates=candidates,
            records=safety,
            space_budget_bytes=None,
            max_moves=1,
        )
        safety_errors = evaluator.evaluate(chosen) if safety else []
        worst = max(safety_errors) if safety_errors else float("inf")
        by_name = dict(self._universe)
        space = sum(sit_space_bytes(by_name[name][0]) for name in chosen)
        refresh_cost = sum(
            by_name[name][1].build_seconds for name in chosen
        )
        decision = SafetyGate(self.config).check(
            worst_q_error=worst,
            space_bytes=space,
            refresh_seconds=refresh_cost,
            safety_records=len(safety),
        )

        if not decision.accepted:
            self.metrics.counter("advisor.no_solution").inc()
            for violation in decision.violations:
                self.metrics.counter(f"advisor.rejects_{violation}").inc()
            return TuningReport(
                status=NO_SOLUTION_FOUND,
                reason=decision.reason,
                chosen=tuple(sorted(chosen)),
                candidate_records=len(candidate),
                safety_records=len(safety),
                candidate_median_q_error=candidate_median,
                decision=decision,
                evaluations=search.evaluations + evaluator.evaluations,
                catalog_version_before=version_before,
                catalog_version_after=self.catalog.version,
            )

        self.metrics.counter("advisor.accepts").inc()
        self.metrics.gauge("advisor.safety_q_error").set(decision.worst_q_error)
        self.metrics.gauge("advisor.safety_space_bytes").set(
            decision.space_bytes
        )
        self.metrics.gauge("advisor.safety_refresh_seconds").set(
            decision.refresh_seconds
        )
        current = {str(sit) for sit in snapshot.pool if not sit.is_base}
        applied = False
        if chosen != current:
            self._apply(chosen, by_name)
            applied = True
        return TuningReport(
            status=ACCEPTED,
            reason=decision.reason,
            chosen=tuple(sorted(chosen)),
            applied=applied,
            candidate_records=len(candidate),
            safety_records=len(safety),
            candidate_median_q_error=candidate_median,
            decision=decision,
            evaluations=search.evaluations + evaluator.evaluations,
            catalog_version_before=version_before,
            catalog_version_after=self.catalog.version,
        )

    def _resolve_truth(self, predicates: PredicateSet) -> int:
        """Exact cardinality for a predicate set, cached in :attr:`truth`."""
        cached = self.truth.lookup(predicates)
        if cached is not None:
            return cached
        assert self.executor is not None
        return self.truth.record_from_execution(self.executor, predicates)

    def _apply(
        self,
        chosen: frozenset[str],
        by_name: dict[str, tuple[SIT, SITMetadata]],
    ) -> None:
        """Install an accepted configuration through the refresh path.

        Missing SITs are re-registered with their *preserved* provenance
        (so genuinely stale ones rebuild in the refresh below), then a
        ``keep_keys`` refresh drops every conditioned SIT outside the
        accepted set.  Base histograms are untouched throughout.
        """
        registered = {
            str(sit) for sit in self.catalog.pool if not sit.is_base
        }
        for name in sorted(chosen - registered):
            sit, metadata = by_name[name]
            self.catalog.add(sit, metadata)
        keep = frozenset(sit_key(by_name[name][0]) for name in chosen)
        execute_refresh(self.catalog, RefreshPolicy(keep_keys=keep))

    # ------------------------------------------------------------------
    # Observability
    # ------------------------------------------------------------------
    def metrics_registry(self) -> MetricsRegistry:
        """Tuning counters + feedback fill under ``advisor.*``."""
        registry = MetricsRegistry()
        registry.merge(self.metrics)
        for key, value in self.log.counters().items():
            registry.gauge(f"advisor.{key}").set(value)
        registry.gauge("advisor.universe_size").set(float(len(self._universe)))
        registry.gauge("advisor.history_length").set(float(len(self.history)))
        registry.gauge("advisor.drift_ratio").set(self.drift_ratio())
        return registry

    def stats_snapshot(self) -> StatsSnapshot:
        return StatsSnapshot.from_registry(
            self.metrics_registry(),
            meta={"subsystem": "advisor", "name": self.name},
        )

    def status(self) -> dict:
        """A JSON-ready summary (the CLI's ``advisor status`` output)."""
        last = self.history[-1] if self.history else None
        return {
            "config": self.config.to_dict(),
            "feedback": self.log.counters(),
            "universe_size": len(self._universe),
            "current_conditioned_sits": sorted(
                str(sit) for sit in self.catalog.pool if not sit.is_base
            ),
            "catalog_version": self.catalog.version,
            "drift_ratio": self.drift_ratio(),
            "ticks": len(self.history),
            "last_report": last.to_dict() if last is not None else None,
        }


__all__ = [
    "ACCEPTED",
    "DEFERRED",
    "HISTORY_LIMIT",
    "SKIPPED",
    "SelfTuningAdvisor",
    "TuningReport",
]
