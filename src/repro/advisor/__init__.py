"""Safety-constrained, feedback-driven SIT self-tuning (:mod:`repro.advisor`).

The static advisor (:mod:`repro.stats.advisor`) picks SITs once, from
build-time heuristics.  This package closes the loop at run time:

* :mod:`~repro.advisor.feedback` — bounded log of served estimates
  (predicates, estimated cardinality, matched SITs);
* :mod:`~repro.advisor.split` — deterministic, leak-free candidate /
  safety partitioning of the feedback (seeded hash, no RNG state);
* :mod:`~repro.advisor.search` — greedy configuration search scored by
  *measured* q-error against engine-exact truth;
* :mod:`~repro.advisor.safety` — the gate verifying worst-case q-error,
  space and refresh-cost bounds on the held-out safety split; any
  violation yields ``no-solution-found`` and the current configuration
  stands;
* :mod:`~repro.advisor.loop` — :class:`SelfTuningAdvisor`, the tick
  orchestration, applying accepted configurations through the catalog's
  refresh path.

The service layer (:mod:`repro.service`) runs the loop between batches
when ``ServiceConfig.advisor`` is set; it is equally usable standalone
(see ``python -m repro advisor``).
"""

from repro.advisor.config import AdvisorConfig
from repro.advisor.feedback import FeedbackLog, FeedbackRecord
from repro.advisor.loop import SelfTuningAdvisor, TuningReport
from repro.advisor.safety import NO_SOLUTION_FOUND, SafetyDecision, SafetyGate
from repro.advisor.search import ConfigurationSearch, MeasuredRecord
from repro.advisor.split import assign_split, split_records

__all__ = [
    "AdvisorConfig",
    "ConfigurationSearch",
    "FeedbackLog",
    "FeedbackRecord",
    "MeasuredRecord",
    "NO_SOLUTION_FOUND",
    "SafetyDecision",
    "SafetyGate",
    "SelfTuningAdvisor",
    "TuningReport",
    "assign_split",
    "split_records",
]
