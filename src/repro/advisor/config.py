"""Tunables of the self-tuning loop (:mod:`repro.advisor`).

:class:`AdvisorConfig` follows the layered-config pattern of
:mod:`repro.service.config`: a frozen dataclass that validates in
``__post_init__`` and round-trips through ``from_dict`` / ``to_dict``,
so a deployment file can carry an ``advisor`` block next to ``healing``
and ``cluster``.

The three *safety constraints* (the gate's hard bounds, verified on the
held-out safety split before any configuration change is applied):

``max_q_error``
    worst-case q-error the proposed configuration may show on the
    safety records;
``space_budget_bytes``
    bytes the proposed *conditioned* SITs may occupy (base histograms
    are always kept and not counted);
``refresh_budget_s``
    estimated seconds a full rebuild of the proposed conditioned SITs
    may cost (sum of recorded per-SIT build times).

This module is import-light by design (standard library only) so the
service layer can nest the config without pulling the tuning loop in.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, fields
from typing import Any, Mapping


@dataclass(frozen=True)
class AdvisorConfig:
    """Knobs of one :class:`~repro.advisor.loop.SelfTuningAdvisor`."""

    #: safety bound: worst-case q-error on the safety split
    max_q_error: float = 25.0
    #: safety budget: bytes of conditioned-SIT histograms (``None`` =
    #: unbounded)
    space_budget_bytes: float | None = None
    #: safety budget: estimated rebuild seconds of the proposed
    #: conditioned SITs (``None`` = unbounded)
    refresh_budget_s: float | None = None
    #: feedback records required before a tuning tick runs
    min_feedback: int = 8
    #: fraction of feedback records hashed into the held-out safety
    #: split (the rest form the candidate/search split)
    safety_fraction: float = 0.3
    #: seed of the deterministic candidate/safety hash split
    split_seed: int = 7
    #: greedy-search move budget (configuration evaluations per tick)
    max_moves: int = 24
    #: bound on retained feedback records (oldest dropped past it)
    log_capacity: int = 1024
    #: seconds between background tuning ticks (the service-side rate
    #: limit; 0 ticks as often as batches allow)
    min_interval_s: float = 1.0
    #: feedback-drift trigger: a tick also becomes ready *before*
    #: ``min_interval_s`` elapses when the rolling median estimated
    #: cardinality of recent feedback shifts from the last tick's
    #: baseline by at least this factor (``None`` disables the trigger;
    #: must be >= 1 when set)
    drift_threshold: float | None = None

    def __post_init__(self) -> None:
        if self.max_q_error < 0:
            raise ValueError("max_q_error must be >= 0")
        if self.space_budget_bytes is not None and self.space_budget_bytes < 0:
            raise ValueError("space_budget_bytes must be >= 0 (or None)")
        if self.refresh_budget_s is not None and self.refresh_budget_s < 0:
            raise ValueError("refresh_budget_s must be >= 0 (or None)")
        if self.min_feedback < 1:
            raise ValueError("min_feedback must be >= 1")
        if not 0.0 < self.safety_fraction < 1.0:
            raise ValueError("safety_fraction must be in (0, 1)")
        if self.max_moves < 1:
            raise ValueError("max_moves must be >= 1")
        if self.log_capacity < 1:
            raise ValueError("log_capacity must be >= 1")
        if self.min_interval_s < 0:
            raise ValueError("min_interval_s must be >= 0")
        if self.drift_threshold is not None and self.drift_threshold < 1.0:
            raise ValueError("drift_threshold must be >= 1 (or None)")

    def to_dict(self) -> dict:
        return dataclasses.asdict(self)

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "AdvisorConfig":
        names = {f.name for f in fields(cls)}
        unknown = sorted(set(data) - names)
        if unknown:
            raise ValueError(f"unknown AdvisorConfig keys: {unknown}")
        return cls(**dict(data))


__all__ = ["AdvisorConfig"]
