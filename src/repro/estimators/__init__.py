"""Pluggable cardinality-estimation backends behind one protocol.

The package defines the :class:`~repro.estimators.base.Estimator`
contract and three peer implementations:

* ``"sit"`` — :class:`~repro.estimators.sit.SITEstimator`, the paper's
  SIT/DP ``getSelectivity`` path (the default and the reference);
* ``"bn"`` — :class:`~repro.estimators.bn.BayesianNetworkEstimator`,
  per-table Chow-Liu dependency trees (arXiv:1907.06295);
* ``"sample"`` —
  :class:`~repro.estimators.sampling.GuaranteedSampleEstimator`,
  uniform per-table reservoirs with a VC-dimension-derived additive
  error bound (arXiv:1101.5805) surfaced as
  ``EstimationResult.error_bound``.

:func:`create_estimator` is the selector every layer above dispatches
through — ``connect(backend=...)``, ``ServiceConfig.backend`` and the
CLI all route here.  (The cluster tier is SIT-only: its shards serve
from a row-free stats snapshot, and the peer backends build from rows;
``ServiceConfig`` rejects the combination at validation.)
"""

from __future__ import annotations

from repro.estimators.base import Estimator, Statistics, resolve_statistics
from repro.estimators.bn import BayesianNetworkEstimator
from repro.estimators.sampling import GuaranteedSampleEstimator
from repro.estimators.sit import (
    SITEstimator,
    make_gs_diff,
    make_gs_nind,
    make_gs_opt,
    make_nosit,
)

#: the selectable backend identifiers, in preference order
BACKENDS = ("sit", "bn", "sample")

#: constructor kwargs owned by the SIT backend (stripped for peers)
_SIT_ONLY = frozenset(
    {
        "error_function",
        "engine",
        "strict",
        "plan_cache",
        "sit_driven_pruning",
        "fallback_estimator",
    }
)


def create_estimator(
    backend: str,
    database,
    statistics=None,
    **kwargs,
) -> Estimator:
    """Build the estimator for ``backend`` (``"sit"``, ``"bn"``, ``"sample"``).

    For the SIT backend a :class:`GuaranteedSampleEstimator` over the
    same database is wired in as the degradation ladder's level-3
    fallback (pass ``fallback_estimator=None`` explicitly to keep the
    classical magic constants).  SIT-specific kwargs (``engine``,
    ``strict``, ``plan_cache``, ``sit_driven_pruning``,
    ``error_function``, ``fallback_estimator``) are rejected for the
    peer backends, which accept their own tuning knobs
    (``sample_size``/``delta`` for sampling, ``max_bins``/``build_rows``
    for the BN) plus the shared ``name``/``seed``.
    """
    if backend not in BACKENDS:
        raise ValueError(
            f"unknown estimator backend {backend!r}; expected one of {BACKENDS}"
        )
    if backend == "sit":
        if "fallback_estimator" not in kwargs and database is not None:
            kwargs["fallback_estimator"] = GuaranteedSampleEstimator(database)
        error_function = kwargs.pop("error_function", None)
        return SITEstimator(database, statistics, error_function, **kwargs)
    foreign = _SIT_ONLY.intersection(kwargs)
    if foreign:
        raise TypeError(
            f"backend {backend!r} does not accept {sorted(foreign)} "
            "(SIT-only options)"
        )
    if backend == "bn":
        return BayesianNetworkEstimator(database, statistics, **kwargs)
    return GuaranteedSampleEstimator(database, statistics, **kwargs)


__all__ = [
    "BACKENDS",
    "BayesianNetworkEstimator",
    "Estimator",
    "GuaranteedSampleEstimator",
    "SITEstimator",
    "Statistics",
    "create_estimator",
    "make_gs_diff",
    "make_gs_nind",
    "make_gs_opt",
    "make_nosit",
    "resolve_statistics",
]
