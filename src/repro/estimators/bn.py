"""The Bayesian-network backend: per-table dependency trees.

Models each table as a tree-shaped Bayesian network over its attributes
(a Chow-Liu tree: the maximum spanning tree of pairwise mutual
information over discretized columns), after Halford et al.
(arXiv:1907.06295): intra-table correlations are captured by the tree's
conditional probability tables, while tables are combined under the
cross-table independence assumption with join selectivities taken from
exact value-frequency overlap of the join columns.

Filters are pushed into the network as soft evidence — a per-attribute
weight vector giving, for every discretized bin, the fraction of the
bin's mass the filter keeps (with a ``1/distinct`` floor for point
predicates and zero weight on the NULL bin) — and the filtered mass is
read out with one leaf-to-root message pass, which is exact on the tree.

Models are built per table from a bounded uniform row sample (bin edges
reuse the base-SIT histogram boundaries when a statistics pool is
supplied, so the network derives from the same scans as the SIT path)
and are version-gated: ``notify_table_update`` bumps the table version
through the catalog's single invalidation path, and the next estimate
lazily rebuilds only the stale table's model.
"""

from __future__ import annotations

import time
import zlib

import numpy as np

from repro.core.get_selectivity import EstimationResult
from repro.core.predicates import (
    Attribute,
    FilterPredicate,
    JoinPredicate,
    PredicateSet,
    tables_of,
)
from repro.core.selectivity import Decomposition
from repro.engine.database import Database
from repro.estimators.base import Estimator
from repro.obs.metrics import MetricsRegistry
from repro.obs.snapshot import StatsSnapshot

_EMPTY = Decomposition(())

#: Laplace smoothing mass added to every CPT cell
ALPHA = 0.5


class _TableModel:
    """One table's Chow-Liu tree: bins, CPTs and per-bin distinct counts."""

    __slots__ = (
        "version",
        "columns",
        "edges",
        "distinct",
        "parent",
        "order",
        "cpt",
        "rows",
    )

    def __init__(self, version: int, columns: list[str], rows: int):
        self.version = version
        self.columns = columns
        self.rows = rows
        #: column -> ascending bin boundaries (k bins -> k+1 edges); the
        #: state space of a column is its k value bins plus one NULL bin
        self.edges: dict[str, np.ndarray] = {}
        #: column -> per-value-bin distinct counts (point-predicate floor)
        self.distinct: dict[str, np.ndarray] = {}
        #: column -> parent column (tree edges; roots map to None)
        self.parent: dict[str, str | None] = {}
        #: children-before-parents evaluation order for message passing
        self.order: list[str] = []
        #: column -> CPT; roots hold the marginal ``P(x)`` (1-d), others
        #: ``P(x | parent)`` as a ``(parent_states, states)`` matrix
        self.cpt: dict[str, np.ndarray] = {}

    def states(self, column: str) -> int:
        return len(self.edges[column])  # k value bins + the NULL bin

    def space_bytes(self) -> float:
        arrays = [*self.edges.values(), *self.distinct.values(), *self.cpt.values()]
        return float(sum(array.nbytes for array in arrays))


class BayesianNetworkEstimator(Estimator):
    """Per-table Chow-Liu trees + exact join-column overlap."""

    backend = "bn"

    def __init__(
        self,
        database: Database,
        statistics=None,
        *,
        max_bins: int = 12,
        build_rows: int = 4096,
        seed: int = 0,
        name: str | None = None,
    ):
        if max_bins < 2:
            raise ValueError("max_bins must be at least 2")
        if build_rows <= 0:
            raise ValueError("build_rows must be positive")
        super().__init__(
            database, statistics, None, name if name is not None else "GS-BN"
        )
        self.max_bins = int(max_bins)
        self.build_rows = int(build_rows)
        self.seed = int(seed)
        self._models: dict[str, _TableModel] = {}
        #: (left, right, left version, right version) -> join selectivity
        self._join_cache: dict[tuple, float] = {}
        self._estimates = 0
        self._models_built = 0
        self._estimation_seconds = 0.0

    # -- model construction ----------------------------------------------
    def _base_edges(self, attribute: Attribute) -> np.ndarray | None:
        """Bin boundaries from the pool's base SIT over ``attribute``.

        Reusing the SIT histogram boundaries keeps the BN derived from
        the same builder scans; boundaries are thinned to ``max_bins``.
        """
        if self.pool is None:
            return None
        for sit in self.pool:
            if sit.is_base and sit.attribute == attribute:
                lows, highs, _, _ = sit.histogram.bucket_arrays()
                if len(lows) == 0:
                    return None
                edges = np.unique(np.concatenate([lows, highs[-1:]]))
                if len(edges) < 2:
                    return None
                if len(edges) > self.max_bins + 1:
                    keep = np.linspace(
                        0, len(edges) - 1, self.max_bins + 1
                    ).round().astype(int)
                    edges = edges[np.unique(keep)]
                return edges
        return None

    def _quantile_edges(self, values: np.ndarray) -> np.ndarray:
        finite = values[~np.isnan(values)]
        if finite.size == 0:
            return np.array([0.0, 1.0])
        quantiles = np.linspace(0.0, 1.0, self.max_bins + 1)
        edges = np.unique(np.quantile(finite, quantiles))
        if len(edges) < 2:  # a constant column still needs one bin
            edges = np.array([edges[0], edges[0] + 1.0])
        return edges

    def _codes(self, values: np.ndarray, edges: np.ndarray) -> np.ndarray:
        """Discretize ``values``; NULLs land in the trailing NULL bin."""
        bins = len(edges) - 1
        null = np.isnan(values)
        codes = np.searchsorted(edges, np.nan_to_num(values), side="right") - 1
        codes = np.clip(codes, 0, bins - 1)
        codes[null] = bins
        return codes.astype(np.intp)

    def _mutual_information(
        self, a: np.ndarray, ka: int, b: np.ndarray, kb: int
    ) -> float:
        joint = np.bincount(a * kb + b, minlength=ka * kb).reshape(ka, kb)
        n = joint.sum()
        if n == 0:
            return 0.0
        pxy = joint / n
        px = pxy.sum(axis=1, keepdims=True)
        py = pxy.sum(axis=0, keepdims=True)
        mask = pxy > 0
        return float(np.sum(pxy[mask] * np.log(pxy[mask] / (px @ py)[mask])))

    def _build_model(self, table: str, version: int) -> _TableModel:
        source = self.database.table(table)
        columns = list(source.schema.columns)
        rows = source.row_count
        model = _TableModel(version, columns, rows)
        self._models_built += 1
        if rows > self.build_rows:
            rng = np.random.default_rng(
                (self.seed, zlib.crc32(table.encode("utf-8")), version)
            )
            picked = np.sort(
                rng.choice(rows, size=self.build_rows, replace=False)
            )
        else:
            picked = slice(None)
        codes: dict[str, np.ndarray] = {}
        for column in columns:
            values = source.data[column][picked]
            edges = self._base_edges(Attribute(table, column))
            if edges is None:
                edges = self._quantile_edges(values)
            model.edges[column] = edges
            codes[column] = self._codes(values, edges)
            bins = len(edges) - 1
            distinct = np.zeros(bins)
            finite = values[~np.isnan(values)]
            if finite.size:
                finite_codes = codes[column][~np.isnan(values)]
                for b in range(bins):
                    distinct[b] = np.unique(finite[finite_codes == b]).size
            model.distinct[column] = distinct
        # -- Chow-Liu: maximum spanning tree of pairwise MI (Prim) --------
        if columns:
            in_tree = {columns[0]}
            model.parent[columns[0]] = None
            remaining = [c for c in columns[1:]]
            mi: dict[tuple[str, str], float] = {}
            for i, a in enumerate(columns):
                for b in columns[i + 1 :]:
                    mi[(a, b)] = mi[(b, a)] = self._mutual_information(
                        codes[a],
                        model.states(a),
                        codes[b],
                        model.states(b),
                    )
            while remaining:
                best, best_parent, best_mi = None, None, -1.0
                for candidate in remaining:  # column order breaks ties
                    for inside in columns:
                        if inside not in in_tree:
                            continue
                        weight = mi[(inside, candidate)]
                        if weight > best_mi:
                            best, best_parent, best_mi = candidate, inside, weight
                in_tree.add(best)
                remaining.remove(best)
                model.parent[best] = best_parent
        # children-before-parents order = reversed BFS from the root
        children: dict[str, list[str]] = {c: [] for c in columns}
        for child, parent in model.parent.items():
            if parent is not None:
                children[parent].append(child)
        frontier = [c for c, p in model.parent.items() if p is None]
        bfs: list[str] = []
        while frontier:
            node = frontier.pop(0)
            bfs.append(node)
            frontier.extend(children[node])
        model.order = bfs[::-1]
        # -- CPTs with Laplace smoothing ----------------------------------
        n = codes[columns[0]].size if columns else 0
        for column in columns:
            states = model.states(column)
            parent = model.parent[column]
            if parent is None:
                counts = np.bincount(codes[column], minlength=states).astype(float)
                model.cpt[column] = (counts + ALPHA) / (n + ALPHA * states)
            else:
                pstates = model.states(parent)
                joint = np.bincount(
                    codes[parent] * states + codes[column],
                    minlength=pstates * states,
                ).reshape(pstates, states).astype(float)
                joint += ALPHA
                model.cpt[column] = joint / joint.sum(axis=1, keepdims=True)
        return model

    def _model(self, table: str) -> _TableModel:
        version = self.table_version(table)
        model = self._models.get(table)
        if model is None or model.version != version:
            model = self._build_model(table, version)
            self._models[table] = model
        return model

    def _invalidate_table(self, table: str) -> None:
        self._models.pop(table, None)
        self._join_cache = {
            key: value
            for key, value in self._join_cache.items()
            if key[0].table != table and key[1].table != table
        }

    # -- inference ---------------------------------------------------------
    def _filter_weights(
        self, model: _TableModel, filters: list[FilterPredicate]
    ) -> dict[str, np.ndarray]:
        """Soft-evidence vectors: kept mass fraction per bin, 0 on NULL."""
        weights: dict[str, np.ndarray] = {}
        for predicate in filters:
            column = predicate.attribute.column
            edges = model.edges[column]
            bins = len(edges) - 1
            weight = np.zeros(bins + 1)  # NULL bin stays 0: NaN fails filters
            distinct = model.distinct[column]
            for b in range(bins):
                low, high = edges[b], edges[b + 1]
                if predicate.low == predicate.high:
                    inside = low <= predicate.low <= high
                    weight[b] = 1.0 / max(1.0, distinct[b]) if inside else 0.0
                elif high > low:
                    overlap = min(predicate.high, high) - max(predicate.low, low)
                    weight[b] = min(1.0, max(0.0, overlap / (high - low)))
                else:
                    weight[b] = 1.0 if predicate.low <= low <= predicate.high else 0.0
            existing = weights.get(column)
            weights[column] = weight if existing is None else existing * weight
        return weights

    def _table_probability(
        self, model: _TableModel, filters: list[FilterPredicate]
    ) -> float:
        """P(all filters) by one upward message pass over the tree."""
        if model.rows == 0:
            return 0.0
        weights = self._filter_weights(model, filters)
        #: node -> product of evidence and incoming child messages
        belief: dict[str, np.ndarray] = {
            column: weights.get(column, np.ones(model.states(column)))
            for column in model.columns
        }
        probability = 1.0
        for column in model.order:  # children before parents
            parent = model.parent[column]
            if parent is None:
                probability *= float(model.cpt[column] @ belief[column])
            else:
                belief[parent] = belief[parent] * (
                    model.cpt[column] @ belief[column]
                )
        return min(1.0, max(0.0, probability))

    def _join_selectivity(self, join: JoinPredicate) -> float:
        """Exact value-frequency overlap of the two join columns."""
        left, right = join.left, join.right
        key = (
            left,
            right,
            self.table_version(left.table),
            self.table_version(right.table),
        )
        cached = self._join_cache.get(key)
        if cached is not None:
            return cached
        lvalues = self.database.column(left)
        rvalues = self.database.column(right)
        denominator = float(lvalues.size) * float(rvalues.size)
        if denominator == 0:
            self._join_cache[key] = 0.0
            return 0.0
        lvalues = lvalues[~np.isnan(lvalues)]
        rvalues = rvalues[~np.isnan(rvalues)]
        luniq, lcounts = np.unique(lvalues, return_counts=True)
        runiq, rcounts = np.unique(rvalues, return_counts=True)
        _, il, ir = np.intersect1d(
            luniq, runiq, assume_unique=True, return_indices=True
        )
        matches = float((lcounts[il] * rcounts[ir]).sum())
        selectivity = matches / denominator
        self._join_cache[key] = selectivity
        return selectivity

    # -- estimation --------------------------------------------------------
    def estimate_predicates(
        self, predicates: PredicateSet, *, use_plan_cache: bool = True
    ) -> EstimationResult:
        predicates = frozenset(predicates)
        self._estimates += 1
        if not predicates:
            return EstimationResult(1.0, 0.0, _EMPTY, (), backend=self.backend)
        started = time.perf_counter()
        filters: dict[str, list[FilterPredicate]] = {}
        joins: list[JoinPredicate] = []
        for predicate in predicates:
            if predicate.is_join:
                joins.append(predicate)
            else:
                filters.setdefault(predicate.attribute.table, []).append(predicate)
        selectivity = 1.0
        for table in sorted(filters):
            selectivity *= self._table_probability(
                self._model(table), sorted(filters[table], key=str)
            )
        for join in sorted(joins, key=str):
            selectivity *= self._join_selectivity(join)
        self._estimation_seconds += time.perf_counter() - started
        # the error is the count of cross-table independence assumptions
        # (each join factor multiplies two independently-modeled tables)
        assumptions = float(len(joins)) + max(0.0, float(len(filters) - 1))
        return EstimationResult(
            selectivity=float(min(1.0, max(0.0, selectivity))),
            error=assumptions if len(tables_of(predicates)) > 1 else 0.0,
            decomposition=_EMPTY,
            matches=(),
            coverage=0.0,
            backend=self.backend,
        )

    # -- observability ----------------------------------------------------
    @property
    def estimation_seconds(self) -> float:
        return self._estimation_seconds

    def reset(self) -> None:
        """Open a new accounting window (sessions absorb timings per
        window); models and the join cache survive."""
        self._estimation_seconds = 0.0

    def space_bytes(self) -> float:
        return float(sum(model.space_bytes() for model in self._models.values()))

    def stats_snapshot(self) -> StatsSnapshot:
        registry = MetricsRegistry()
        registry.gauge("timings.estimation_seconds").set(self._estimation_seconds)
        registry.counter("counters.estimates").inc(self._estimates)
        registry.counter("counters.models_built").inc(self._models_built)
        registry.gauge("caches.table_models").set(float(len(self._models)))
        registry.gauge("caches.join_cache_entries").set(
            float(len(self._join_cache))
        )
        registry.gauge("caches.model_bytes").set(self.space_bytes())
        meta = {
            "estimator": self.name,
            "backend": self.backend,
            "max_bins": self.max_bins,
            "build_rows": self.build_rows,
        }
        if self.snapshot is not None:
            meta["snapshot_version"] = self.snapshot_version
        snapshot = StatsSnapshot.from_registry(registry, meta=meta)
        resilience = dict(snapshot.resilience)
        resilience.update(self.resilience.as_dict())
        return StatsSnapshot(
            timings=snapshot.timings,
            counters=snapshot.counters,
            caches=snapshot.caches,
            catalog=snapshot.catalog,
            service=snapshot.service,
            resilience=resilience,
            plan_cache=snapshot.plan_cache,
            meta=meta,
        )


__all__ = ["BayesianNetworkEstimator", "ALPHA"]
