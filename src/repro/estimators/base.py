"""The ``Estimator`` protocol: one contract, several backends.

The paper's SIT/DP path (:mod:`repro.estimators.sit`) is one of several
credible ways to answer a ``GetSelectivity`` request.  This module
defines the abstract contract every backend implements so the catalog
session, the estimation service, the cluster router, the optimizer
coupling and the CLI can dispatch through one interface:

* :meth:`Estimator.estimate` / :meth:`Estimator.estimate_predicates` —
  answer a query (or bare predicate set) with an
  :class:`~repro.core.get_selectivity.EstimationResult` tagged with the
  producing :attr:`Estimator.backend` (and, for backends with
  distribution-free guarantees, an ``error_bound``);
* :meth:`Estimator.explain` — the structured ``EXPLAIN ESTIMATE`` view;
* :meth:`Estimator.stats_snapshot` — the unified
  :class:`~repro.obs.snapshot.StatsSnapshot` observability surface;
* :meth:`Estimator.notify_table_update` — the single invalidation entry
  point.  When the estimator serves from a
  :class:`~repro.catalog.StatisticsCatalog` the call is forwarded to the
  catalog's own ``notify_table_update`` (the one event path hot swap and
  cluster coherence already ride on); backends version-gate their
  derived models against the catalog's per-table versions, so an
  invalidation issued *anywhere* (directly on the catalog, through the
  service, or fanned out by the cluster router) is observed lazily on
  the next estimate.

Metric accessors (``analysis_seconds``, ``match_cache_hits``, ...) have
protocol-level defaults of zero so sessions and services can absorb any
backend's counters without reaching into implementation internals.
"""

from __future__ import annotations

import abc
from typing import TYPE_CHECKING

from repro.obs.snapshot import StatsSnapshot
from repro.resilience.ladder import ResilienceTelemetry
from repro.stats.pool import SITPool

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.catalog.catalog import CatalogSnapshot
    from repro.core.get_selectivity import EstimationResult
    from repro.core.plancache import PlanCache
    from repro.engine.database import Database
    from repro.engine.expressions import Query
    from repro.obs.explain import ExplainResult
    from repro.obs.trace import Trace

#: the statistics argument estimators accept (duck-typed to avoid a
#: core -> catalog import cycle)
Statistics = "SITPool | StatisticsCatalog | CatalogSnapshot"


def resolve_statistics(statistics) -> "tuple[SITPool, CatalogSnapshot | None]":
    """Resolve any statistics source into ``(pool, snapshot)``.

    A :class:`~repro.catalog.StatisticsCatalog` is pinned to its current
    snapshot; a :class:`~repro.catalog.CatalogSnapshot` is used as-is; a
    bare :class:`~repro.stats.pool.SITPool` carries no snapshot.  Duck
    typing (``refresh`` marks a catalog, ``pool`` marks a snapshot)
    keeps :mod:`repro.estimators` importable without :mod:`repro.catalog`.
    """
    if isinstance(statistics, SITPool):
        return statistics, None
    if hasattr(statistics, "refresh") and hasattr(statistics, "snapshot"):
        snapshot = statistics.snapshot()
        return snapshot.pool, snapshot
    if hasattr(statistics, "pool") and isinstance(
        getattr(statistics, "pool"), SITPool
    ):
        return statistics.pool, statistics
    raise TypeError(
        "statistics must be a SITPool, StatisticsCatalog or "
        f"CatalogSnapshot, got {type(statistics).__name__}"
    )


class Estimator(abc.ABC):
    """Abstract base of every cardinality-estimation backend.

    Concrete backends set :attr:`backend` (the wire-visible identifier)
    and implement :meth:`estimate_predicates`, :meth:`stats_snapshot`
    and :meth:`_invalidate_table`; everything else has a protocol-level
    default.
    """

    #: wire-visible backend identifier (``"sit"``, ``"bn"``, ``"sample"``)
    backend: str = "abstract"

    def __init__(
        self,
        database: "Database | None",
        statistics=None,
        error_function=None,
        name: str | None = None,
    ):
        if statistics is None:
            pool, snapshot = None, None
        else:
            pool, snapshot = resolve_statistics(statistics)
        self.database = database
        self.pool = pool
        #: the pinned :class:`~repro.catalog.CatalogSnapshot`, or ``None``
        #: when built from a bare pool (or no statistics at all)
        self.snapshot = snapshot
        self.error_function = error_function
        self.name = name if name is not None else type(self).__name__
        #: degradation/fault counters (the ``resilience`` snapshot namespace)
        self.resilience = ResilienceTelemetry()
        #: per-table invalidation counters for estimators running without
        #: a catalog (with one, the catalog's versions are authoritative)
        self._local_table_versions: dict[str, int] = {}

    # -- the estimation contract ----------------------------------------
    @abc.abstractmethod
    def estimate_predicates(
        self, predicates, *, use_plan_cache: bool = True
    ) -> "EstimationResult":
        """Estimate ``Sel(P)`` for a bare predicate set."""

    def estimate(self, query: "Query") -> "EstimationResult":
        """Full estimation result for a bound query."""
        return self.estimate_predicates(frozenset(query.predicates))

    def explain(self, query: "Query | str") -> "ExplainResult":
        """``EXPLAIN ESTIMATE``: the structured explanation view."""
        from repro.obs.explain import build_explain

        if isinstance(query, str):
            query = self.parse_sql(query)
        return build_explain(self, query)

    @abc.abstractmethod
    def stats_snapshot(self) -> StatsSnapshot:
        """The unified observability snapshot for this backend."""

    # -- invalidation: the one event path --------------------------------
    def notify_table_update(self, table: str) -> int:
        """Record that ``table``'s data changed; returns the new version.

        Drops this backend's derived state for the table, then forwards
        to the owning catalog when one is pinned — keeping the catalog's
        ``notify_table_update`` the single invalidation event path that
        feedback, refresh, plan caches and the cluster router already
        share.
        """
        self._local_table_versions[table] = (
            self._local_table_versions.get(table, 0) + 1
        )
        self._invalidate_table(table)
        catalog = self.snapshot.catalog if self.snapshot is not None else None
        if catalog is not None:
            return catalog.notify_table_update(table)
        return self._local_table_versions[table]

    def _invalidate_table(self, table: str) -> None:
        """Backend hook: drop derived state for one table (default no-op)."""

    def table_version(self, table: str) -> int:
        """The version gate for derived per-table models.

        Catalog-backed estimators read the *live* catalog version (so an
        invalidation issued through the service or cluster is observed
        lazily); bare estimators use the local counters bumped by
        :meth:`notify_table_update`.
        """
        catalog = self.snapshot.catalog if self.snapshot is not None else None
        if catalog is not None:
            return catalog.table_version(table)
        return self._local_table_versions.get(table, 0)

    # -- conveniences shared by all backends -----------------------------
    def selectivity(self, query: "Query") -> float:
        """Most accurate ``Sel_R(P)`` for the query's predicate set."""
        return self.estimate(query).selectivity

    def cardinality(self, query: "Query") -> float:
        """Estimated output cardinality: ``Sel_R(P) * |R^x|``."""
        return self.selectivity(query) * self.database.cross_product_size(
            query.tables
        )

    def cardinality_sql(self, sql: str) -> float:
        """Estimate the output cardinality of a SQL SELECT statement."""
        return self.cardinality(self.parse_sql(sql))

    def parse_sql(self, sql: str) -> "Query":
        """Parse + bind SQL against this estimator's schema."""
        from repro.sql import parse_query

        trace = self.trace
        if trace is not None:
            with trace.span("parse_bind"):
                return parse_query(sql, self.database.schema)
        return parse_query(sql, self.database.schema)

    def reset(self) -> None:
        """Clear per-query memoization and counters (default no-op)."""

    def space_bytes(self) -> float:
        """Approximate bytes of statistics/models this backend holds."""
        return 0.0

    # -- protocol-level metric accessors (defaults) ----------------------
    @property
    def engine(self) -> str:
        """The execution engine label (backends default to their name)."""
        return self.backend

    @property
    def snapshot_version(self) -> int:
        """The catalog version of the pinned snapshot (0 for bare pools)."""
        return self.snapshot.version if self.snapshot is not None else 0

    #: the compiled-plan cache, for backends that support one (a plain
    #: class attribute so implementations can assign an instance cache)
    plan_cache: "PlanCache | None" = None

    @property
    def view_matching_calls(self) -> int:
        return 0

    @property
    def match_cache_hits(self) -> int:
        return 0

    @property
    def match_cache_misses(self) -> int:
        return 0

    @property
    def match_cache_entries(self) -> int:
        return 0

    @property
    def estimate_cache_entries(self) -> int:
        return 0

    @property
    def analysis_seconds(self) -> float:
        return 0.0

    @property
    def estimation_seconds(self) -> float:
        return 0.0

    # -- tracing (optional capability) -----------------------------------
    @property
    def trace(self) -> "Trace | None":
        return None

    def enable_tracing(self, trace: "Trace | None" = None) -> "Trace | None":
        return None

    def disable_tracing(self) -> None:
        return None


__all__ = ["Estimator", "Statistics", "resolve_statistics"]
