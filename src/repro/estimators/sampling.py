"""The guaranteed-sample backend: uniform reservoirs with VC bounds.

Estimates ``Sel(P)`` by evaluating the predicate set *exactly* (with the
same vectorized :class:`~repro.engine.executor.Executor` the ground
truth uses) over per-table uniform samples instead of the full tables.
Following Riondato et al. (arXiv:1101.5805), the class of conjunctive
SPJ selection predicates over ``d`` ranges has bounded VC dimension, so
a uniform sample of size ``s >= (c / eps^2) * (d + ln(1/delta))`` is an
*eps-approximation*: with probability at least ``1 - delta`` the sample
selectivity is within additive ``eps`` of the true selectivity,
**regardless of the data distribution**.  The bound is solved for
``eps`` and surfaced on every result as ``EstimationResult.error_bound``
— the honest statement the SIT path cannot make.

Reservoirs are deterministic (seeded per ``(table, version)``), rebuilt
lazily when the catalog's single ``notify_table_update`` invalidation
path bumps a table version, and cheap: estimation cost is
``O(sample_size)`` per referenced table, independent of the base data.
This is also the degradation ladder's level-3 backend (see
:mod:`repro.estimators.sit`): when every histogram is faulted, sampling
still answers from raw rows.
"""

from __future__ import annotations

import math
import time
import zlib

import numpy as np

from repro.core.get_selectivity import EstimationResult
from repro.core.predicates import PredicateSet, tables_of
from repro.core.selectivity import Decomposition
from repro.engine.database import Database, Table
from repro.engine.executor import Executor
from repro.estimators.base import Estimator
from repro.obs.metrics import MetricsRegistry
from repro.obs.snapshot import StatsSnapshot

#: the VC-dimension constant ``c`` of the sample-size bound (0.5 is the
#: classical constant for eps-approximations of range spaces)
VC_CONSTANT = 0.5

_EMPTY = Decomposition(())


def sample_error_bound(
    sample_size: int, predicate_count: int, delta: float
) -> float:
    """``eps`` such that ``s >= (c/eps^2)(d + ln(1/delta))`` holds.

    ``d`` (the VC-dimension proxy) is the number of predicates: each
    range/join predicate contributes one dimension to the range space
    the sample must approximate.
    """
    d = max(1, int(predicate_count))
    s = max(1, int(sample_size))
    return min(
        1.0, math.sqrt(VC_CONSTANT * (d + math.log(1.0 / delta)) / s)
    )


class GuaranteedSampleEstimator(Estimator):
    """Uniform per-table reservoirs with a distribution-free guarantee."""

    backend = "sample"

    def __init__(
        self,
        database: Database,
        statistics=None,
        *,
        sample_size: int = 512,
        delta: float = 0.05,
        seed: int = 0,
        name: str | None = None,
    ):
        if sample_size <= 0:
            raise ValueError("sample_size must be positive")
        if not 0.0 < delta < 1.0:
            raise ValueError("delta must be in (0, 1)")
        super().__init__(
            database,
            statistics,
            None,
            name if name is not None else "GS-Sample",
        )
        self.sample_size = int(sample_size)
        self.delta = float(delta)
        self.seed = int(seed)
        #: table -> (table version, sampled Table)
        self._samples: dict[str, tuple[int, Table]] = {}
        self._sampled_db: Database | None = None
        self._executor: Executor | None = None
        self._estimates = 0
        self._samples_built = 0
        self._estimation_seconds = 0.0

    # -- reservoir maintenance -------------------------------------------
    def _draw_sample(self, table: str, version: int) -> Table:
        """A deterministic uniform row sample of one table.

        The seed mixes the table identity and its catalog version, so a
        rebuild after ``notify_table_update`` draws a *fresh* reservoir
        over the updated data while staying reproducible.
        """
        source = self.database.table(table)
        rows = source.row_count
        size = min(rows, self.sample_size)
        rng = np.random.default_rng(
            (self.seed, zlib.crc32(table.encode("utf-8")), version)
        )
        picked = (
            np.sort(rng.choice(rows, size=size, replace=False))
            if rows > 0
            else np.empty(0, dtype=np.intp)
        )
        data = {
            column: source.data[column][picked]
            for column in source.schema.columns
        }
        self._samples_built += 1
        return Table(source.schema, data)

    def _ensure(self, tables) -> Executor:
        """Refresh stale reservoirs and return an executor over them."""
        dirty = False
        for table in sorted(tables):
            version = self.table_version(table)
            cached = self._samples.get(table)
            if cached is None or cached[0] != version:
                self._samples[table] = (version, self._draw_sample(table, version))
                dirty = True
        if dirty or self._sampled_db is None:
            sampled = Database(self.database.schema)
            for _, sample in self._samples.values():
                sampled.add_table(sample)
            self._sampled_db = sampled
            self._executor = Executor(sampled)
        return self._executor

    def _invalidate_table(self, table: str) -> None:
        self._samples.pop(table, None)
        self._sampled_db = None
        self._executor = None

    # -- estimation -------------------------------------------------------
    def estimate_predicates(
        self, predicates: PredicateSet, *, use_plan_cache: bool = True
    ) -> EstimationResult:
        predicates = frozenset(predicates)
        self._estimates += 1
        if not predicates:
            return EstimationResult(
                1.0, 0.0, _EMPTY, (), backend=self.backend, error_bound=0.0
            )
        started = time.perf_counter()
        tables = tables_of(predicates)
        executor = self._ensure(tables)
        selectivity = executor.selectivity(predicates, tables)
        smallest = min(
            self._samples[table][1].row_count for table in tables
        )
        bound = sample_error_bound(smallest, len(predicates), self.delta)
        self._estimation_seconds += time.perf_counter() - started
        return EstimationResult(
            selectivity=float(selectivity),
            error=bound,
            decomposition=_EMPTY,
            matches=(),
            coverage=0.0,
            backend=self.backend,
            error_bound=bound,
        )

    # -- observability ----------------------------------------------------
    @property
    def estimation_seconds(self) -> float:
        return self._estimation_seconds

    def reset(self) -> None:
        """Open a new accounting window (sessions absorb timings per
        window); the reservoirs themselves survive."""
        self._estimation_seconds = 0.0

    def space_bytes(self) -> float:
        return float(
            sum(
                array.nbytes
                for _, sample in self._samples.values()
                for array in sample.data.values()
            )
        )

    def stats_snapshot(self) -> StatsSnapshot:
        registry = MetricsRegistry()
        registry.gauge("timings.estimation_seconds").set(
            self._estimation_seconds
        )
        registry.counter("counters.estimates").inc(self._estimates)
        registry.counter("counters.samples_built").inc(self._samples_built)
        registry.gauge("caches.sampled_tables").set(float(len(self._samples)))
        registry.gauge("caches.sample_rows").set(
            float(sum(s.row_count for _, s in self._samples.values()))
        )
        registry.gauge("caches.sample_bytes").set(self.space_bytes())
        meta = {
            "estimator": self.name,
            "backend": self.backend,
            "sample_size": self.sample_size,
            "delta": self.delta,
        }
        if self.snapshot is not None:
            meta["snapshot_version"] = self.snapshot_version
        snapshot = StatsSnapshot.from_registry(registry, meta=meta)
        resilience = dict(snapshot.resilience)
        resilience.update(self.resilience.as_dict())
        return StatsSnapshot(
            timings=snapshot.timings,
            counters=snapshot.counters,
            caches=snapshot.caches,
            catalog=snapshot.catalog,
            service=snapshot.service,
            resilience=resilience,
            plan_cache=snapshot.plan_cache,
            meta=meta,
        )


__all__ = ["GuaranteedSampleEstimator", "sample_error_bound", "VC_CONSTANT"]
