"""The SIT/DP backend: the paper's ``getSelectivity`` estimator.

:class:`SITEstimator` wires a database, a statistics source and an error
function into the ``getSelectivity`` DP, exposing the operations an
optimizer (or an experiment harness) needs: selectivity and cardinality
of a query and of all its sub-queries.  It is the first (and reference)
implementation of the :class:`~repro.estimators.base.Estimator`
protocol; the peer backends live in :mod:`repro.estimators.bn` and
:mod:`repro.estimators.sampling`.

The statistics source may be a bare :class:`~repro.stats.pool.SITPool`,
a :class:`~repro.catalog.StatisticsCatalog` (the estimator pins the
catalog's current snapshot at construction — refreshes never mutate a
running estimator's statistics) or a
:class:`~repro.catalog.CatalogSnapshot` directly.

Factory helpers build the estimator variants the paper evaluates:
``noSit`` (base statistics only, the traditional optimizer), ``GS-nInd``,
``GS-Diff`` and ``GS-Opt``.

Degradation ladder: levels 0-2 are unchanged from
:mod:`repro.resilience.ladder`.  Level 3 now prefers a real *fallback
estimator* (pass ``fallback_estimator=``, typically a
:class:`~repro.estimators.sampling.GuaranteedSampleEstimator`;
:func:`repro.estimators.create_estimator` wires one automatically) over
the classical 1/3-1/10 magic constants, which remain the terminal rung
when no fallback is configured or the fallback itself fails.
"""

from __future__ import annotations

from dataclasses import replace
from typing import TYPE_CHECKING

from repro.core.errors import DiffError, ErrorFunction, NIndError, OptError
from repro.core.get_selectivity import (
    EstimationResult,
    GetSelectivity,
    NoApplicableStatisticsError,
)
from repro.core.plancache import PlanCache
from repro.core.predicates import PredicateSet
from repro.engine.database import Database
from repro.engine.executor import Executor
from repro.engine.expressions import Query
from repro.estimators.base import Estimator, resolve_statistics
from repro.obs.snapshot import StatsSnapshot
from repro.obs.trace import Trace
from repro.resilience.faults import EstimationFault
from repro.resilience.ladder import (
    LEVEL_BASE_INDEPENDENCE,
    LEVEL_FALLBACK,
    LEVEL_REPLAN,
    magic_result,
)

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.obs.explain import ExplainResult


class SITEstimator(Estimator):
    """Estimates selectivities/cardinalities of SPJ queries using SITs."""

    backend = "sit"

    def __init__(
        self,
        database: Database,
        statistics,
        error_function: ErrorFunction | None = None,
        sit_driven_pruning: bool = False,
        name: str | None = None,
        engine: str = "bitmask",
        strict: bool = False,
        plan_cache: bool = False,
        fallback_estimator: Estimator | None = None,
    ):
        super().__init__(database, statistics, error_function, name)
        pool = self.pool
        if self.error_function is None:
            self.error_function = DiffError(pool)
        self.algorithm = GetSelectivity.create(
            pool,
            self.error_function,
            engine=engine,
            sit_driven_pruning=sit_driven_pruning,
        )
        if name is None:
            self.name = f"GS-{self.error_function.name}"
        #: fail-fast semantics: ``strict=True`` propagates
        #: :class:`~repro.resilience.faults.EstimationFault` to the caller
        #: instead of walking the degradation ladder
        self.strict = strict
        #: the level-3 peer estimator (usually the guaranteed-sampling
        #: backend); ``None`` keeps the classical magic constants
        self.fallback_estimator = fallback_estimator
        self._engine_kind = engine
        self._sit_driven_pruning = sit_driven_pruning
        #: level-1 re-plan DPs, keyed by the frozenset of excluded SIT
        #: names (rebuilt pools are deterministic, so caching is safe and
        #: keeps repeated faults on the same SIT cheap)
        self._fallback_cache: dict[frozenset, GetSelectivity] = {}
        self._base_algorithm: GetSelectivity | None = None
        #: compiled-plan cache (:mod:`repro.core.plancache`), or ``None``.
        #: Opt-in, and only constructed when it is provably safe: the
        #: error function declares ``plan_stable`` and the bitmask engine
        #: is in use (the compiler walks its memo).  With the cache on,
        #: the DP also keeps a cross-query memo bank so shape *misses*
        #: start from the largest previously-solved submasks.
        self.plan_cache: PlanCache | None = None
        if (
            plan_cache
            and engine == "bitmask"
            and getattr(self.error_function, "plan_stable", False)
        ):
            self.plan_cache = PlanCache(
                pool, snapshot_version=self.snapshot_version
            )
            self.algorithm.enable_memo_bank()

    # ------------------------------------------------------------------
    def estimate(self, query: Query) -> EstimationResult:
        """Full ``getSelectivity`` result (selectivity, error, decomposition)."""
        return self._run(query.predicates)

    def estimate_predicates(
        self, predicates: PredicateSet, *, use_plan_cache: bool = True
    ) -> EstimationResult:
        """``getSelectivity`` over a bare predicate set, ladder-protected
        like :meth:`estimate` (the sessions' entry point).

        ``use_plan_cache=False`` skips the compiled-plan probe (the
        result is still compiled on success) — callers that already
        probed, like the session's batched path, use it to avoid a
        double lookup.
        """
        return self._run(frozenset(predicates), use_plan_cache=use_plan_cache)

    # -- the graceful-degradation ladder (repro.resilience) -------------
    def _run(
        self, predicates: PredicateSet, use_plan_cache: bool = True
    ) -> EstimationResult:
        """Compiled-plan replay on a template hit, else the full path."""
        cache = self.plan_cache
        if cache is not None and use_plan_cache:
            result = cache.estimate(predicates)
            if result is not None:
                return result
        return self._run_uncached(predicates)

    def _run_uncached(self, predicates: PredicateSet) -> EstimationResult:
        """Level 0, or walk the ladder when a statistic faults.

        The happy path returns the DP's result object untouched (the
        ``try`` frame is the entire overhead), which is what makes the
        zero-fault path bit-identical to the pre-resilience estimator.
        Successful level-0 results are compiled into the plan cache;
        degraded results never are (the ladder bypasses the cache).
        """
        try:
            result = self.algorithm(predicates)
        except EstimationFault as fault:
            if self.strict:
                raise
            return self._degrade(frozenset(predicates), fault)
        cache = self.plan_cache
        if cache is not None:
            cache.compile(predicates, self.algorithm, result)
            self.algorithm.bank_memo()
        return result

    def _degrade(
        self, predicates: frozenset, first_fault: EstimationFault
    ) -> EstimationResult:
        """Levels 1-3: re-plan without the failed SITs, then base
        statistics under independence, then the fallback estimator
        (magic constants when none is configured)."""
        telemetry = self.resilience
        telemetry.record_fault(first_fault)
        excluded: set[str] = set()
        fault: EstimationFault = first_fault
        # -- level 1: re-plan excluding the failed SITs ------------------
        while True:
            name = fault.sit_name
            if name is None or name in excluded:
                # a fault without a SIT identity (or one exclusion did not
                # cure) cannot be re-planned around — fall through
                break
            excluded.add(name)
            try:
                algorithm = self._fallback_algorithm(frozenset(excluded))
                telemetry.record_replan()
                result = algorithm(predicates)
            except EstimationFault as exc:
                telemetry.record_fault(exc)
                fault = exc
                continue
            except NoApplicableStatisticsError:
                break  # an attribute is uncovered: drop to level 2
            telemetry.record_level(LEVEL_REPLAN)
            return replace(
                result,
                degradation_level=LEVEL_REPLAN,
                excluded_sits=tuple(sorted(excluded)),
            )
        # -- level 2: base statistics + independence (noSit) -------------
        names = tuple(sorted(excluded))
        try:
            result = self._base_only_algorithm()(predicates)
        except EstimationFault as exc:
            telemetry.record_fault(exc)
        except NoApplicableStatisticsError:
            pass
        else:
            telemetry.record_level(LEVEL_BASE_INDEPENDENCE)
            return replace(
                result,
                degradation_level=LEVEL_BASE_INDEPENDENCE,
                excluded_sits=names,
            )
        # -- level 3: the fallback estimator, else magic constants --------
        fallback = self.fallback_estimator
        if fallback is not None:
            try:
                result = fallback.estimate_predicates(predicates)
            except Exception as exc:  # the ladder must always answer
                telemetry.record_fault(exc)
            else:
                telemetry.record_level(LEVEL_FALLBACK)
                return replace(
                    result,
                    degradation_level=LEVEL_FALLBACK,
                    excluded_sits=names,
                )
        result = magic_result(predicates, names)
        telemetry.record_level(result.degradation_level)
        return result

    def _fallback_algorithm(self, excluded: frozenset) -> GetSelectivity:
        """The level-1 DP over the pool minus ``excluded`` SIT names."""
        algorithm = self._fallback_cache.get(excluded)
        if algorithm is None:
            pool = self.pool.excluding(excluded)
            error_function = self.error_function
            if isinstance(error_function, DiffError):
                # DiffError ranks candidates against the pool it was built
                # over; rebuild it so the failed SITs don't influence ranks
                error_function = DiffError(pool)
            algorithm = GetSelectivity.create(
                pool,
                error_function,
                engine=self._engine_kind,
                sit_driven_pruning=self._sit_driven_pruning,
            )
            self._fallback_cache[excluded] = algorithm
        return algorithm

    def _base_only_algorithm(self) -> GetSelectivity:
        """The level-2 DP: base histograms + independence (``noSit``)."""
        algorithm = self._base_algorithm
        if algorithm is None:
            algorithm = GetSelectivity.create(
                self.pool.base_only(),
                NIndError(),
                engine=self._engine_kind,
            )
            self._base_algorithm = algorithm
        return algorithm

    def parse_sql(self, sql: str) -> Query:
        """Parse + bind SQL against this estimator's schema (traced as the
        ``parse_bind`` stage when tracing is enabled)."""
        return super().parse_sql(sql)

    def explain(self, query: Query | str) -> "ExplainResult":
        """``EXPLAIN ESTIMATE``: the winning decomposition, factor by factor.

        Accepts a bound :class:`Query` or SQL text.  Reuses the DP's memo,
        so ``explain(q).selectivity == estimate(q).selectivity`` exactly.
        """
        return super().explain(query)

    def subquery_selectivity(self, query: Query, predicates: PredicateSet) -> float:
        """Selectivity of one sub-query; free after :meth:`estimate` thanks
        to the DP's memo table."""
        return self._run(frozenset(predicates)).selectivity

    def subquery_cardinality(self, query: Query, predicates: PredicateSet) -> float:
        predicates = frozenset(predicates)
        sub = query.subquery(predicates)
        return self.subquery_selectivity(query, predicates) * (
            self.database.cross_product_size(sub.tables)
        )

    # -- invalidation ----------------------------------------------------
    def _invalidate_table(self, table: str) -> None:
        """Drop derived state so a catalog-less estimator re-derives.

        With an owning catalog the forwarded ``notify_table_update``
        already invalidates the published pool's prune masks and bumps
        the versions every cache above keys on; this hook covers the
        bare-pool configuration.
        """
        self.pool.invalidate_derived()
        self._fallback_cache.clear()
        self._base_algorithm = None
        self.algorithm.reset()
        fallback = self.fallback_estimator
        if fallback is not None and fallback.snapshot is None:
            fallback.notify_table_update(table)

    # ------------------------------------------------------------------
    @property
    def engine(self) -> str:
        """The DP engine in use (``"bitmask"`` or ``"legacy"``)."""
        return self.algorithm.engine

    @property
    def view_matching_calls(self) -> int:
        return self.algorithm.matcher.calls

    @property
    def match_cache_hits(self) -> int:
        return self.algorithm.match_cache_hits

    @property
    def match_cache_misses(self) -> int:
        return self.algorithm.match_cache_misses

    @property
    def match_cache_entries(self) -> int:
        return len(self.algorithm._match_cache)

    @property
    def estimate_cache_entries(self) -> int:
        return len(self.algorithm._estimate_cache)

    @property
    def analysis_seconds(self) -> float:
        return self.algorithm.analysis_seconds

    @property
    def estimation_seconds(self) -> float:
        return self.algorithm.estimation_seconds

    def space_bytes(self) -> float:
        """Bytes held by the pool's histograms (the SIT footprint)."""
        total = 0.0
        for sit in self.pool:
            for array in sit.histogram.bucket_arrays():
                total += float(array.nbytes)
        return total

    # -- observability --------------------------------------------------
    @property
    def trace(self) -> Trace | None:
        """The attached trace, or ``None`` when tracing is disabled."""
        return self.algorithm.trace

    def enable_tracing(self, trace: Trace | None = None) -> Trace:
        """Turn on per-stage tracing for this estimator's whole path."""
        return self.algorithm.enable_tracing(trace)

    def disable_tracing(self) -> None:
        self.algorithm.disable_tracing()

    def stats_snapshot(self) -> StatsSnapshot:
        """The unified observability snapshot (``StatsSnapshot`` schema),
        tagged with this estimator's identity (and pinned snapshot
        version, when serving from a catalog)."""
        snapshot = self.algorithm.stats_snapshot()
        meta = dict(snapshot.meta)
        meta.update(
            {
                "estimator": self.name,
                "error_function": self.error_function.name,
                "backend": self.backend,
            }
        )
        catalog = dict(snapshot.catalog)
        if self.snapshot is not None:
            meta["snapshot_version"] = self.snapshot_version
            catalog["snapshot_version"] = float(self.snapshot_version)
        resilience = dict(snapshot.resilience)
        resilience.update(self.resilience.as_dict())
        plan_cache = dict(snapshot.plan_cache)
        if self.plan_cache is not None:
            plan_cache.update(self.plan_cache.stats_namespace())
        return StatsSnapshot(
            timings=snapshot.timings,
            counters=snapshot.counters,
            caches=snapshot.caches,
            catalog=catalog,
            service=snapshot.service,
            resilience=resilience,
            plan_cache=plan_cache,
            meta=meta,
        )

    def reset(self) -> None:
        """Clear memoization and counters (e.g. between workload queries
        when measuring per-query costs)."""
        self.algorithm.reset()


# ----------------------------------------------------------------------
# The paper's estimator variants
# ----------------------------------------------------------------------
def make_gs_nind(database: Database, statistics, **kwargs) -> SITEstimator:
    """GS-nInd: getSelectivity counting independence assumptions."""
    return SITEstimator(
        database, statistics, NIndError(), name="GS-nInd", **kwargs
    )


def make_gs_diff(database: Database, statistics, **kwargs) -> SITEstimator:
    """GS-Diff: getSelectivity with the distribution-aware error function."""
    pool, _ = resolve_statistics(statistics)
    return SITEstimator(
        database, statistics, DiffError(pool), name="GS-Diff", **kwargs
    )


def make_gs_opt(
    database: Database, statistics, executor: Executor | None = None, **kwargs
) -> SITEstimator:
    """GS-Opt: the theoretical optimum (true per-factor errors)."""
    executor = executor if executor is not None else Executor(database)
    return SITEstimator(
        database, statistics, OptError(executor), name="GS-Opt", **kwargs
    )


def make_nosit(database: Database, statistics, **kwargs) -> SITEstimator:
    """noSit: the traditional optimizer — base-table histograms only."""
    pool, _ = resolve_statistics(statistics)
    return SITEstimator(
        database, pool.base_only(), NIndError(), name="noSit", **kwargs
    )


__all__ = [
    "SITEstimator",
    "make_gs_diff",
    "make_gs_nind",
    "make_gs_opt",
    "make_nosit",
]
