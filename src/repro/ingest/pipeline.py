"""The streaming-ingestion pipeline: update storms → invalidation epochs.

SITs are statistics *on query expressions* (Bruno & Chaudhuri, SIGMOD
2004), so one base-table update can stale a whole fan-out of derived
histograms, compiled plans, BN models and sample reservoirs.  The
:class:`IngestPipeline` is the choke point that makes continuous writes
survivable while the stack serves:

* **One invalidation path.**  Every accepted event ultimately drives the
  target's single ``notify_table_update`` — the same path hot swap,
  plan-cache coherence and cluster fan-out already ride on.  The target
  duck-types: a :class:`repro.catalog.StatisticsCatalog`, an
  :class:`repro.service.EstimationService`'s catalog, any
  :class:`repro.estimators.Estimator`, or an
  :class:`repro.cluster.EstimationCluster` router all work.
* **Coalescing.**  N rapid updates to one table collapse into one
  *invalidation epoch* (one ``notify_table_update`` call) per drain
  cycle.  Invalidation cost is per-*epoch*, not per-*event*, so a storm
  of writes to a hot table cannot amplify into a storm of pool
  invalidations.
* **Bounded admission with typed backpressure.**  :meth:`submit` never
  blocks and never buffers beyond ``IngestConfig.queue_depth``; at depth
  it sheds with :class:`IngestOverloaded` — the same shed-on-full
  contract (and ``overloaded`` wire status) the serving layer's
  admission queue speaks, so producers handle one vocabulary.
* **No lost invalidations.**  A fault injected at the ``ingest_apply``
  point (:data:`repro.resilience.POINT_INGEST_APPLY`) is retried up to
  ``IngestConfig.apply_retries`` times per cycle and the epoch is then
  *re-queued* into the next cycle, never dropped: acked writes are
  eventually applied or the pipeline reports them as pending staleness.
* **Staleness + drift accounting.**  Every admission/apply is mirrored
  into a :class:`repro.obs.StalenessTracker`; an optional
  :class:`EstimateDriftProbe` measures served-estimate drift against
  fresh truth on a sampled sub-stream of applied epochs.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Callable, Iterable, Protocol, Sequence, runtime_checkable

from repro.ingest.config import IngestConfig
from repro.obs.metrics import MetricsRegistry
from repro.obs.snapshot import StatsSnapshot
from repro.obs.staleness import StalenessTracker
from repro.resilience.faults import POINT_INGEST_APPLY, active
from repro.service.protocol import Overloaded
from repro.service.queue import AdmissionQueue

__all__ = [
    "EstimateDriftProbe",
    "IngestOverloaded",
    "IngestPipeline",
    "TableUpdate",
]


class IngestOverloaded(Overloaded):
    """The ingest admission queue is at depth: shed this write now.

    Subclasses the serving layer's typed :class:`Overloaded`, so
    producers that already speak the service's shed-on-full contract
    (retry with backoff, or drop and re-source) need no new handling —
    and the wire status stays ``overloaded``.
    """


@runtime_checkable
class _Invalidatable(Protocol):
    def notify_table_update(self, table: str) -> int: ...


@dataclass(frozen=True)
class TableUpdate:
    """One acked table-update event flowing through the pipeline."""

    table: str
    #: advisory row delta (observability only; the catalog invalidates
    #: by identity, not by magnitude)
    rows_delta: int = 0
    #: admission timestamp (pipeline clock), stamped by :meth:`submit`
    admitted_s: float = field(default=0.0, compare=False)


class _Epoch:
    """Coalesced pending work for one table inside one drain cycle."""

    __slots__ = ("events", "newest")

    def __init__(self) -> None:
        self.events = 0
        self.newest = 0.0

    def fold(self, count: int, newest: float) -> None:
        self.events += count
        if newest > self.newest:
            self.newest = newest


class IngestPipeline:
    """Bounded, coalescing bridge from update events to invalidations."""

    def __init__(
        self,
        target: _Invalidatable,
        *,
        config: IngestConfig | None = None,
        tracker: StalenessTracker | None = None,
        drift_probe: "Callable[[], float | None] | None" = None,
        clock: Callable[[], float] = time.monotonic,
    ):
        if not hasattr(target, "notify_table_update"):
            raise TypeError(
                "ingest target must expose notify_table_update(table)"
            )
        self.target = target
        self.config = config or IngestConfig()
        self.tracker = tracker or StalenessTracker(clock=clock)
        self.drift_probe = drift_probe
        self._clock = clock
        self._queue: AdmissionQueue[TableUpdate] = AdmissionQueue(
            self.config.queue_depth
        )
        self._metrics = MetricsRegistry()
        #: epochs that exhausted their per-cycle retries, merged into the
        #: next drain cycle (never dropped)
        self._retry: dict[str, _Epoch] = {}
        self._busy = False
        self._state_lock = threading.Lock()
        self._idle = threading.Condition(self._state_lock)
        self._closed = False
        self._thread = threading.Thread(
            target=self._run, name="ingest-apply", daemon=True
        )
        self._thread.start()

    # -- producer side ---------------------------------------------------
    def submit(self, table: str, rows_delta: int = 0) -> TableUpdate:
        """Admit one update event; the returned event carries its acked
        admission time.  Raises :class:`IngestOverloaded` at depth."""
        if self._closed:
            raise RuntimeError("ingest pipeline is closed")
        name = str(table)
        # ack the write in the tracker BEFORE it becomes visible to the
        # apply loop, so note_applied can never race ahead of note_write
        # for the same event; a shed retracts the ack
        when = self.tracker.note_write(name)
        event = TableUpdate(
            table=name, rows_delta=int(rows_delta), admitted_s=when
        )
        if not self._queue.offer(event):
            self.tracker.retract_write(name, when)
            self._metrics.counter("ingest.shed").inc()
            raise IngestOverloaded(
                f"ingest queue full (depth {self.config.queue_depth}); "
                f"shed update for table {table!r}"
            )
        self._metrics.counter("ingest.events").inc()
        return event

    def submit_many(self, tables: Iterable[str]) -> int:
        """Admit a burst; returns how many were accepted before the first
        shed (the remainder raises through)."""
        accepted = 0
        for table in tables:
            self.submit(table)
            accepted += 1
        return accepted

    # -- apply loop --------------------------------------------------------
    def _run(self) -> None:
        cfg = self.config
        while True:
            if self._retry:
                # a carried epoch must not wait for fresh traffic: back
                # off briefly, fold in whatever arrived meanwhile, retry
                time.sleep(max(cfg.coalesce_window_s, 0.001))
                batch = self._queue.drain()
            else:
                batch = self._queue.take_batch(
                    cfg.max_batch, cfg.coalesce_window_s
                )
                if not batch and self._queue.closed:
                    return
            with self._state_lock:
                self._busy = True
            try:
                self._apply_cycle(batch)
            finally:
                with self._state_lock:
                    self._busy = False
                    self._idle.notify_all()

    def _apply_cycle(self, batch: Sequence[TableUpdate]) -> None:
        epochs: dict[str, _Epoch] = {}
        for table, carried in self._retry.items():
            epochs.setdefault(table, _Epoch()).fold(
                carried.events, carried.newest
            )
        self._retry.clear()
        for event in batch:
            epochs.setdefault(event.table, _Epoch()).fold(
                1, event.admitted_s
            )
        for table in sorted(epochs):
            self._apply_epoch(table, epochs[table])
        if epochs:
            self._maybe_probe()

    def _apply_epoch(self, table: str, epoch: _Epoch) -> None:
        metrics = self._metrics
        for attempt in range(self.config.apply_retries):
            try:
                plan = active()
                if plan is not None:
                    plan.check(
                        POINT_INGEST_APPLY,
                        detail=f"table={table} attempt={attempt}",
                    )
                self.target.notify_table_update(table)
            except Exception:
                metrics.counter("ingest.apply_faults").inc()
                if attempt + 1 < self.config.apply_retries:
                    metrics.counter("ingest.apply_retries").inc()
                continue
            self.tracker.note_applied(table, through=epoch.newest)
            metrics.counter("ingest.epochs_applied").inc()
            metrics.counter("ingest.events_applied").inc(epoch.events)
            if epoch.events > 1:
                metrics.counter("ingest.coalesced_events").inc(
                    epoch.events - 1
                )
            return
        # retries exhausted this cycle: carry the epoch forward
        self._retry.setdefault(table, _Epoch()).fold(
            epoch.events, epoch.newest
        )
        metrics.counter("ingest.epoch_requeues").inc()

    def _maybe_probe(self) -> None:
        every = self.config.drift_every
        if self.drift_probe is None or every <= 0:
            return
        applied = self._metrics.counter("ingest.epochs_applied").value
        probed = self._metrics.counter("ingest.drift_probes").value
        if applied < (probed + 1) * every:
            return
        try:
            q_error = self.drift_probe()
        except Exception:
            self._metrics.counter("ingest.drift_probe_errors").inc()
            return
        self._metrics.counter("ingest.drift_probes").inc()
        if q_error is not None:
            self.tracker.record_drift(q_error)

    # -- drain / shutdown --------------------------------------------------
    def flush(self, timeout: float = 10.0) -> bool:
        """Block until every acked event has been applied (queue empty,
        no re-queued epochs, apply loop idle, tracker quiesced).  True
        on success."""
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            with self._state_lock:
                settled = (
                    len(self._queue) == 0
                    and not self._busy
                    and not self._retry
                )
            if settled and self.tracker.quiesced():
                return True
            time.sleep(0.001)
        return False

    def quiesce(self, timeout: float = 10.0) -> bool:
        """Alias of :meth:`flush` — after it returns ``True`` the
        serving snapshot reflects every acked write, which is when the
        smoke suite's bit-identical gate runs."""
        return self.flush(timeout)

    def close(self, drain: bool = True, timeout: float = 10.0) -> None:
        """Stop admission; by default apply everything already acked."""
        if self._closed:
            return
        self._closed = True
        if not drain:
            dropped = self._queue.drain()
            if dropped:
                self._metrics.counter("ingest.dropped").inc(len(dropped))
        self._queue.close()
        self._thread.join(timeout=timeout)

    def __enter__(self) -> "IngestPipeline":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()

    # -- observability -----------------------------------------------------
    @property
    def closed(self) -> bool:
        return self._closed

    def queue_depth(self) -> int:
        return len(self._queue)

    def metrics_registry(self) -> MetricsRegistry:
        """Counters plus the tracker's gauges, as one registry."""
        merged = MetricsRegistry()
        merged.merge(self._metrics)
        events = merged.counter("ingest.events_applied").value
        epochs = merged.counter("ingest.epochs_applied").value
        if epochs:
            merged.gauge("ingest.coalesce_ratio").set(events / epochs)
        merged.gauge("ingest.queue_depth").set(float(len(self._queue)))
        for name, value in self.tracker.metrics().items():
            try:
                merged.gauge(f"ingest.{name}").set(float(value))
            except TypeError:
                # the pipeline already counts this (e.g. drift_probes);
                # the counter is authoritative in the merged view
                continue
        return merged

    def stats_snapshot(self) -> StatsSnapshot:
        return StatsSnapshot.from_registry(
            self.metrics_registry(), meta={"producer": "ingest_pipeline"}
        )

    def status(self) -> dict[str, object]:
        """Compact operational view (mirrors ``catalog status``)."""
        snap = self.stats_snapshot().ingest
        out = {k: v for k, v in snap.items() if not k.startswith("staleness_s.")}
        out["staleness"] = self.tracker.status()
        return out


class EstimateDriftProbe:
    """Measured drift on a sampled sub-stream: served estimate vs. truth.

    ``estimate`` answers with the *served* cardinality (a pinned
    session, a service client, a cluster ``connect()`` handle — anything
    still serving the possibly-stale snapshot); ``truth`` answers with
    fresh ground truth (an :class:`repro.engine.Executor` over live
    data, or a freshly-redrawn guaranteed-sample estimate whose
    distribution-free bound makes it a principled yardstick).  Each
    :meth:`__call__` probes the next query round-robin and returns the
    q-error between the two answers.
    """

    def __init__(
        self,
        estimate: Callable[[object], float],
        truth: Callable[[object], float],
        queries: Sequence[object],
    ):
        if not queries:
            raise ValueError("drift probe needs at least one query")
        self._estimate = estimate
        self._truth = truth
        self._queries = list(queries)
        self._next = 0
        self._lock = threading.Lock()

    def __call__(self) -> float:
        with self._lock:
            query = self._queries[self._next % len(self._queries)]
            self._next += 1
        served = float(self._estimate(query))
        fresh = float(self._truth(query))
        eps = 1e-9
        high = max(served, fresh) + eps
        low = min(served, fresh) + eps
        return high / low
