"""Tunables of the streaming-ingestion pipeline.

:class:`IngestConfig` follows the layered-config contract of
:mod:`repro.service.config`: a frozen dataclass that validates in
``__post_init__`` and round-trips through ``from_dict`` / ``to_dict``
with unknown keys rejected, so an ingestion deployment fits in the same
JSON document as the service and cluster layers.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, fields
from typing import Any, Mapping

__all__ = ["IngestConfig"]


@dataclass(frozen=True)
class IngestConfig:
    """Knobs of one :class:`repro.ingest.IngestPipeline`."""

    #: bounded admission: update events queued before producers are shed
    #: with a typed :class:`~repro.ingest.pipeline.IngestOverloaded`
    queue_depth: int = 1024
    #: how long one drain cycle lingers to coalesce rapid updates to the
    #: same table into a single invalidation epoch
    coalesce_window_s: float = 0.02
    #: most events folded into one drain cycle
    max_batch: int = 256
    #: attempts to apply one coalesced epoch per drain cycle before the
    #: epoch is re-queued into the next cycle (it is never dropped —
    #: bounded retries keep the apply loop from spinning on a hot fault)
    apply_retries: int = 3
    #: measure estimate drift on every Nth applied epoch (0 disables the
    #: probe sub-stream)
    drift_every: int = 0

    def __post_init__(self) -> None:
        if self.queue_depth < 1:
            raise ValueError("queue_depth must be >= 1")
        if self.coalesce_window_s < 0:
            raise ValueError("coalesce_window_s must be >= 0")
        if self.max_batch < 1:
            raise ValueError("max_batch must be >= 1")
        if self.apply_retries < 1:
            raise ValueError("apply_retries must be >= 1")
        if self.drift_every < 0:
            raise ValueError("drift_every must be >= 0 (0 disables)")

    # ------------------------------------------------------------------
    def to_dict(self) -> dict[str, Any]:
        return dataclasses.asdict(self)

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "IngestConfig":
        known = {f.name for f in fields(cls)}
        unknown = set(data) - known
        if unknown:
            raise ValueError(
                f"unknown IngestConfig keys: {sorted(unknown)}; "
                f"expected a subset of {sorted(known)}"
            )
        return cls(**dict(data))
