"""``repro.ingest`` — streaming ingestion for a stack built on SITs.

Statistics on query expressions are uniquely exposed to base-table
churn: one update can stale a whole fan-out of derived histograms,
compiled plans, BN models and sample reservoirs.  This package makes
continuous concurrent writes survivable:

* :class:`IngestPipeline` — bounded, coalescing bridge from a stream of
  :class:`TableUpdate` events to the catalog's single
  ``notify_table_update`` invalidation path.  Admission is
  reject-don't-block (typed :class:`IngestOverloaded`, the serving
  layer's shed-on-full contract); N rapid updates to one table collapse
  into one invalidation epoch; faulted applies retry and re-queue but
  never drop an acked write.
* :class:`IngestConfig` — the layered-config knobs (queue depth,
  coalescing window, retry and drift-probe budgets).
* :class:`EstimateDriftProbe` — served estimate vs. fresh truth on a
  sampled sub-stream, feeding the :class:`repro.obs.StalenessTracker`'s
  measured ``estimate_drift``.

Observability rides the ``ingest`` StatsSnapshot namespace
(:mod:`repro.obs.snapshot`) and the staleness tracker in
:mod:`repro.obs.staleness`; chaos coverage rides the
``ingest_apply`` / ``refresh_during_storm`` / ``swap_under_write``
injection points in :mod:`repro.resilience`.
"""

from repro.ingest.config import IngestConfig
from repro.ingest.pipeline import (
    EstimateDriftProbe,
    IngestOverloaded,
    IngestPipeline,
    TableUpdate,
)

__all__ = [
    "EstimateDriftProbe",
    "IngestConfig",
    "IngestOverloaded",
    "IngestPipeline",
    "TableUpdate",
]
