"""Candidate-SIT matching and factor approximation (Section 3.3).

Approximating one decomposition factor ``Sel_R(P|Q)`` proceeds in the three
conceptual steps of the paper:

1. every join predicate in ``P`` is replaced by a pair of *wildcard*
   selection predicates on its operands;
2. the resulting expression is split with the separable-decomposition
   property into table-connected components, partitioning ``Q`` into
   per-component conditionings ``Q_c``;
3. inside each component every required attribute is matched against the
   available SITs: a candidate is any ``SIT(a|Q')`` with ``Q' ⊆ Q_c`` and
   ``Q'`` *maximal* (no other candidate strictly between ``Q'`` and
   ``Q_c``).  The error function picks among maximal candidates.

The same module implements the actual numeric approximation
(:func:`estimate_factor`): join predicates are estimated by histogram-
joining the matched SITs — each join also *derives* a new histogram that
downstream predicates on the same attribute use (Example 3) — and filter
predicates by range lookups.

:class:`ViewMatcher` owns the matching logic and counts invocations; the
count is the efficiency metric of the paper's Figure 6 (both
``getSelectivity`` and the GVM baseline share this routine).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Iterator

from repro.core.predicates import (
    Attribute,
    PredicateSet,
)
from repro.core.selectivity import Factor
from repro.histograms.maxdiff import DEFAULT_MAX_BUCKETS
from repro.histograms.operations import join_histograms
from repro.resilience.faults import (
    POINT_HISTOGRAM_JOIN,
    POINT_SIT_MATCH,
    active as _fault_plan,
)
from repro.stats.pool import SITPool
from repro.stats.sit import SIT

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type checkers
    from repro.core.errors import ErrorFunction


@dataclass(frozen=True)
class AttributeMatch:
    """The SIT chosen for one attribute of a factor.

    ``weight`` is the number of predicates (of the factor's ``P``) this
    attribute accounts for: 1 per filter predicate, 0.5 per join operand,
    so weights over a factor sum to ``|P|``.  ``conditioning`` is the
    component conditioning ``Q_c`` and ``assumed = Q_c - Q'`` the predicates
    the approximation assumes independence from.
    """

    attribute: Attribute
    weight: float
    sit: SIT
    conditioning: PredicateSet
    assumed: PredicateSet


@dataclass(frozen=True)
class FactorMatch:
    """A complete SIT assignment for one factor."""

    factor: Factor
    attribute_matches: tuple[AttributeMatch, ...]

    def sit_for(self, attribute: Attribute) -> SIT:
        """The SIT chosen for ``attribute`` in this match."""
        for match in self.attribute_matches:
            if match.attribute == attribute:
                return match.sit
        raise KeyError(f"no match for attribute {attribute}")


@dataclass(frozen=True)
class AttributeCandidates:
    """The maximal candidate SITs for one attribute of a factor."""

    attribute: Attribute
    weight: float
    conditioning: PredicateSet
    candidates: tuple[SIT, ...]


@dataclass(frozen=True)
class FactorCandidates:
    """Per-attribute maximal candidate lists for one factor."""

    factor: Factor
    attributes: tuple[AttributeCandidates, ...]


@dataclass
class ViewMatcher:
    """Finds candidate SITs for factors; the shared 'view matching routine'.

    ``calls`` counts factor-level invocations — the quantity Figure 6 of the
    paper reports for both getSelectivity and GVM.
    """

    pool: SITPool
    calls: int = 0
    #: opt-in :class:`repro.obs.trace.Trace`; ``None`` == disabled, costing
    #: one branch per instrumented site (set via
    #: ``GetSelectivity.enable_tracing`` or directly).
    trace: object = field(default=None, repr=False)
    _attribute_cache: dict[tuple[Attribute, PredicateSet], tuple[SIT, ...]] = field(
        init=False, default_factory=dict, repr=False
    )
    _factor_cache: dict[tuple[PredicateSet, PredicateSet], FactorCandidates | None] = (
        field(init=False, default_factory=dict, repr=False)
    )

    def reset_counter(self) -> None:
        """Zero the view-matching call counter (caches are kept)."""
        self.calls = 0

    def count_invocation(self) -> None:
        """Record one logical view-matching invocation (Figure 6 metric).

        Callers that cache match results themselves (``getSelectivity``'s
        factor-match cache, the memo-coupled estimator) count here exactly
        once per logical request and look candidates up with
        ``candidates_for_factor(..., count=False)`` — otherwise a cold
        request would be double-counted (once by the caller, once by the
        lookup).
        """
        self.calls += 1

    # ------------------------------------------------------------------
    def candidates_for_factor(
        self, factor: Factor, count: bool = True
    ) -> FactorCandidates | None:
        """Steps 1-3 of Section 3.3; ``None`` when some attribute has no
        candidate SIT at all (the decomposition gets error infinity).

        With ``count=True`` (the default) this is counted as one logical
        invocation (the paper's Figure 6 metric); results are cached, so
        repeated invocations are cheap but still counted.  Callers doing
        their own per-invocation accounting via :meth:`count_invocation`
        pass ``count=False`` so each logical invocation is counted exactly
        once.
        """
        if count:
            self.calls += 1
        key = (factor.p, factor.q)
        if key in self._factor_cache:
            return self._factor_cache[key]
        result = self._compute_factor_candidates(factor)
        self._factor_cache[key] = result
        return result

    def _compute_factor_candidates(self, factor: Factor) -> FactorCandidates | None:
        weights = _attribute_weights(factor.p)
        component_of = _component_assignment(factor, weights)
        attribute_candidates: list[AttributeCandidates] = []
        for attribute in sorted(weights):
            conditioning = component_of[attribute]
            candidates = self.maximal_candidates(attribute, conditioning)
            if not candidates:
                return None
            attribute_candidates.append(
                AttributeCandidates(
                    attribute, weights[attribute], conditioning, candidates
                )
            )
        return FactorCandidates(factor, tuple(attribute_candidates))

    def candidates_for_attribute(
        self, attribute: Attribute, conditioning: PredicateSet
    ) -> tuple[SIT, ...]:
        """Per-attribute entry point used by the GVM baseline; counted as a
        view-matching invocation like :meth:`candidates_for_factor`.

        Unlike :meth:`maximal_candidates` this returns *every* applicable
        SIT (largest expressions first): GVM needs the non-maximal
        fallbacks because its single-plan compatibility constraint can rule
        the maximal ones out.
        """
        self.calls += 1
        applicable = self.pool.find(
            attribute, expression_superset=conditioning
        )
        applicable.sort(key=lambda sit: (-len(sit.expression), str(sit)))
        trace = self.trace
        if trace is not None:
            trace.count("sit_candidates_considered", len(applicable))
            trace.count("sit_candidates_matched", len(applicable))
        return tuple(applicable)

    def maximal_candidates(
        self, attribute: Attribute, conditioning: PredicateSet
    ) -> tuple[SIT, ...]:
        """All ``SIT(attribute|Q')`` with ``Q' ⊆ conditioning``, ``Q'``
        maximal (Section 3.3's candidate definition)."""
        key = (attribute, conditioning)
        maximal = self._attribute_cache.get(key)
        if maximal is None:
            applicable = self.pool.find(
                attribute, expression_superset=conditioning
            )
            maximal = tuple(
                sorted(
                    (
                        sit
                        for sit in applicable
                        if not any(
                            sit.expression < other.expression
                            for other in applicable
                        )
                    ),
                    key=str,
                )
            )
            trace = self.trace
            if trace is not None:
                # Section 3.3 funnel: how many applicable SITs were
                # considered vs. how many survived the maximality filter
                # (cold path only; warm lookups answer from the attribute
                # cache above).
                trace.count("sit_candidates_considered", len(applicable))
                trace.count("sit_candidates_matched", len(maximal))
            self._attribute_cache[key] = maximal
        plan = _fault_plan()
        if plan is not None and maximal:
            # SIT-match injection point: a matched statistic "goes
            # missing".  Disarmed cost is the global load + None check.
            plan.check(POINT_SIT_MATCH, detail=str(attribute), sits=maximal)
        return maximal


def _attribute_weights(predicates: PredicateSet) -> dict[Attribute, float]:
    """Predicate weight carried by each attribute of ``P`` (step 1)."""
    weights: dict[Attribute, float] = {}
    for predicate in predicates:
        if predicate.is_join:
            for attribute in (predicate.left, predicate.right):
                weights[attribute] = weights.get(attribute, 0.0) + 0.5
        else:
            attribute = predicate.attribute
            weights[attribute] = weights.get(attribute, 0.0) + 1.0
    return weights


def _component_assignment(
    factor: Factor, weights: dict[Attribute, float]
) -> dict[Attribute, PredicateSet]:
    """Step 2: separate the wildcard-transformed factor and map every
    required attribute to its component's share of ``Q``.

    Wildcard selections touch a single table each, so the component
    structure is fully determined by ``Q``'s table links; a union-find
    over table names avoids materializing wildcard predicates.
    """
    parent: dict[str, str] = {}

    def find(table: str) -> str:
        root = table
        while parent.setdefault(root, root) != root:
            root = parent[root]
        while parent[table] != root:
            parent[table], table = root, parent[table]
        return root

    for predicate in factor.q:
        tables = sorted(predicate.tables)
        for table in tables[1:]:
            parent[find(tables[0])] = find(table)

    q_by_root: dict[str, set] = {}
    for predicate in factor.q:
        root = find(next(iter(predicate.tables)))
        q_by_root.setdefault(root, set()).add(predicate)
    frozen_by_root = {root: frozenset(preds) for root, preds in q_by_root.items()}
    empty: PredicateSet = frozenset()
    return {
        attribute: frozen_by_root.get(find(attribute.table), empty)
        if factor.q
        else empty
        for attribute in weights
    }


# ----------------------------------------------------------------------
# Selecting among candidates and estimating the factor
# ----------------------------------------------------------------------
def select_match(
    candidates: FactorCandidates, error_function: "ErrorFunction"
) -> FactorMatch:
    """Choose one SIT per attribute by the error function's ranking."""
    matches = tuple(
        _attribute_match(entry, error_function.rank_candidate(entry))
        for entry in candidates.attributes
    )
    return FactorMatch(candidates.factor, matches)


def enumerate_matches(
    candidates: FactorCandidates, limit: int = 64
) -> Iterator[FactorMatch]:
    """All per-attribute candidate combinations (capped at ``limit``).

    Used by the theoretical GS-Opt variant, which scores every combination
    with the true error instead of a heuristic ranking.
    """
    count = 1
    chosen: list[list[SIT]] = []
    for entry in candidates.attributes:
        count *= len(entry.candidates)
        chosen.append(list(entry.candidates))
    if count > limit:
        # Degrade gracefully: keep only the largest-expression candidate per
        # attribute beyond the cap.
        chosen = [[entry.candidates[0]] for entry in candidates.attributes]

    def recurse(index: int, acc: list[AttributeMatch]) -> Iterator[FactorMatch]:
        if index == len(candidates.attributes):
            yield FactorMatch(candidates.factor, tuple(acc))
            return
        entry = candidates.attributes[index]
        for sit in chosen[index]:
            acc.append(_attribute_match(entry, sit))
            yield from recurse(index + 1, acc)
            acc.pop()

    yield from recurse(0, [])


def _attribute_match(entry: AttributeCandidates, sit: SIT) -> AttributeMatch:
    return AttributeMatch(
        attribute=entry.attribute,
        weight=entry.weight,
        sit=sit,
        conditioning=entry.conditioning,
        assumed=entry.conditioning - sit.expression,
    )


@dataclass(frozen=True)
class ImplicitTerm:
    """One term of the implicit expansion of a factor approximation.

    Estimating ``Sel_R(P|Q)`` with unidimensional SITs implicitly applies a
    chain of atomic decompositions (Example 3): one term per predicate of
    ``P``, conditioned on the previously processed predicates and on the
    factor's ``Q``.  ``context`` is what the term is conditioned on,
    ``covered`` the part actually captured (by the SITs' expressions and by
    derived join histograms); ``assumed = context - covered`` are the
    independence assumptions this term makes.  Error functions price these
    assumptions (Sections 3.2 and 3.5).
    """

    predicate: object
    context: PredicateSet
    covered: PredicateSet
    sits: tuple[SIT, ...]

    @property
    def assumed(self) -> PredicateSet:
        return self.context - self.covered


def implicit_terms(match: FactorMatch) -> list[ImplicitTerm]:
    """The implicit expansion of ``match``'s factor approximation.

    Mirrors :func:`estimate_factor` exactly: joins first (in the same
    deterministic order, merging coverage through derived histograms),
    then filters.  Context is restricted to the predicate's table-connected
    closure — predicates over disjoint tables are independent *exactly*
    (Property 2), so they are never charged.
    """
    factor = match.factor
    conditioning = {am.attribute: am.conditioning for am in match.attribute_matches}
    covered: dict[Attribute, frozenset] = {
        am.attribute: frozenset(am.sit.expression) for am in match.attribute_matches
    }
    backing: dict[Attribute, tuple[SIT, ...]] = {
        am.attribute: (am.sit,) for am in match.attribute_matches
    }
    # Union-find over attributes: two attributes share a component when
    # their tables are linked by the factor's Q predicates (wildcard
    # components, as in step 2 of Section 3.3) or by an already-processed
    # join of P.
    attrs = sorted(covered)
    index_of = {a: i for i, a in enumerate(attrs)}
    parent = list(range(len(attrs)))

    def uf_find(i: int) -> int:
        while parent[i] != i:
            parent[i] = parent[parent[i]]
            i = parent[i]
        return i

    def uf_union(i: int, j: int) -> None:
        ri, rj = uf_find(i), uf_find(j)
        if ri != rj:
            parent[ri] = rj

    table_parent: dict[str, str] = {}

    def table_find(table: str) -> str:
        root = table
        while table_parent.setdefault(root, root) != root:
            root = table_parent[root]
        while table_parent[table] != root:
            table_parent[table], table = root, table_parent[table]
        return root

    for predicate in factor.q:
        tables = sorted(predicate.tables)
        for table in tables[1:]:
            table_parent[table_find(tables[0])] = table_find(table)

    first_for_root: dict[str, int] = {}
    for attribute in attrs:
        root = table_find(attribute.table)
        if root in first_for_root:
            uf_union(first_for_root[root], index_of[attribute])
        else:
            first_for_root[root] = index_of[attribute]

    processed: list = []
    terms: list[ImplicitTerm] = []

    def context_of(predicate) -> PredicateSet:
        roots = {uf_find(index_of[a]) for a in predicate.attributes}
        context: set = set()
        # Q-predicates conditioning any attribute of the (merged) component.
        for attribute in attrs:
            if uf_find(index_of[attribute]) in roots:
                context |= conditioning[attribute]
        # Previously processed P-predicates in the same component.
        for previous in processed:
            if any(uf_find(index_of[a]) in roots for a in previous.attributes):
                context.add(previous)
        return frozenset(context)

    joins = sorted((p for p in factor.p if p.is_join), key=str)
    filters = sorted((p for p in factor.p if not p.is_join), key=str)
    for join in joins:
        context = context_of(join)
        joint_covered = covered[join.left] | covered[join.right]
        terms.append(
            ImplicitTerm(
                join,
                context,
                joint_covered,
                backing[join.left] + backing[join.right],
            )
        )
        merged_cover = joint_covered | {join}
        merged_backing = backing[join.left] + backing[join.right]
        covered[join.left] = covered[join.right] = merged_cover
        backing[join.left] = backing[join.right] = merged_backing
        uf_union(index_of[join.left], index_of[join.right])
        processed.append(join)
    same_attribute_filters: dict[Attribute, set] = {}
    for predicate in filters:
        attribute = predicate.attribute
        # Filters on one attribute are estimated as a single intersected
        # range (see estimate_factor), so their conjunction is exact: the
        # previously processed same-attribute filters count as covered.
        extra = same_attribute_filters.setdefault(attribute, set())
        terms.append(
            ImplicitTerm(
                predicate,
                context_of(predicate),
                covered[attribute] | frozenset(extra),
                backing[attribute],
            )
        )
        extra.add(predicate)
        processed.append(predicate)
    return terms


def estimate_factor(
    match: FactorMatch, max_buckets: int = DEFAULT_MAX_BUCKETS
) -> float:
    """Numerically approximate ``Sel_R(P|Q)`` with the matched SITs.

    Joins are estimated by histogram joins in a deterministic order; each
    join replaces both operands' histograms with the derived joined
    histogram so later predicates on the same attribute see the refined
    distribution (Example 3).  Filters are then estimated from whatever
    histogram their attribute currently maps to.  The factor multiplies
    all of these — any residual independence is exactly what the error
    functions charge for.
    """
    plan = _fault_plan()
    if plan is not None:
        # histogram load/join injection point: a SIT's histogram payload
        # turns out to be unusable right as the factor is estimated.
        plan.check(
            POINT_HISTOGRAM_JOIN,
            sits=[am.sit for am in match.attribute_matches],
        )
    histograms = {
        attribute_match.attribute: attribute_match.sit.histogram
        for attribute_match in match.attribute_matches
    }
    selectivity = 1.0
    joins = sorted((p for p in match.factor.p if p.is_join), key=str)
    filters = sorted((p for p in match.factor.p if not p.is_join), key=str)
    for join in joins:
        left = histograms[join.left]
        right = histograms[join.right]
        result = join_histograms(left, right, max_buckets=max_buckets)
        selectivity *= result.selectivity
        histograms[join.left] = result.histogram
        histograms[join.right] = result.histogram
        if selectivity == 0.0:
            return 0.0
    # Filters on the same attribute are intersected (their conjunction is
    # one range), not multiplied under independence.
    ranges: dict[Attribute, tuple[float, float]] = {}
    for predicate in filters:
        low, high = ranges.get(predicate.attribute, (-math.inf, math.inf))
        ranges[predicate.attribute] = (
            max(low, predicate.low),
            min(high, predicate.high),
        )
    for attribute in sorted(ranges):
        low, high = ranges[attribute]
        if low > high:
            return 0.0
        selectivity *= histograms[attribute].estimate_range_selectivity(low, high)
        if selectivity == 0.0:
            return 0.0
    return selectivity
