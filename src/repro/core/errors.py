"""Error functions ranking candidate decompositions (Sections 3.2 and 3.5).

All three functions are monotonic and algebraic in the sense of
Definition 3 — per-factor errors are non-negative reals merged with ``+``
(``E = sum``, ``E_merge = +``) — which is what licenses the dynamic
programming in ``getSelectivity`` (principle of optimality).

* :class:`NIndError` — counts independence assumptions (adapted from Bruno
  & Chaudhuri 2002): ``sum_i |P_i| * |Q_i - Q'_i|``, computed here per
  matched attribute with predicate weights so multi-SIT factors reduce to
  the paper's formula in the single-SIT case.
* :class:`DiffError` — the paper's novel semantic metric: the syntactic
  count ``|Q_i - Q'_i|`` is replaced by ``1 - diff_H``, the degree to which
  the SIT's expression actually changes the attribute's distribution.  A
  fully conditioned match (``Q' = Q_c``) makes no assumption and
  contributes zero.
* :class:`OptError` — the theoretical optimum: the true per-factor
  estimation error (absolute log-ratio of estimated versus exact
  conditional selectivity).  Requires executing query expressions, so it
  is usable only in experiments, exactly as in the paper.
"""

from __future__ import annotations

import math
from typing import Protocol

from repro.core.matching import (
    AttributeCandidates,
    FactorMatch,
    estimate_factor,
    implicit_terms,
)
from repro.engine.executor import Executor
from repro.stats.pool import SITPool
from repro.stats.sit import SIT

#: error value for factors with no applicable SITs
INFINITE_ERROR = math.inf


class ErrorFunction(Protocol):
    """Interface the DP and the matcher use to rank alternatives."""

    name: str
    #: True when the best SIT combination can only be found by trying all
    #: combinations (GS-Opt); heuristics rank attributes independently.
    requires_combinations: bool
    #: True when rankings and factor errors depend only on the query's
    #: *shape* (tables, attributes, join structure) and the pool — never
    #: on filter constants.  This licenses the compiled-plan cache
    #: (:mod:`repro.core.plancache`) to reuse a DP decision across
    #: instantiations of one template.  Unknown/custom error functions
    #: default to unstable (the cache probes with ``getattr(..., False)``).
    plan_stable: bool

    def rank_candidate(self, entry: AttributeCandidates) -> SIT:
        """Pick the best candidate SIT for one attribute."""
        ...

    def factor_error(self, match: FactorMatch) -> float:
        """The (estimated) error of approximating the factor with ``match``."""
        ...


def merge(first: float, second: float) -> float:
    """``E_merge`` for all provided error functions (sum is algebraic)."""
    return first + second


class NIndError:
    """Count of independence assumptions (Section 3.2)."""

    name = "nInd"
    requires_combinations = False
    #: assumption counts are pure structure — constants never enter
    plan_stable = True

    def rank_candidate(self, entry: AttributeCandidates) -> SIT:
        return min(
            entry.candidates,
            key=lambda sit: (len(entry.conditioning - sit.expression), str(sit)),
        )

    def factor_error(self, match: FactorMatch) -> float:
        # Each implicit term corresponds to one predicate of the factor's P
        # (so |P_i| is accounted for), and ``assumed`` is its Q_i - Q'_i.
        return float(sum(len(term.assumed) for term in implicit_terms(match)))


class DiffError:
    """The improved, distribution-aware error function (Section 3.5).

    The paper replaces nInd's syntactic assumption count with the semantic
    ``diff`` values attached to SITs.  We apply that idea at the
    granularity where it discriminates best: each *assumed dependence
    pair* ``(p, q)`` — the term's predicate ``p`` assumed independent of a
    context predicate ``q`` — is charged the strength of the dependence
    the available statistics reveal between them:

    * the maximum ``diff_H`` over SITs on an attribute of ``p`` whose
      expression contains ``q`` (or vice versa) — e.g. assuming
      ``nation = USA`` independent of ``orders ⋈ customer`` costs exactly
      ``diff`` of ``SIT(nation | orders ⋈ customer)``;
    * a small ``unknown_cost`` prior when no statistic is informative.

    Consequences (matching the paper's Section 3.5 discussion):
    Example 4 resolves correctly — a SIT whose expression does not change
    the distribution (``diff = 0``) makes the corresponding assumption
    free, so the genuinely informative SIT is preferred; with no SITs at
    all the ranking degrades to ``unknown_cost * nInd``; and known-strong
    dependencies dominate the ranking wherever they are ignored.
    """

    name = "Diff"
    requires_combinations = False
    #: dependence probes key on attributes and (constant-free) join
    #: predicates; with join-only SIT expressions (the pool gate the plan
    #: cache enforces) a filter's constants never reach ``pool.find``
    plan_stable = True

    def __init__(self, pool: SITPool, unknown_cost: float = 0.05):
        if not 0.0 <= unknown_cost <= 1.0:
            raise ValueError("unknown_cost must be in [0, 1]")
        self._pool = pool
        self._unknown_cost = unknown_cost
        self._dependence_cache: dict[tuple, float] = {}
        #: pure function of (attribute, predicate) for a fixed pool —
        #: cached like ``_pair_dependence`` (the cold-start profile shows
        #: candidate ranking re-probing the same pairs hundreds of times)
        self._attribute_cache: dict[tuple, float] = {}

    # -- candidate selection -------------------------------------------
    def rank_candidate(self, entry: AttributeCandidates) -> SIT:
        def score(sit: SIT) -> tuple[float, str]:
            assumed = entry.conditioning - sit.expression
            # Sort before summing: float addition is not associative, and
            # frozenset iteration order is hash-seed dependent (equal sets
            # built through different operations may even iterate
            # differently), so an unsorted sum is not reproducible.
            total = sum(
                self._attribute_dependence(entry.attribute, q)
                for q in sorted(assumed, key=str)
            )
            return (total, str(sit))

        return min(entry.candidates, key=score)

    # -- factor error ---------------------------------------------------
    def factor_error(self, match: FactorMatch) -> float:
        total = 0.0
        for term in implicit_terms(match):
            # Deterministic summation order (see rank_candidate): the same
            # logical match must yield the bit-identical error no matter
            # how its predicate sets were constructed.
            for assumed in sorted(term.assumed, key=str):
                total += self._pair_dependence(term.predicate, assumed)
        return total

    # -- dependence estimation ------------------------------------------
    def _pair_dependence(self, predicate, other) -> float:
        """Known strength of the dependence between two predicates."""
        key = (predicate, other) if str(predicate) <= str(other) else (other, predicate)
        cached = self._dependence_cache.get(key)
        if cached is not None:
            return cached
        best: float | None = None
        for first, second in ((predicate, other), (other, predicate)):
            for attribute in first.attributes:
                for sit in self._pool.find(attribute, expression_member=second):
                    best = sit.diff if best is None else max(best, sit.diff)
        value = self._unknown_cost if best is None else best
        self._dependence_cache[key] = value
        return value

    def _attribute_dependence(self, attribute, other) -> float:
        key = (attribute, other)
        cached = self._attribute_cache.get(key)
        if cached is not None:
            return cached
        best: float | None = None
        for sit in self._pool.find(attribute, expression_member=other):
            best = sit.diff if best is None else max(best, sit.diff)
        value = self._unknown_cost if best is None else best
        self._attribute_cache[key] = value
        return value


class OptError:
    """True per-factor error — the best possible ranking (GS-Opt).

    ``error(H, S)`` is ``|ln(estimated / true)|``: summed over factors this
    bounds the log-scale error of the full decomposition, is monotonic and
    merges with ``+``.  A small epsilon guards empty selectivities.
    """

    name = "Opt"
    requires_combinations = True
    #: executes the query expressions with the *concrete* constants —
    #: rankings legitimately change across template instantiations, so
    #: compiled plans must never be reused under this function
    plan_stable = False

    def __init__(self, executor: Executor, epsilon: float = 1e-12):
        self._executor = executor
        self._epsilon = epsilon

    def rank_candidate(self, entry: AttributeCandidates) -> SIT:
        # Fallback ranking when combination search is capped: prefer the
        # largest conditioning, then the most divergent distribution.
        return min(
            entry.candidates,
            key=lambda sit: (
                len(entry.conditioning - sit.expression),
                -sit.diff,
                str(sit),
            ),
        )

    def factor_error(self, match: FactorMatch) -> float:
        estimated = estimate_factor(match)
        factor = match.factor
        true = self._executor.conditional_selectivity(
            factor.p, factor.q, tables=factor.tables
        )
        return abs(
            math.log((estimated + self._epsilon) / (true + self._epsilon))
        )
