"""The ``getSelectivity`` dynamic programming algorithm (Figure 3).

Given tables ``R``, predicates ``P``, a pool of SITs and a monotonic,
algebraic error function, ``getSelectivity`` returns the most accurate
approximation of ``Sel_R(P)`` among all *non-separable* decompositions
(Theorem 1), in ``O(3^n)`` instead of the factorial cost of exhaustive
enumeration (Lemma 1).

Structure follows the paper's pseudo-code:

* memoization table keyed by the predicate set (lines 1-2);
* separable selectivities are split into their standard decomposition and
  solved independently (lines 3-7, Lemma 2);
* non-separable ones try every atomic decomposition
  ``Sel(P'|Q) * Sel(Q)`` (lines 9-15), matching SITs for the conditional
  factor through the view-matching routine of Section 3.3;
* the winning factor is *estimated* only once, after the search
  (lines 16-17) — the paper's split between "decomposition analysis" and
  "histogram manipulation" time, which Figure 8 reports separately.

The optional SIT-driven pruning of Section 3.4 skips atomic decompositions
whose conditional factor could not possibly use a non-base SIT.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from itertools import combinations
from typing import Iterator

from repro.core.errors import INFINITE_ERROR, ErrorFunction, merge
from repro.core.matching import (
    FactorMatch,
    ViewMatcher,
    enumerate_matches,
    estimate_factor,
    select_match,
)
from repro.core.predicates import PredicateSet, connected_components
from repro.core.selectivity import Decomposition, Factor
from repro.stats.pool import SITPool


@dataclass(frozen=True)
class EstimationResult:
    """Outcome of ``getSelectivity`` for one predicate set.

    ``coverage`` is the total size of the SIT expressions the chosen
    decomposition exploits; it is the *tie-breaker* among equal-error
    decompositions (prefer actually-used conditioning).  Like ``error``
    it is additive under ``E_merge``, so lexicographic ``(error,
    -coverage)`` comparison preserves the DP's principle of optimality.
    """

    selectivity: float
    error: float
    decomposition: Decomposition
    matches: tuple[FactorMatch, ...]
    coverage: float = 0.0

    @property
    def factor_count(self) -> int:
        return len(self.decomposition)


def _match_coverage(match: FactorMatch) -> float:
    """Total conditioning actually used by a factor's SITs."""
    return float(
        sum(len(am.sit.expression) for am in match.attribute_matches)
    )


_EMPTY_RESULT = EstimationResult(1.0, 0.0, Decomposition(()), ())


class GetSelectivity:
    """A reusable ``getSelectivity`` instance.

    The memoization table persists across calls, so during the optimization
    of one query every selectivity request for a sub-plan after the first
    is a table lookup — the reuse property Section 4 builds on.  Create a
    fresh instance (or call :meth:`reset`) when the SIT pool changes.
    """

    def __init__(
        self,
        pool: SITPool,
        error_function: ErrorFunction,
        sit_driven_pruning: bool = False,
        matcher: ViewMatcher | None = None,
    ):
        self.pool = pool
        self.error_function = error_function
        self.sit_driven_pruning = sit_driven_pruning
        self.matcher = matcher if matcher is not None else ViewMatcher(pool)
        self._memo: dict[PredicateSet, EstimationResult] = {}
        # Pure function of (P', Q) for a fixed pool and error function, so
        # it survives reset() (which only clears per-query accounting).
        self._match_cache: dict[
            tuple[PredicateSet, PredicateSet], tuple[FactorMatch | None, float]
        ] = {}
        #: accumulated seconds in search + SIT selection (Figure 8's
        #: "decomposition analysis") and in numeric estimation ("histogram
        #: manipulation").
        self.analysis_seconds = 0.0
        self.estimation_seconds = 0.0

    # ------------------------------------------------------------------
    def reset(self) -> None:
        """Clear per-query state: memo, call counter, timing accumulators
        (the factor-match cache is pool-pure and survives)."""
        self._memo.clear()
        self.matcher.reset_counter()
        self.analysis_seconds = 0.0
        self.estimation_seconds = 0.0

    def __call__(self, predicates: PredicateSet) -> EstimationResult:
        """Most accurate estimation of ``Sel_R(P)`` with ``R = tables(P)``."""
        predicates = frozenset(predicates)
        started = time.perf_counter()
        result = self._solve(predicates)
        self.analysis_seconds += time.perf_counter() - started
        return result

    def cached_results(self) -> dict[PredicateSet, EstimationResult]:
        """The memo table: free estimates for every solved sub-query."""
        return dict(self._memo)

    # ------------------------------------------------------------------
    def _solve(self, predicates: PredicateSet) -> EstimationResult:
        if not predicates:
            return _EMPTY_RESULT
        cached = self._memo.get(predicates)  # lines 1-2
        if cached is not None:
            return cached
        components = connected_components(predicates)
        if len(components) > 1:  # lines 3-7
            result = self._solve_separable(components)
        else:  # lines 9-17
            result = self._solve_non_separable(predicates)
        self._memo[predicates] = result  # line 18
        return result

    def _solve_separable(self, components: list[PredicateSet]) -> EstimationResult:
        selectivity = 1.0
        error = 0.0
        coverage = 0.0
        decomposition = Decomposition(())
        matches: tuple[FactorMatch, ...] = ()
        for component in components:
            partial = self._solve(component)
            selectivity *= partial.selectivity
            error = merge(error, partial.error)
            coverage += partial.coverage
            decomposition = decomposition.merged(partial.decomposition)
            matches = matches + partial.matches
        return EstimationResult(selectivity, error, decomposition, matches, coverage)

    def _solve_non_separable(self, predicates: PredicateSet) -> EstimationResult:
        best_key = (INFINITE_ERROR, 0.0)
        best_match: FactorMatch | None = None
        best_tail: EstimationResult | None = None
        for p_part in self._atomic_decompositions(predicates):
            q_part = predicates - p_part
            if self.sit_driven_pruning and not self._worth_exploring(p_part, q_part):
                continue
            tail = self._solve(q_part)  # line 11
            if tail.error > best_key[0]:
                continue  # monotonicity: this decomposition cannot win
            match, factor_error = self._best_factor_match(p_part, q_part)  # line 12
            if match is None:
                continue
            total = merge(factor_error, tail.error)
            coverage = _match_coverage(match) + tail.coverage
            key = (total, -coverage)
            if key < best_key:  # lines 13-15, ties broken by coverage
                best_key = key
                best_match = match
                best_tail = tail
        if best_match is None or best_tail is None:
            # No SITs at all for some attribute: surface it explicitly
            # rather than inventing a number.
            raise NoApplicableStatisticsError(predicates)
        started = time.perf_counter()
        factor_selectivity = estimate_factor(best_match)  # line 16
        self.estimation_seconds += time.perf_counter() - started
        selectivity = factor_selectivity * best_tail.selectivity  # line 17
        decomposition = best_tail.decomposition.extended(best_match.factor)
        matches = (best_match, *best_tail.matches)
        return EstimationResult(
            selectivity, best_key[0], decomposition, matches, -best_key[1]
        )

    # ------------------------------------------------------------------
    def _atomic_decompositions(
        self, predicates: PredicateSet
    ) -> Iterator[PredicateSet]:
        """Line 10: every non-empty ``P' ⊆ P`` in a deterministic order.

        ``P' = P`` (with ``Q`` empty) is included — it is the decomposition
        a traditional optimizer implicitly uses.
        """
        items = sorted(predicates, key=str)
        for size in range(1, len(items) + 1):
            for combo in combinations(items, size):
                yield frozenset(combo)

    def _best_factor_match(
        self, p_part: PredicateSet, q_part: PredicateSet
    ) -> tuple[FactorMatch | None, float]:
        key = (p_part, q_part)
        cached = self._match_cache.get(key)
        if cached is not None:
            # Still one logical view-matching invocation (Figure 6 metric).
            self.matcher.calls += 1
            return cached
        result = self._compute_factor_match(p_part, q_part)
        self._match_cache[key] = result
        return result

    def _compute_factor_match(
        self, p_part: PredicateSet, q_part: PredicateSet
    ) -> tuple[FactorMatch | None, float]:
        factor = Factor(p_part, q_part)
        candidates = self.matcher.candidates_for_factor(factor)
        if candidates is None:
            return None, INFINITE_ERROR
        if self.error_function.requires_combinations:
            best: FactorMatch | None = None
            best_error = INFINITE_ERROR
            for match in enumerate_matches(candidates):
                error = self.error_function.factor_error(match)
                if error < best_error:
                    best, best_error = match, error
            return best, best_error
        match = select_match(candidates, self.error_function)
        return match, self.error_function.factor_error(match)

    def _worth_exploring(self, p_part: PredicateSet, q_part: PredicateSet) -> bool:
        """Section 3.4's pruning: keep ``Q = {}`` (the fallback every query
        needs) and decompositions where some attribute of ``P'`` has a
        non-base SIT whose expression is contained in ``Q``."""
        if not q_part:
            return True
        attributes = set()
        for predicate in p_part:
            attributes.update(predicate.attributes)
        for attribute in attributes:
            for sit in self.pool.for_attribute(attribute):
                if sit.expression and sit.expression <= q_part:
                    return True
        return False


class NoApplicableStatisticsError(RuntimeError):
    """Raised when no SIT (not even a base histogram) covers an attribute."""

    def __init__(self, predicates: PredicateSet):
        names = ", ".join(sorted(str(p) for p in predicates))
        super().__init__(
            f"no applicable statistics to approximate Sel({names}); "
            "ensure the pool contains base histograms for every attribute"
        )
        self.predicates = predicates


def query_cardinality(
    result: EstimationResult, table_sizes: dict[str, int], tables: frozenset[str]
) -> float:
    """Scale a selectivity back to a cardinality: ``Sel * |R1 x ... x Rn|``."""
    size = 1.0
    for table in tables:
        size *= table_sizes[table]
    return result.selectivity * size
