"""The ``getSelectivity`` dynamic programming algorithm (Figure 3).

Given tables ``R``, predicates ``P``, a pool of SITs and a monotonic,
algebraic error function, ``getSelectivity`` returns the most accurate
approximation of ``Sel_R(P)`` among all *non-separable* decompositions
(Theorem 1), in ``O(3^n)`` instead of the factorial cost of exhaustive
enumeration (Lemma 1).

Structure follows the paper's pseudo-code:

* memoization table keyed by the predicate set (lines 1-2);
* separable selectivities are split into their standard decomposition and
  solved independently (lines 3-7, Lemma 2);
* non-separable ones try every atomic decomposition
  ``Sel(P'|Q) * Sel(Q)`` (lines 9-15), matching SITs for the conditional
  factor through the view-matching routine of Section 3.3;
* the winning factor is *estimated* only once, after the search
  (lines 16-17) — the paper's split between "decomposition analysis" and
  "histogram manipulation" time, which Figure 8 reports separately.

The optional SIT-driven pruning of Section 3.4 skips atomic decompositions
whose conditional factor could not possibly use a non-base SIT.

Performance architecture
------------------------
Because ``getSelectivity`` runs inside the optimizer's cardinality-request
loop, per-call latency is the budget.  :class:`GetSelectivity` therefore
runs the whole DP on an interned **bitmask representation**
(:mod:`repro.core.universe`): the memo and factor-match cache key on plain
``int`` masks, submask enumeration is ``sub = (sub - 1) & mask``,
connected components are a bitwise BFS over a precomputed adjacency table,
and Section 3.4 pruning is a single ``expr & ~q == 0`` test per candidate
SIT expression.  ``frozenset`` objects are materialized only at the public
API boundary and on factor-match cache misses, so ``EstimationResult``,
``Decomposition`` and every caller are unchanged.

:class:`LegacyGetSelectivity` (reachable as
``GetSelectivity.create(..., engine="legacy")``) preserves the original
frozenset-based implementation verbatim; it is the oracle for the
randomized parity suite (``tests/core/test_bitmask_parity.py``), which
asserts the two paths return bit-identical selectivities, errors and
decompositions.  Exact ties between decompositions are broken by the
canonical (subset size, lexicographic over str-sorted predicates) order in
both paths — the legacy path gets it implicitly from its enumeration
order, the bitmask path from :meth:`PredicateUniverse.tie_break`.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from itertools import combinations, islice
from typing import Iterator

from repro.core.errors import INFINITE_ERROR, ErrorFunction, merge
from repro.obs.metrics import MetricsRegistry
from repro.obs.snapshot import StatsSnapshot
from repro.obs.trace import Trace
from repro.core.matching import (
    FactorMatch,
    ViewMatcher,
    enumerate_matches,
    estimate_factor,
    select_match,
)
from repro.core.predicates import PredicateSet, connected_components
from repro.core.selectivity import Decomposition, Factor
from repro.core.universe import PredicateUniverse, iter_bits
from repro.stats.pool import SITPool


@dataclass(frozen=True)
class EstimationResult:
    """Outcome of ``getSelectivity`` for one predicate set.

    ``coverage`` is the total size of the SIT expressions the chosen
    decomposition exploits; it is the *tie-breaker* among equal-error
    decompositions (prefer actually-used conditioning).  Like ``error``
    it is additive under ``E_merge``, so lexicographic ``(error,
    -coverage)`` comparison preserves the DP's principle of optimality.
    """

    selectivity: float
    error: float
    decomposition: Decomposition
    matches: tuple[FactorMatch, ...]
    coverage: float = 0.0
    #: graceful-degradation ladder level that produced this estimate
    #: (0 = normal path; see :mod:`repro.resilience.ladder`).  Defaulted
    #: so the happy path returns the DP's result object untouched.
    degradation_level: int = 0
    #: SIT names excluded by level-1 re-planning (empty on level 0)
    excluded_sits: tuple[str, ...] = ()
    #: True when this result was produced by replaying a compiled plan
    #: (:mod:`repro.core.plancache`) instead of running the DP.  Excluded
    #: from equality: a replay is *defined* to be bit-identical to the
    #: cold run it mirrors, and the parity suites compare results with
    #: ``==`` across the two paths.
    plan_cache_hit: bool = field(default=False, compare=False)
    #: which estimator backend produced this result (``"sit"``, ``"bn"``,
    #: ``"sample"``, or ``"magic"`` for the ladder's terminal constants;
    #: see :mod:`repro.estimators`).  Excluded from equality so parity
    #: comparisons across backends/paths stay value-based.
    backend: str = field(default="sit", compare=False)
    #: distribution-free additive error guarantee on ``selectivity``
    #: (only the guaranteed-sampling backend sets one; see
    #: :mod:`repro.estimators.sampling`).  Excluded from equality like
    #: the other provenance fields.
    error_bound: float | None = field(default=None, compare=False)
    #: worst-case serving-snapshot staleness (seconds) over the tables
    #: this estimate touched, stamped when a
    #: :class:`repro.obs.StalenessTracker` is attached to the session
    #: (``None`` when nothing streams writes).  Excluded from equality:
    #: staleness is provenance about *when* the answer was computed,
    #: not part of its value.
    staleness_s: float | None = field(default=None, compare=False)

    @property
    def factor_count(self) -> int:
        return len(self.decomposition)

    @property
    def degraded(self) -> bool:
        return self.degradation_level > 0


def _match_coverage(match: FactorMatch) -> float:
    """Total conditioning actually used by a factor's SITs."""
    return float(
        sum(len(am.sit.expression) for am in match.attribute_matches)
    )


_EMPTY_RESULT = EstimationResult(1.0, 0.0, Decomposition(()), ())


class GetSelectivity:
    """A reusable ``getSelectivity`` instance (bitmask fast path).

    The memoization table persists across calls, so during the optimization
    of one query every selectivity request for a sub-plan after the first
    is a table lookup — the reuse property Section 4 builds on.  Create a
    fresh instance (or call :meth:`reset`) when the SIT pool changes.

    Engine selection goes through the explicit factory::

        GetSelectivity.create(pool, error_fn, engine="bitmask")   # default
        GetSelectivity.create(pool, error_fn, engine="legacy")    # oracle
    """

    #: engine identifier surfaced through ``stats_snapshot()`` and EXPLAIN
    engine = "bitmask"

    @classmethod
    def create(
        cls,
        pool: SITPool,
        error_function: ErrorFunction,
        *,
        engine: str = "bitmask",
        sit_driven_pruning: bool = False,
        matcher: ViewMatcher | None = None,
    ) -> "GetSelectivity":
        """Explicit engine-selecting factory.

        ``engine`` is ``"bitmask"`` (the fast interned-mask DP) or
        ``"legacy"`` (the preserved frozenset reference implementation).
        The factory never swaps classes under a subclass's feet:
        ``SubClass.create(...)`` builds ``SubClass`` for the bitmask
        engine and the plain ``LegacyGetSelectivity`` oracle for the
        legacy one.
        """
        if engine == "legacy":
            return LegacyGetSelectivity(
                pool,
                error_function,
                sit_driven_pruning=sit_driven_pruning,
                matcher=matcher,
            )
        if engine != "bitmask":
            raise ValueError(
                f"unknown engine {engine!r}; expected 'bitmask' or 'legacy'"
            )
        return cls(
            pool,
            error_function,
            sit_driven_pruning=sit_driven_pruning,
            matcher=matcher,
        )

    def __init__(
        self,
        pool: SITPool,
        error_function: ErrorFunction,
        sit_driven_pruning: bool = False,
        matcher: ViewMatcher | None = None,
    ):
        self.pool = pool
        self.error_function = error_function
        self.sit_driven_pruning = sit_driven_pruning
        self.matcher = matcher if matcher is not None else ViewMatcher(pool)
        #: bit-interning of every predicate this instance has seen; must
        #: outlive reset() because the factor-match cache keys on its bits.
        self.universe = PredicateUniverse(pool)
        #: memo keyed by predicate mask (legacy subclass: by frozenset)
        self._memo: dict = {}
        # Pure function of (P', Q) for a fixed pool and error function, so
        # it survives reset() (which only clears per-query accounting).
        # Fast path values are (match, error, coverage) triples; the legacy
        # subclass stores (match, error) pairs, as the seed did.
        self._match_cache: dict = {}
        # estimate_factor(match) is a pure histogram computation per
        # (P', Q); caching it across reset() means a steady-state optimizer
        # only pays histogram manipulation for factors it has never
        # estimated before (fast path only — the legacy baseline keeps the
        # seed behaviour of re-estimating per query).
        self._estimate_cache: dict = {}
        #: accumulated seconds in search + SIT selection (Figure 8's
        #: "decomposition analysis") and in numeric estimation ("histogram
        #: manipulation").
        self.analysis_seconds = 0.0
        self.estimation_seconds = 0.0
        #: per-query observability counters (see :meth:`stats_snapshot`)
        self.match_cache_hits = 0
        self.match_cache_misses = 0
        self.pruned_decompositions = 0
        self.explored_decompositions = 0
        #: opt-in cross-query memo bank (see :meth:`enable_memo_bank`);
        #: ``None`` == disabled, costing nothing on the memo-miss path.
        self._memo_bank: dict | None = None
        self._memo_bank_limit = 0
        #: pool derived-state version the bank was filled under; a
        #: mismatch (``notify_table_update``, membership change) clears
        #: the bank at the next query — the same single invalidation
        #: path the plan cache rides
        self._memo_bank_version = -1
        self.memo_bank_hits = 0
        #: opt-in tracing; ``None`` == disabled (one branch per call site)
        self.trace: Trace | None = None

    # ------------------------------------------------------------------
    def enable_tracing(self, trace: Trace | None = None) -> Trace:
        """Attach a :class:`Trace` (shared with the matcher) and return it."""
        self.trace = trace if trace is not None else Trace()
        self.matcher.trace = self.trace
        return self.trace

    def disable_tracing(self) -> None:
        """Detach tracing; instrumented sites fall back to one branch."""
        self.trace = None
        self.matcher.trace = None

    # ------------------------------------------------------------------
    def enable_memo_bank(self, limit: int = 8192) -> None:
        """Opt into cross-query DP-memo seeding (the plan cache's
        shape-miss accelerator).

        After each successful query the caller banks the memo
        (:meth:`bank_memo`); on a later query, ``_solve`` consults the
        bank on a memo miss, so the largest subproblems *shared* with
        previously compiled shapes — concretely recurring submasks, which
        for template workloads are the constant-free join cores — are
        answered without re-enumeration.  Sound because a memo entry is a
        deterministic, pool-pure function of its predicate set: re-solving
        the same mask can only reproduce the banked result bit for bit.

        Off by default so the production DP benchmarks keep measuring the
        pure enumeration; :class:`~repro.estimators.sit.
        SITEstimator` enables it alongside its plan cache.
        """
        if self._memo_bank is None:
            self._memo_bank = {}
            self._memo_bank_version = (
                self.pool.version if self.pool is not None else 0
            )
        self._memo_bank_limit = limit

    def disable_memo_bank(self) -> None:
        self._memo_bank = None
        self._memo_bank_limit = 0

    def bank_memo(self) -> None:
        """Fold the current memo into the bank (bounded, oldest-first
        eviction); call after a successful level-0 query."""
        bank = self._memo_bank
        if bank is None:
            return
        bank.update(self._memo)
        limit = self._memo_bank_limit
        if limit and len(bank) > limit:
            drop = len(bank) - (limit * 3) // 4
            for key in list(islice(iter(bank), drop)):
                del bank[key]

    def memo_bank_size(self) -> int:
        return len(self._memo_bank) if self._memo_bank is not None else 0

    # ------------------------------------------------------------------
    def reset(self) -> None:
        """Clear per-query state: memo, call counter, timing accumulators
        (the factor-match cache and universe are pool-pure and survive)."""
        self._memo.clear()
        self.matcher.reset_counter()
        self.analysis_seconds = 0.0
        self.estimation_seconds = 0.0
        self.match_cache_hits = 0
        self.match_cache_misses = 0
        self.pruned_decompositions = 0
        self.explored_decompositions = 0
        self.memo_bank_hits = 0
        if self.trace is not None:
            self.trace.clear()

    # ------------------------------------------------------------------
    def metrics_registry(self) -> MetricsRegistry:
        """The DP's state as a :class:`MetricsRegistry` (the substrate of
        :meth:`stats_snapshot`).  Timings land in ``timings.*``, event
        counts in ``counters.*``, cache sizes and hit/miss counts in
        ``caches.*``; per-stage trace timings and counters are folded in
        when tracing is enabled."""
        registry = MetricsRegistry()
        gauge = registry.gauge
        counter = registry.counter
        gauge("timings.analysis_seconds").set(self.analysis_seconds)
        gauge("timings.estimation_seconds").set(self.estimation_seconds)
        counter("counters.matcher_calls").inc(self.matcher.calls)
        counter("counters.pruned_decompositions").inc(self.pruned_decompositions)
        counter("counters.explored_decompositions").inc(
            self.explored_decompositions
        )
        gauge("counters.universe_size").set(self.universe.size)
        gauge("caches.memo_entries").set(len(self._memo))
        gauge("caches.match_cache_entries").set(len(self._match_cache))
        gauge("caches.estimate_cache_entries").set(len(self._estimate_cache))
        counter("caches.match_cache_hits").inc(self.match_cache_hits)
        counter("caches.match_cache_misses").inc(self.match_cache_misses)
        if self._memo_bank is not None:
            gauge("caches.memo_bank_entries").set(float(len(self._memo_bank)))
            counter("caches.memo_bank_hits").inc(self.memo_bank_hits)
        trace = self.trace
        if trace is not None:
            for stage, seconds, calls in trace.stages():
                gauge(f"timings.{stage}_seconds").set(seconds)
                counter(f"counters.{stage}_calls").inc(calls)
            for name, value in sorted(trace.counters.items()):
                counter(f"counters.{name}").inc(value)
        return registry

    def stats_snapshot(self) -> StatsSnapshot:
        """The documented observability snapshot (see
        :class:`repro.obs.snapshot.StatsSnapshot`).

        Cache sizes are current; hits/misses, matcher calls, explored and
        pruned decomposition counts and the two Figure 8 timing
        accumulators are per-query (cleared by :meth:`reset`).
        """
        return StatsSnapshot.from_registry(
            self.metrics_registry(),
            meta={"engine": self.engine, "tracing": self.trace is not None},
        )

    def __call__(self, predicates: PredicateSet) -> EstimationResult:
        """Most accurate estimation of ``Sel_R(P)`` with ``R = tables(P)``."""
        predicates = frozenset(predicates)
        bank = self._memo_bank
        if bank is not None:
            version = self.pool.version if self.pool is not None else 0
            if version != self._memo_bank_version:
                bank.clear()
                self._memo_bank_version = version
        started = time.perf_counter()
        mask = self.universe.intern(predicates)
        trace = self.trace
        if trace is not None:
            with trace.span("dp_enumeration"):
                result = self._solve(mask)
        else:
            result = self._solve(mask)
        self.analysis_seconds += time.perf_counter() - started
        return result

    def cached_results(self) -> dict[PredicateSet, EstimationResult]:
        """The memo table: free estimates for every solved sub-query."""
        set_of = self.universe.set_of
        return {set_of(mask): result for mask, result in self._memo.items()}

    # ------------------------------------------------------------------
    def _solve(self, mask: int) -> EstimationResult:
        if not mask:
            return _EMPTY_RESULT
        cached = self._memo.get(mask)  # lines 1-2
        trace = self.trace
        if cached is not None:
            if trace is not None:
                trace.count("memo_hits")
            return cached
        if trace is not None:
            trace.count("memo_misses")
        bank = self._memo_bank
        if bank is not None:
            banked = bank.get(mask)
            if banked is not None:
                # Cross-query seeding: this subproblem was solved for a
                # previously compiled shape (memo entries are pool-pure
                # and deterministic, so reuse is bit-identical).
                self._memo[mask] = banked
                self.memo_bank_hits += 1
                if trace is not None:
                    trace.count("memo_bank_hits")
                return banked
        components = self.universe.components(mask)
        if len(components) > 1:  # lines 3-7
            result = self._solve_separable(components)
        else:  # lines 9-17
            result = self._solve_non_separable(mask)
        self._memo[mask] = result  # line 18
        return result

    def _solve_separable(self, components: list[int]) -> EstimationResult:
        selectivity = 1.0
        error = 0.0
        coverage = 0.0
        decomposition = Decomposition(())
        matches: tuple[FactorMatch, ...] = ()
        for component in components:
            partial = self._solve(component)
            selectivity *= partial.selectivity
            error = merge(error, partial.error)
            coverage += partial.coverage
            decomposition = decomposition.merged(partial.decomposition)
            matches = matches + partial.matches
        return EstimationResult(selectivity, error, decomposition, matches, coverage)

    def _solve_non_separable(self, mask: int) -> EstimationResult:
        universe = self.universe
        solve = self._solve
        pruning = self.sit_driven_pruning
        best_error = INFINITE_ERROR
        best_coverage = 0.0
        best_match: FactorMatch | None = None
        best_tail: EstimationResult | None = None
        best_p_mask = 0
        best_tie: tuple[int, int] | None = None
        explored = 0
        # Line 10: every non-empty P' ⊆ P via submask enumeration
        # (sub = (sub - 1) & mask); P' = P (Q empty) is included — it is
        # the decomposition a traditional optimizer implicitly uses.
        sub = mask
        while sub:
            p_mask = sub
            sub = (sub - 1) & mask
            q_mask = mask ^ p_mask
            if pruning and q_mask and not self._worth_exploring_masks(
                p_mask, q_mask
            ):
                self.pruned_decompositions += 1
                continue
            explored += 1
            tail = solve(q_mask)  # line 11
            if tail.error > best_error:
                continue  # monotonicity: this decomposition cannot win
            match, factor_error, match_coverage = self._best_factor_match(
                p_mask, q_mask
            )  # line 12
            if match is None:
                continue
            total = merge(factor_error, tail.error)
            if total > best_error:
                continue
            coverage = match_coverage + tail.coverage
            if total == best_error and coverage == best_coverage:
                # Exact tie on (error, -coverage): break it with the
                # canonical (size, str-lex) order the legacy enumeration
                # used implicitly — lines 13-15's determinism contract.
                if best_match is None:
                    continue  # ties against the (inf, 0) sentinel lose
                if best_tie is None:
                    best_tie = universe.tie_break(best_p_mask)
                tie = universe.tie_break(p_mask)
                if tie >= best_tie:
                    continue
                best_tie = tie
            elif total == best_error and coverage < best_coverage:
                continue
            else:
                best_tie = None
            best_error = total
            best_coverage = coverage
            best_match = match
            best_tail = tail
            best_p_mask = p_mask
        self.explored_decompositions += explored
        if best_match is None or best_tail is None:
            # No SITs at all for some attribute: surface it explicitly
            # rather than inventing a number.
            raise NoApplicableStatisticsError(universe.set_of(mask))
        estimate_key = (best_p_mask, mask ^ best_p_mask)
        factor_selectivity = self._estimate_cache.get(estimate_key)
        if factor_selectivity is None:
            started = time.perf_counter()
            factor_selectivity = estimate_factor(best_match)  # line 16
            elapsed = time.perf_counter() - started
            self.estimation_seconds += elapsed
            trace = self.trace
            if trace is not None:
                trace.add_time("histogram_join", elapsed)
            self._estimate_cache[estimate_key] = factor_selectivity
        elif self.trace is not None:
            self.trace.count("estimate_cache_hits")
        selectivity = factor_selectivity * best_tail.selectivity  # line 17
        decomposition = best_tail.decomposition.extended(best_match.factor)
        matches = (best_match, *best_tail.matches)
        return EstimationResult(
            selectivity, best_error, decomposition, matches, best_coverage
        )

    # ------------------------------------------------------------------
    def _best_factor_match(
        self, p_mask: int, q_mask: int
    ) -> tuple[FactorMatch | None, float, float]:
        key = (p_mask, q_mask)
        # One logical view-matching invocation (Figure 6 metric), counted
        # exactly once whether or not the result is cached.
        self.matcher.count_invocation()
        cached = self._match_cache.get(key)
        if cached is not None:
            self.match_cache_hits += 1
            return cached
        self.match_cache_misses += 1
        universe = self.universe
        match, error = self._compute_factor_match(
            universe.set_of(p_mask), universe.set_of(q_mask)
        )
        coverage = _match_coverage(match) if match is not None else 0.0
        result = (match, error, coverage)
        self._match_cache[key] = result
        return result

    def _compute_factor_match(
        self, p_part: PredicateSet, q_part: PredicateSet
    ) -> tuple[FactorMatch | None, float]:
        factor = Factor(p_part, q_part)
        trace = self.trace
        if trace is not None:
            with trace.span("factor_matching"):
                candidates = self.matcher.candidates_for_factor(
                    factor, count=False
                )
            if candidates is None:
                return None, INFINITE_ERROR
            with trace.span("error_scoring"):
                return self._score_candidates(candidates)
        candidates = self.matcher.candidates_for_factor(factor, count=False)
        if candidates is None:
            return None, INFINITE_ERROR
        return self._score_candidates(candidates)

    def _score_candidates(self, candidates) -> tuple[FactorMatch | None, float]:
        """Pick and price the best SIT combination for a factor's candidates."""
        if self.error_function.requires_combinations:
            best: FactorMatch | None = None
            best_error = INFINITE_ERROR
            for match in enumerate_matches(candidates):
                error = self.error_function.factor_error(match)
                if error < best_error:
                    best, best_error = match, error
            return best, best_error
        match = select_match(candidates, self.error_function)
        return match, self.error_function.factor_error(match)

    def _worth_exploring_masks(self, p_mask: int, q_mask: int) -> bool:
        """Section 3.4's pruning on masks: keep decompositions where some
        attribute of ``P'`` has a non-base SIT whose expression is
        contained in ``Q`` — one ``expr & ~q == 0`` test per expression.
        (``Q = {}``, the fallback every query needs, is kept by the
        caller.)"""
        prune_masks = self.universe.prune_masks
        not_q = ~q_mask
        for bit in iter_bits(p_mask):
            for expression_mask in prune_masks(bit):
                if expression_mask & not_q == 0:
                    return True
        return False


class LegacyGetSelectivity(GetSelectivity):
    """The original frozenset-based ``getSelectivity`` implementation.

    Kept verbatim as the oracle for the bitmask parity suite and as the
    baseline the ``repro.bench.perf`` benchmarks measure speedups against.
    Construct via :meth:`GetSelectivity.create` with ``engine="legacy"``
    (or directly).
    """

    engine = "legacy"

    def __call__(self, predicates: PredicateSet) -> EstimationResult:
        predicates = frozenset(predicates)
        started = time.perf_counter()
        trace = self.trace
        if trace is not None:
            with trace.span("dp_enumeration"):
                result = self._solve(predicates)
        else:
            result = self._solve(predicates)
        self.analysis_seconds += time.perf_counter() - started
        return result

    def cached_results(self) -> dict[PredicateSet, EstimationResult]:
        return dict(self._memo)

    # ------------------------------------------------------------------
    def _solve(self, predicates: PredicateSet) -> EstimationResult:
        if not predicates:
            return _EMPTY_RESULT
        cached = self._memo.get(predicates)  # lines 1-2
        trace = self.trace
        if cached is not None:
            if trace is not None:
                trace.count("memo_hits")
            return cached
        if trace is not None:
            trace.count("memo_misses")
        components = connected_components(predicates)
        if len(components) > 1:  # lines 3-7
            result = self._solve_separable(components)
        else:  # lines 9-17
            result = self._solve_non_separable(predicates)
        self._memo[predicates] = result  # line 18
        return result

    def _solve_separable(
        self, components: list[PredicateSet]
    ) -> EstimationResult:
        selectivity = 1.0
        error = 0.0
        coverage = 0.0
        decomposition = Decomposition(())
        matches: tuple[FactorMatch, ...] = ()
        for component in components:
            partial = self._solve(component)
            selectivity *= partial.selectivity
            error = merge(error, partial.error)
            coverage += partial.coverage
            decomposition = decomposition.merged(partial.decomposition)
            matches = matches + partial.matches
        return EstimationResult(selectivity, error, decomposition, matches, coverage)

    def _solve_non_separable(self, predicates: PredicateSet) -> EstimationResult:
        best_key = (INFINITE_ERROR, 0.0)
        best_match: FactorMatch | None = None
        best_tail: EstimationResult | None = None
        explored = 0
        for p_part in self._atomic_decompositions(predicates):
            q_part = predicates - p_part
            if self.sit_driven_pruning and not self._worth_exploring(
                p_part, q_part
            ):
                self.pruned_decompositions += 1
                continue
            explored += 1
            tail = self._solve(q_part)  # line 11
            if tail.error > best_key[0]:
                continue  # monotonicity: this decomposition cannot win
            match, factor_error = self._best_factor_match(p_part, q_part)  # ln 12
            if match is None:
                continue
            total = merge(factor_error, tail.error)
            coverage = _match_coverage(match) + tail.coverage
            key = (total, -coverage)
            if key < best_key:  # lines 13-15, ties broken by coverage,
                best_key = key  # then by enumeration (size, str-lex) order
                best_match = match
                best_tail = tail
        self.explored_decompositions += explored
        if best_match is None or best_tail is None:
            raise NoApplicableStatisticsError(predicates)
        started = time.perf_counter()
        factor_selectivity = estimate_factor(best_match)  # line 16
        elapsed = time.perf_counter() - started
        self.estimation_seconds += elapsed
        if self.trace is not None:
            self.trace.add_time("histogram_join", elapsed)
        selectivity = factor_selectivity * best_tail.selectivity  # line 17
        decomposition = best_tail.decomposition.extended(best_match.factor)
        matches = (best_match, *best_tail.matches)
        return EstimationResult(
            selectivity, best_key[0], decomposition, matches, -best_key[1]
        )

    # ------------------------------------------------------------------
    def _atomic_decompositions(
        self, predicates: PredicateSet
    ) -> Iterator[PredicateSet]:
        """Line 10: every non-empty ``P' ⊆ P`` in a deterministic order.

        ``P' = P`` (with ``Q`` empty) is included — it is the decomposition
        a traditional optimizer implicitly uses.
        """
        items = sorted(predicates, key=str)
        for size in range(1, len(items) + 1):
            for combo in combinations(items, size):
                yield frozenset(combo)

    def _best_factor_match(
        self, p_part: PredicateSet, q_part: PredicateSet
    ) -> tuple[FactorMatch | None, float]:
        key = (p_part, q_part)
        # One logical view-matching invocation (Figure 6 metric), counted
        # exactly once whether or not the result is cached.
        self.matcher.count_invocation()
        cached = self._match_cache.get(key)
        if cached is not None:
            self.match_cache_hits += 1
            return cached
        self.match_cache_misses += 1
        result = self._compute_factor_match(p_part, q_part)
        self._match_cache[key] = result
        return result

    def _worth_exploring(self, p_part: PredicateSet, q_part: PredicateSet) -> bool:
        """Section 3.4's pruning: keep ``Q = {}`` (the fallback every query
        needs) and decompositions where some attribute of ``P'`` has a
        non-base SIT whose expression is contained in ``Q``."""
        if not q_part:
            return True
        attributes = set()
        for predicate in p_part:
            attributes.update(predicate.attributes)
        for attribute in attributes:
            for expression in self.pool.find_expressions(attribute):
                if expression <= q_part:
                    return True
        return False


class NoApplicableStatisticsError(RuntimeError):
    """Raised when no SIT (not even a base histogram) covers an attribute."""

    def __init__(self, predicates: PredicateSet):
        names = ", ".join(sorted(str(p) for p in predicates))
        super().__init__(
            f"no applicable statistics to approximate Sel({names}); "
            "ensure the pool contains base histograms for every attribute"
        )
        self.predicates = predicates


def query_cardinality(
    result: EstimationResult, table_sizes: dict[str, int], tables: frozenset[str]
) -> float:
    """Scale a selectivity back to a cardinality: ``Sel * |R1 x ... x Rn|``."""
    size = 1.0
    for table in tables:
        size *= table_sizes[table]
    return result.selectivity * size
