"""Interned bitmask representation of a query's predicates.

The ``getSelectivity`` DP (Figure 3) spends its time manipulating *sets of
predicates*: memo lookups, submask enumeration, separability tests,
Section 3.4 pruning and factor-match cache keys.  The seed implementation
used Python ``frozenset`` objects for all of these, which makes every DP
node pay hashing, allocation and string-sorting costs that dwarf the
actual algorithm.  :class:`PredicateUniverse` interns the predicates of a
query into consecutive bit indices so the whole hot path runs on plain
``int`` masks:

* ``intern`` maps a predicate set to a mask (growing the universe on first
  sight of a predicate; existing masks stay valid forever);
* ``set_of`` converts a mask back to the canonical ``frozenset`` — only
  needed at the public API boundary and on factor-match cache misses;
* ``components`` computes table-connected components with a bitwise BFS
  over a precomputed bit-adjacency table (replacing per-call union-find);
* ``prune_masks`` precomputes, per predicate, the SIT-expression masks
  that Section 3.4's pruning tests with a single ``expr & ~q == 0``;
* ``tie_break`` linearizes the legacy deterministic enumeration order
  (subset size, then lexicographic over ``str``-sorted predicates) so the
  DP can break exact ties identically to the reference implementation no
  matter in which order submasks are visited.

Predicates are interned in ``str``-sorted batches and the global ``str``
rank of every bit is re-derived on growth, so the tie-break order is the
*global* string order of the predicates — exactly the order the legacy
implementation sorts by at every DP node.  This is the "sort once per
query, not once per DP node" hoist.
"""

from __future__ import annotations

from typing import Iterable, Iterator

from repro.core.predicates import Predicate, PredicateSet
from repro.stats.pool import SITPool


def iter_submasks(mask: int) -> Iterator[int]:
    """All non-empty submasks of ``mask``, largest (``mask`` itself) first.

    The classic ``sub = (sub - 1) & mask`` enumeration: visits each of the
    ``2^popcount(mask) - 1`` non-empty submasks exactly once, in
    decreasing numeric order, with O(1) work per step.
    """
    sub = mask
    while sub:
        yield sub
        sub = (sub - 1) & mask


def iter_bits(mask: int) -> Iterator[int]:
    """Indices of the set bits of ``mask``, ascending."""
    while mask:
        low = mask & -mask
        yield low.bit_length() - 1
        mask ^= low


class PredicateUniverse:
    """Bidirectional predicate <-> bit-index interning for one query.

    A universe is tied to one :class:`SITPool` (which may be ``None`` for
    pool-independent uses, e.g. tests); it persists across the DP's
    ``reset()`` because factor-match cache keys reference its bit layout.
    """

    __slots__ = (
        "pool",
        "_predicates",
        "_bit_of",
        "_table_masks",
        "_adjacency",
        "_str_rank",
        "_rev_bit",
        "_set_cache",
        "_components_cache",
        "_prune_masks",
        "_prune_pool_version",
    )

    def __init__(self, pool: SITPool | None = None):
        self.pool = pool
        self._predicates: list[Predicate] = []
        self._bit_of: dict[Predicate, int] = {}
        self._table_masks: dict[str, int] = {}
        #: per-bit mask of predicates sharing a table (includes the bit)
        self._adjacency: list[int] = []
        #: per-bit global rank under str ordering
        self._str_rank: list[int] = []
        #: per-bit value for the reversed-significance tie-break encoding
        self._rev_bit: list[int] = []
        self._set_cache: dict[int, PredicateSet] = {}
        self._components_cache: dict[int, list[int]] = {}
        self._prune_masks: list[tuple[int, ...]] | None = None
        self._prune_pool_version = -1

    # ------------------------------------------------------------------
    @property
    def size(self) -> int:
        return len(self._predicates)

    def predicate(self, bit: int) -> Predicate:
        return self._predicates[bit]

    def bit(self, predicate: Predicate) -> int:
        return self._bit_of[predicate]

    def __contains__(self, predicate: Predicate) -> bool:
        return predicate in self._bit_of

    # ------------------------------------------------------------------
    def intern(self, predicates: Iterable[Predicate]) -> int:
        """The mask of ``predicates``, extending the universe as needed.

        New predicates are appended in ``str``-sorted order (within the
        batch), which makes bit order == global str order for the common
        case of a whole query interned in one call.
        """
        mask = 0
        missing: list[Predicate] = []
        bit_of = self._bit_of
        for predicate in predicates:
            bit = bit_of.get(predicate)
            if bit is None:
                missing.append(predicate)
            else:
                mask |= 1 << bit
        if missing:
            for predicate in sorted(set(missing), key=str):
                bit = len(self._predicates)
                bit_of[predicate] = bit
                self._predicates.append(predicate)
                mask |= 1 << bit
            self._rebuild()
        return mask

    def mask_of(self, predicates: Iterable[Predicate]) -> int:
        """Alias of :meth:`intern` (interning is idempotent)."""
        return self.intern(predicates)

    def set_of(self, mask: int) -> PredicateSet:
        """The canonical ``frozenset`` of a mask (cached per mask)."""
        cached = self._set_cache.get(mask)
        if cached is None:
            predicates = self._predicates
            cached = frozenset(predicates[b] for b in iter_bits(mask))
            self._set_cache[mask] = cached
        return cached

    def sorted_bits(self, mask: int) -> list[int]:
        """Set bits of ``mask`` in global ``str`` order of their predicates."""
        rank = self._str_rank
        return sorted(iter_bits(mask), key=rank.__getitem__)

    # ------------------------------------------------------------------
    def _rebuild(self) -> None:
        """Recompute derived tables after growth (rare; O(n * tables))."""
        predicates = self._predicates
        n = len(predicates)
        table_masks: dict[str, int] = {}
        for bit, predicate in enumerate(predicates):
            for table in predicate.tables:
                table_masks[table] = table_masks.get(table, 0) | (1 << bit)
        self._table_masks = table_masks
        self._adjacency = [
            self._adjacency_of(predicate) for predicate in predicates
        ]
        order = sorted(range(n), key=lambda i: str(predicates[i]))
        str_rank = [0] * n
        for rank, bit in enumerate(order):
            str_rank[bit] = rank
        self._str_rank = str_rank
        self._rev_bit = [1 << (n - 1 - str_rank[i]) for i in range(n)]
        self._prune_masks = None  # bit layout unchanged, but new bits exist
        # Component results restricted to a mask are unaffected by growth
        # (the BFS intersects adjacency with the mask), but clearing keeps
        # the invariant trivially auditable; growth is rare.
        self._components_cache.clear()

    def _adjacency_of(self, predicate: Predicate) -> int:
        mask = 0
        table_masks = self._table_masks
        for table in predicate.tables:
            mask |= table_masks[table]
        return mask

    # ------------------------------------------------------------------
    def components(self, mask: int) -> list[int]:
        """Table-connected components of ``mask`` as sub-masks.

        Bitwise BFS over the precomputed adjacency table; equivalent to
        :func:`repro.core.predicates.connected_components` (two predicates
        are connected when a chain of predicates with pairwise overlapping
        table sets links them).  Components are returned sorted by the
        global str rank of their smallest predicate — the same determinism
        contract as the frozenset implementation.
        """
        cached = self._components_cache.get(mask)
        if cached is not None:
            return cached
        adjacency = self._adjacency
        out: list[int] = []
        remaining = mask
        while remaining:
            component = remaining & -remaining
            frontier = component
            while frontier:
                grown = 0
                scan = frontier
                while scan:
                    low = scan & -scan
                    grown |= adjacency[low.bit_length() - 1]
                    scan ^= low
                frontier = grown & mask & ~component
                component |= frontier
            out.append(component)
            remaining &= ~component
        if len(out) > 1:
            rank = self._str_rank
            out.sort(key=lambda m: min(rank[b] for b in iter_bits(m)))
        self._components_cache[mask] = out
        return out

    def is_connected(self, mask: int) -> bool:
        """True when ``mask`` forms a single table-connected component."""
        return len(self.components(mask)) <= 1

    # ------------------------------------------------------------------
    def tie_break(self, mask: int) -> tuple[int, int]:
        """Sort key replicating the legacy subset enumeration order.

        The legacy DP enumerated ``P'`` candidates by (size, lexicographic
        over the str-sorted predicate list) and kept the *first* optimum.
        For masks of equal popcount, lexicographic order over ascending
        str-rank tuples equals *descending* order of the mask re-encoded
        with reversed bit significance; so ``(popcount, -reversed)`` is an
        ascending key whose minimum is the legacy winner.
        """
        rev_bit = self._rev_bit
        count = 0
        reverse = 0
        scan = mask
        while scan:
            low = scan & -scan
            reverse += rev_bit[low.bit_length() - 1]
            count += 1
            scan ^= low
        return (count, -reverse)

    # ------------------------------------------------------------------
    def prune_masks(self, bit: int) -> tuple[int, ...]:
        """SIT-expression masks relevant to Section 3.4 pruning of ``bit``.

        For predicate ``p`` at ``bit``: the masks of every distinct
        non-empty SIT expression on any attribute of ``p`` whose predicates
        are all interned (expressions mentioning foreign predicates can
        never be contained in a ``Q`` drawn from this universe).
        """
        self._ensure_prune_masks()
        assert self._prune_masks is not None
        return self._prune_masks[bit]

    def _ensure_prune_masks(self) -> None:
        pool = self.pool
        pool_version = pool.version if pool is not None else 0
        if (
            self._prune_masks is not None
            and self._prune_pool_version == pool_version
            and len(self._prune_masks) == len(self._predicates)
        ):
            return
        masks: list[tuple[int, ...]] = []
        for predicate in self._predicates:
            entry: set[int] = set()
            if pool is not None:
                for attribute in predicate.attributes:
                    for expression in pool.find_expressions(attribute):
                        mask = self._expression_mask(expression)
                        if mask:
                            entry.add(mask)
            masks.append(tuple(sorted(entry)))
        self._prune_masks = masks
        self._prune_pool_version = pool_version

    def _expression_mask(self, expression: PredicateSet) -> int:
        """Mask of ``expression``, or 0 when not fully interned."""
        mask = 0
        bit_of = self._bit_of
        for predicate in expression:
            bit = bit_of.get(predicate)
            if bit is None:
                return 0
            mask |= 1 << bit
        return mask
