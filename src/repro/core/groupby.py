"""Group-By cardinality estimation on top of SITs.

The paper handles optional Group-By clauses by reference to [3] (Bruno's
thesis); this module provides the natural instantiation within our
framework: the number of groups of ``GROUP BY a`` over ``sigma_P(R^x)``
is the number of distinct values of ``a`` in the result, estimated from

1. the *best-conditioned* SIT available for ``a`` given ``P`` (the same
   maximality rule as Section 3.3), which models how the query expression
   reshapes ``a``'s distribution;
2. a filter-on-``a`` restriction of the distinct count, when ``P`` filters
   the grouping attribute itself; and
3. Cardenas' correction ``D * (1 - (1 - 1/D)^n)`` for the estimated
   result size ``n`` — small results cannot exhibit all D values.
"""

from __future__ import annotations

import math

from repro.estimators import SITEstimator
from repro.core.predicates import Attribute, FilterPredicate
from repro.engine.expressions import Query
from repro.stats.sit import SIT


def cardenas(distinct: float, rows: float) -> float:
    """Expected number of distinct values hit by ``rows`` uniform draws
    from a domain of ``distinct`` values (Cardenas' formula)."""
    if distinct <= 0.0 or rows <= 0.0:
        return 0.0
    if distinct == 1.0:
        return 1.0
    return distinct * (1.0 - (1.0 - 1.0 / distinct) ** rows)


def estimate_group_count(
    estimator: SITEstimator, query: Query, attribute: Attribute
) -> float:
    """Estimated number of groups for ``GROUP BY attribute`` over ``query``."""
    if attribute.table not in query.tables:
        raise ValueError(
            f"grouping attribute {attribute} is not produced by the query"
        )
    rows = estimator.cardinality(query)
    sit = _best_sit(estimator, query, attribute)
    if sit is None:
        # No statistics at all: every row could be its own group.
        return rows
    low, high = _attribute_bounds(query, attribute)
    distinct = sit.histogram.estimate_range_distinct(low, high)
    return min(cardenas(distinct, rows), rows)


def _best_sit(
    estimator: SITEstimator, query: Query, attribute: Attribute
) -> SIT | None:
    candidates = estimator.algorithm.matcher.maximal_candidates(
        attribute, query.predicates
    )
    if not candidates:
        return None
    # Largest conditioning first, then the most distribution-changing SIT
    # (same spirit as the Diff ranking).
    return min(
        candidates,
        key=lambda sit: (
            len(query.predicates - sit.expression),
            -sit.diff,
            str(sit),
        ),
    )


def _attribute_bounds(query: Query, attribute: Attribute) -> tuple[float, float]:
    low, high = -math.inf, math.inf
    for predicate in query.filters:
        if (
            isinstance(predicate, FilterPredicate)
            and predicate.attribute == attribute
        ):
            low = max(low, predicate.low)
            high = min(high, predicate.high)
    return low, high
