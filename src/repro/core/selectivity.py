"""Conditional selectivity expressions and decompositions.

A :class:`Factor` is one term ``Sel_R(P|Q)`` of a decomposition
(Definition 1); a :class:`Decomposition` is a product of factors obtained
by repeatedly applying atomic (Property 1) and separable (Property 2)
decompositions.  These objects are *symbolic* — evaluating them against a
set of SITs is the job of :mod:`repro.core.matching` and
:mod:`repro.core.get_selectivity`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.predicates import PredicateSet, tables_of


@dataclass(frozen=True)
class Factor:
    """One conditional selectivity term ``Sel_R(P|Q)``.

    ``tables`` defaults to ``tables(P | Q)``; it may include extra tables
    (they cancel in the selectivity ratio, Definition 1).
    """

    p: PredicateSet
    q: PredicateSet
    tables: frozenset[str] = field(default=frozenset())

    def __post_init__(self) -> None:
        p = frozenset(self.p)
        q = frozenset(self.q)
        if p & q:
            raise ValueError("P and Q of a factor must be disjoint")
        if not p:
            raise ValueError("a factor needs at least one predicate in P")
        object.__setattr__(self, "p", p)
        object.__setattr__(self, "q", q)
        tables = frozenset(self.tables) | tables_of(p | q)
        object.__setattr__(self, "tables", tables)

    @property
    def conditioned(self) -> bool:
        return bool(self.q)

    @property
    def predicates(self) -> PredicateSet:
        return self.p | self.q

    def __str__(self) -> str:
        p_text = ", ".join(sorted(str(x) for x in self.p))
        if not self.q:
            return f"Sel({p_text})"
        q_text = ", ".join(sorted(str(x) for x in self.q))
        return f"Sel({p_text} | {q_text})"


@dataclass(frozen=True)
class Decomposition:
    """A product of conditional selectivity factors for some ``Sel_R(P)``."""

    factors: tuple[Factor, ...]

    @property
    def predicates(self) -> PredicateSet:
        out: set = set()
        for factor in self.factors:
            out |= factor.p
        return frozenset(out)

    def extended(self, factor: Factor) -> "Decomposition":
        return Decomposition((factor, *self.factors))

    def merged(self, other: "Decomposition") -> "Decomposition":
        return Decomposition(self.factors + other.factors)

    def __len__(self) -> int:
        return len(self.factors)

    def __str__(self) -> str:
        return " * ".join(str(f) for f in self.factors) if self.factors else "1"


EMPTY_DECOMPOSITION = Decomposition(())
