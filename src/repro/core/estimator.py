"""High-level cardinality estimation facade.

:class:`CardinalityEstimator` wires a database catalog, a SIT pool and an
error function into the ``getSelectivity`` DP, exposing the operations an
optimizer (or an experiment harness) needs: selectivity and cardinality of
a query and of all its sub-queries.

Factory helpers build the estimator variants the paper evaluates:
``noSit`` (base statistics only, the traditional optimizer), ``GS-nInd``,
``GS-Diff`` and ``GS-Opt``.
"""

from __future__ import annotations

from repro.core.errors import DiffError, ErrorFunction, NIndError, OptError
from repro.core.get_selectivity import EstimationResult, GetSelectivity
from repro.core.predicates import PredicateSet
from repro.engine.database import Database
from repro.engine.executor import Executor
from repro.engine.expressions import Query
from repro.stats.pool import SITPool


class CardinalityEstimator:
    """Estimates selectivities/cardinalities of SPJ queries using SITs."""

    def __init__(
        self,
        database: Database,
        pool: SITPool,
        error_function: ErrorFunction | None = None,
        sit_driven_pruning: bool = False,
        name: str | None = None,
        legacy: bool = False,
    ):
        self.database = database
        self.pool = pool
        self.error_function = (
            error_function if error_function is not None else DiffError(pool)
        )
        self.algorithm = GetSelectivity(
            pool,
            self.error_function,
            sit_driven_pruning=sit_driven_pruning,
            legacy=legacy,
        )
        self.name = name if name is not None else f"GS-{self.error_function.name}"

    # ------------------------------------------------------------------
    def estimate(self, query: Query) -> EstimationResult:
        """Full ``getSelectivity`` result (selectivity, error, decomposition)."""
        return self.algorithm(query.predicates)

    def selectivity(self, query: Query) -> float:
        """Most accurate ``Sel_R(P)`` for the query's predicate set."""
        return self.estimate(query).selectivity

    def cardinality(self, query: Query) -> float:
        """Estimated output cardinality: ``Sel_R(P) * |R^x|``."""
        return self.selectivity(query) * self.database.cross_product_size(query.tables)

    def cardinality_sql(self, sql: str) -> float:
        """Estimate the output cardinality of a SQL SELECT statement.

        Accepts the conjunctive SPJ subset of :mod:`repro.sql` and binds
        it against this estimator's database schema.
        """
        from repro.sql import parse_query

        return self.cardinality(parse_query(sql, self.database.schema))

    def subquery_selectivity(self, query: Query, predicates: PredicateSet) -> float:
        """Selectivity of one sub-query; free after :meth:`estimate` thanks
        to the DP's memo table."""
        return self.algorithm(frozenset(predicates)).selectivity

    def subquery_cardinality(self, query: Query, predicates: PredicateSet) -> float:
        predicates = frozenset(predicates)
        sub = query.subquery(predicates)
        return self.subquery_selectivity(query, predicates) * (
            self.database.cross_product_size(sub.tables)
        )

    # ------------------------------------------------------------------
    @property
    def view_matching_calls(self) -> int:
        return self.algorithm.matcher.calls

    @property
    def analysis_seconds(self) -> float:
        return self.algorithm.analysis_seconds

    @property
    def estimation_seconds(self) -> float:
        return self.algorithm.estimation_seconds

    def stats(self) -> dict[str, float]:
        """The DP's observability snapshot (see ``GetSelectivity.stats``)."""
        return self.algorithm.stats()

    def reset(self) -> None:
        """Clear memoization and counters (e.g. between workload queries
        when measuring per-query costs)."""
        self.algorithm.reset()


# ----------------------------------------------------------------------
# The paper's estimator variants
# ----------------------------------------------------------------------
def make_gs_nind(database: Database, pool: SITPool, **kwargs) -> CardinalityEstimator:
    """GS-nInd: getSelectivity counting independence assumptions."""
    return CardinalityEstimator(database, pool, NIndError(), name="GS-nInd", **kwargs)


def make_gs_diff(database: Database, pool: SITPool, **kwargs) -> CardinalityEstimator:
    """GS-Diff: getSelectivity with the distribution-aware error function."""
    return CardinalityEstimator(
        database, pool, DiffError(pool), name="GS-Diff", **kwargs
    )


def make_gs_opt(
    database: Database, pool: SITPool, executor: Executor | None = None, **kwargs
) -> CardinalityEstimator:
    """GS-Opt: the theoretical optimum (true per-factor errors)."""
    executor = executor if executor is not None else Executor(database)
    return CardinalityEstimator(
        database, pool, OptError(executor), name="GS-Opt", **kwargs
    )


def make_nosit(database: Database, pool: SITPool, **kwargs) -> CardinalityEstimator:
    """noSit: the traditional optimizer — base-table histograms only."""
    return CardinalityEstimator(
        database, pool.base_only(), NIndError(), name="noSit", **kwargs
    )
