"""High-level cardinality estimation facade.

:class:`CardinalityEstimator` wires a database catalog, a statistics
source and an error function into the ``getSelectivity`` DP, exposing the
operations an optimizer (or an experiment harness) needs: selectivity and
cardinality of a query and of all its sub-queries.

The statistics source may be a bare :class:`~repro.stats.pool.SITPool`, a
:class:`~repro.catalog.StatisticsCatalog` (the estimator pins the
catalog's current snapshot at construction — refreshes never mutate a
running estimator's statistics) or a
:class:`~repro.catalog.CatalogSnapshot` directly.

Factory helpers build the estimator variants the paper evaluates:
``noSit`` (base statistics only, the traditional optimizer), ``GS-nInd``,
``GS-Diff`` and ``GS-Opt``.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.core.errors import DiffError, ErrorFunction, NIndError, OptError
from repro.core.get_selectivity import EstimationResult, GetSelectivity
from repro.core.predicates import PredicateSet
from repro.engine.database import Database
from repro.engine.executor import Executor
from repro.engine.expressions import Query
from repro.obs.snapshot import StatsSnapshot
from repro.obs.trace import Trace
from repro.stats.pool import SITPool

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.catalog.catalog import CatalogSnapshot
    from repro.obs.explain import ExplainResult

#: the statistics argument estimators accept (duck-typed to avoid a
#: core -> catalog import cycle)
Statistics = "SITPool | StatisticsCatalog | CatalogSnapshot"


def resolve_statistics(statistics) -> "tuple[SITPool, CatalogSnapshot | None]":
    """Resolve any statistics source into ``(pool, snapshot)``.

    A :class:`~repro.catalog.StatisticsCatalog` is pinned to its current
    snapshot; a :class:`~repro.catalog.CatalogSnapshot` is used as-is; a
    bare :class:`~repro.stats.pool.SITPool` carries no snapshot.  Duck
    typing (``refresh`` marks a catalog, ``pool`` marks a snapshot)
    keeps :mod:`repro.core` importable without :mod:`repro.catalog`.
    """
    if isinstance(statistics, SITPool):
        return statistics, None
    if hasattr(statistics, "refresh") and hasattr(statistics, "snapshot"):
        snapshot = statistics.snapshot()
        return snapshot.pool, snapshot
    if hasattr(statistics, "pool") and isinstance(
        getattr(statistics, "pool"), SITPool
    ):
        return statistics.pool, statistics
    raise TypeError(
        "statistics must be a SITPool, StatisticsCatalog or "
        f"CatalogSnapshot, got {type(statistics).__name__}"
    )


class CardinalityEstimator:
    """Estimates selectivities/cardinalities of SPJ queries using SITs."""

    def __init__(
        self,
        database: Database,
        statistics,
        error_function: ErrorFunction | None = None,
        sit_driven_pruning: bool = False,
        name: str | None = None,
        engine: str = "bitmask",
    ):
        pool, snapshot = resolve_statistics(statistics)
        self.database = database
        self.pool = pool
        #: the pinned :class:`~repro.catalog.CatalogSnapshot`, or ``None``
        #: when built from a bare pool
        self.snapshot = snapshot
        self.error_function = (
            error_function if error_function is not None else DiffError(pool)
        )
        self.algorithm = GetSelectivity.create(
            pool,
            self.error_function,
            engine=engine,
            sit_driven_pruning=sit_driven_pruning,
        )
        self.name = name if name is not None else f"GS-{self.error_function.name}"

    # ------------------------------------------------------------------
    def estimate(self, query: Query) -> EstimationResult:
        """Full ``getSelectivity`` result (selectivity, error, decomposition)."""
        return self.algorithm(query.predicates)

    def selectivity(self, query: Query) -> float:
        """Most accurate ``Sel_R(P)`` for the query's predicate set."""
        return self.estimate(query).selectivity

    def cardinality(self, query: Query) -> float:
        """Estimated output cardinality: ``Sel_R(P) * |R^x|``."""
        return self.selectivity(query) * self.database.cross_product_size(query.tables)

    def cardinality_sql(self, sql: str) -> float:
        """Estimate the output cardinality of a SQL SELECT statement.

        Accepts the conjunctive SPJ subset of :mod:`repro.sql` and binds
        it against this estimator's database schema.
        """
        return self.cardinality(self.parse_sql(sql))

    def parse_sql(self, sql: str) -> Query:
        """Parse + bind SQL against this estimator's schema (traced as the
        ``parse_bind`` stage when tracing is enabled)."""
        from repro.sql import parse_query

        trace = self.trace
        if trace is not None:
            with trace.span("parse_bind"):
                return parse_query(sql, self.database.schema)
        return parse_query(sql, self.database.schema)

    def explain(self, query: Query | str) -> "ExplainResult":
        """``EXPLAIN ESTIMATE``: the winning decomposition, factor by factor.

        Accepts a bound :class:`Query` or SQL text.  Reuses the DP's memo,
        so ``explain(q).selectivity == estimate(q).selectivity`` exactly.
        """
        from repro.obs.explain import build_explain

        if isinstance(query, str):
            query = self.parse_sql(query)
        return build_explain(self, query)

    def subquery_selectivity(self, query: Query, predicates: PredicateSet) -> float:
        """Selectivity of one sub-query; free after :meth:`estimate` thanks
        to the DP's memo table."""
        return self.algorithm(frozenset(predicates)).selectivity

    def subquery_cardinality(self, query: Query, predicates: PredicateSet) -> float:
        predicates = frozenset(predicates)
        sub = query.subquery(predicates)
        return self.subquery_selectivity(query, predicates) * (
            self.database.cross_product_size(sub.tables)
        )

    # ------------------------------------------------------------------
    @property
    def engine(self) -> str:
        """The DP engine in use (``"bitmask"`` or ``"legacy"``)."""
        return self.algorithm.engine

    @property
    def snapshot_version(self) -> int:
        """The catalog version of the pinned snapshot (0 for bare pools)."""
        return self.snapshot.version if self.snapshot is not None else 0

    @property
    def view_matching_calls(self) -> int:
        return self.algorithm.matcher.calls

    @property
    def analysis_seconds(self) -> float:
        return self.algorithm.analysis_seconds

    @property
    def estimation_seconds(self) -> float:
        return self.algorithm.estimation_seconds

    # -- observability --------------------------------------------------
    @property
    def trace(self) -> Trace | None:
        """The attached trace, or ``None`` when tracing is disabled."""
        return self.algorithm.trace

    def enable_tracing(self, trace: Trace | None = None) -> Trace:
        """Turn on per-stage tracing for this estimator's whole path."""
        return self.algorithm.enable_tracing(trace)

    def disable_tracing(self) -> None:
        self.algorithm.disable_tracing()

    def stats_snapshot(self) -> StatsSnapshot:
        """The unified observability snapshot (``StatsSnapshot`` schema),
        tagged with this estimator's identity (and pinned snapshot
        version, when serving from a catalog)."""
        snapshot = self.algorithm.stats_snapshot()
        meta = dict(snapshot.meta)
        meta.update(
            {"estimator": self.name, "error_function": self.error_function.name}
        )
        catalog = dict(snapshot.catalog)
        if self.snapshot is not None:
            meta["snapshot_version"] = self.snapshot_version
            catalog["snapshot_version"] = float(self.snapshot_version)
        return StatsSnapshot(
            timings=snapshot.timings,
            counters=snapshot.counters,
            caches=snapshot.caches,
            catalog=catalog,
            service=snapshot.service,
            meta=meta,
        )

    def reset(self) -> None:
        """Clear memoization and counters (e.g. between workload queries
        when measuring per-query costs)."""
        self.algorithm.reset()


# ----------------------------------------------------------------------
# The paper's estimator variants
# ----------------------------------------------------------------------
def make_gs_nind(database: Database, statistics, **kwargs) -> CardinalityEstimator:
    """GS-nInd: getSelectivity counting independence assumptions."""
    return CardinalityEstimator(
        database, statistics, NIndError(), name="GS-nInd", **kwargs
    )


def make_gs_diff(database: Database, statistics, **kwargs) -> CardinalityEstimator:
    """GS-Diff: getSelectivity with the distribution-aware error function."""
    pool, _ = resolve_statistics(statistics)
    return CardinalityEstimator(
        database, statistics, DiffError(pool), name="GS-Diff", **kwargs
    )


def make_gs_opt(
    database: Database, statistics, executor: Executor | None = None, **kwargs
) -> CardinalityEstimator:
    """GS-Opt: the theoretical optimum (true per-factor errors)."""
    executor = executor if executor is not None else Executor(database)
    return CardinalityEstimator(
        database, statistics, OptError(executor), name="GS-Opt", **kwargs
    )


def make_nosit(database: Database, statistics, **kwargs) -> CardinalityEstimator:
    """noSit: the traditional optimizer — base-table histograms only."""
    pool, _ = resolve_statistics(statistics)
    return CardinalityEstimator(
        database, pool.base_only(), NIndError(), name="noSit", **kwargs
    )
