"""Deprecated home of :class:`CardinalityEstimator` (one-release shim).

The estimator implementations moved to :mod:`repro.estimators`, which
defines the backend-neutral :class:`~repro.estimators.Estimator`
protocol and three peer implementations (SIT/DP, Bayesian network,
guaranteed sampling).  This module keeps the historical import path
``repro.core.estimator`` working for one release:

* :class:`CardinalityEstimator` is the old name of
  :class:`~repro.estimators.sit.SITEstimator`; constructing it emits a
  :class:`DeprecationWarning`.
* ``resolve_statistics`` and the ``make_gs_*``/``make_nosit`` factories
  re-export warning-free (their new home is :mod:`repro.estimators`).

Migrate with ``from repro.estimators import SITEstimator`` (or
``create_estimator("sit", ...)`` to pick a backend by name).
"""

from __future__ import annotations

import warnings

from repro.estimators.base import Statistics, resolve_statistics
from repro.estimators.sit import (
    SITEstimator,
    make_gs_diff,
    make_gs_nind,
    make_gs_opt,
    make_nosit,
)


class CardinalityEstimator(SITEstimator):
    """Deprecated alias of :class:`~repro.estimators.sit.SITEstimator`."""

    def __init__(self, *args, **kwargs):
        warnings.warn(
            "repro.core.estimator.CardinalityEstimator is deprecated; "
            "use repro.estimators.SITEstimator (or "
            "repro.estimators.create_estimator) instead",
            DeprecationWarning,
            stacklevel=2,
        )
        super().__init__(*args, **kwargs)


__all__ = [
    "CardinalityEstimator",
    "Statistics",
    "make_gs_diff",
    "make_gs_nind",
    "make_gs_opt",
    "make_nosit",
    "resolve_statistics",
]
