"""Decomposition-space machinery: standard decomposition, exhaustive
enumeration and the T(n) counting recurrence of Lemma 1.

The exhaustive enumerator is exponential by design — it exists to validate
``getSelectivity`` (Theorem 1 says the DP never misses the most accurate
non-separable decomposition) and to demonstrate Lemma 1's combinatorial
explosion in the search-space benchmark.
"""

from __future__ import annotations

import math
from functools import lru_cache
from itertools import combinations
from typing import Iterator

from repro.core.predicates import PredicateSet, connected_components
from repro.core.selectivity import EMPTY_DECOMPOSITION, Decomposition, Factor


def standard_decomposition(predicates: PredicateSet) -> list[PredicateSet]:
    """Lemma 2: the unique decomposition of ``Sel_R(P)`` into non-separable
    unconditioned factors — one per table-connected component."""
    return connected_components(predicates)


def _proper_subsets(predicates: PredicateSet) -> Iterator[PredicateSet]:
    """Non-empty proper subsets, in a deterministic order."""
    items = sorted(predicates, key=str)
    for size in range(1, len(items)):
        for combo in combinations(items, size):
            yield frozenset(combo)


def simplify_factor(p: PredicateSet, q: PredicateSet) -> list[Factor]:
    """Apply Property 2 (separable decomposition) to ``Sel(P|Q)``.

    Splits the factor along the table-connected components of ``P | Q``
    and drops components with an empty P-part (``Sel({}|Q_i) = 1``).  The
    returned factors are all non-separable; this transformation is exact
    (no assumptions).
    """
    components = connected_components(p | q)
    factors = []
    for component in components:
        p_c = p & component
        if p_c:
            factors.append(Factor(p_c, q & component))
    return factors


def enumerate_decompositions(
    predicates: PredicateSet, simplify_separable: bool = False
) -> Iterator[Decomposition]:
    """All decompositions of ``Sel_R(P)`` via repeated atomic decomposition.

    Following Lemma 1's counting scheme, a decomposition is produced by
    peeling a non-empty ``P'`` off the remaining predicates at each step:
    ``Sel(P) = Sel(P'|P - P') * (decomposition of Sel(P - P'))``, with the
    whole set as the single-factor base case.

    With ``simplify_separable`` every separable factor is replaced by its
    exact separable decomposition (:func:`simplify_factor`), so the yielded
    decompositions consist of non-separable factors only — the search space
    Theorem 1 is stated over.  (Different raw chains may simplify to the
    same decomposition; no deduplication is attempted.)
    """
    predicates = frozenset(predicates)
    if not predicates:
        yield EMPTY_DECOMPOSITION
        return

    def head_factors(p: PredicateSet, q: PredicateSet) -> tuple[Factor, ...]:
        if simplify_separable:
            return tuple(simplify_factor(p, q))
        return (Factor(p, q),)

    yield Decomposition(head_factors(predicates, frozenset()))
    for first in _proper_subsets(predicates):
        rest = predicates - first
        heads = head_factors(first, rest)
        for tail in enumerate_decompositions(rest, simplify_separable):
            yield Decomposition(heads + tail.factors)


def count_decompositions(n: int) -> int:
    """T(n): the number of decompositions of ``Sel_R(p1, ..., pn)``.

    Matches the recurrence in the proof of Lemma 1:
    ``T(1) = 1``; ``T(n) = sum_{i=1..n} C(n, i) * T(n - i)`` with
    ``T(0) = 1`` (the empty product).
    """
    if n < 0:
        raise ValueError("n must be non-negative")

    @lru_cache(maxsize=None)
    def t(k: int) -> int:
        if k <= 1:
            return 1
        return sum(math.comb(k, i) * t(k - i) for i in range(1, k + 1))

    return t(n)


def lemma1_bounds(n: int) -> tuple[float, float]:
    """The Lemma 1 bounds ``(0.5 * (n+1)!, 1.5^n * n!)`` for ``n >= 1``."""
    if n < 1:
        raise ValueError("Lemma 1 is stated for n >= 1")
    return 0.5 * math.factorial(n + 1), 1.5**n * math.factorial(n)
