"""Predicate algebra for canonical SPJ queries.

The paper represents an SPJ query in canonical form as a set of predicates
applied to the cartesian product of the referenced tables (Section 2).  This
module provides the two predicate kinds that canonical form needs:

* :class:`FilterPredicate` -- a (closed) range restriction ``lo <= T.c <= hi``
  on a single attribute.  Point predicates use ``lo == hi``.
* :class:`JoinPredicate` -- an equi-join ``T1.c1 = T2.c2`` between two
  attributes of different tables.

Both are immutable and hashable, so predicate *sets* are plain ``frozenset``
objects everywhere in the code base: memoization tables, SIT expressions and
separability checks all key on them.

The module also provides the graph-structural helpers the framework relies
on: the tables/attributes referenced by a predicate set, the partition of a
predicate set into *connected components* (predicates linked through shared
tables), and therefore the separability test of Definition 2.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Union


@dataclass(frozen=True, order=True)
class Attribute:
    """A fully qualified column reference ``table.column``."""

    table: str
    column: str

    def __post_init__(self) -> None:
        # Attributes key every per-attribute dict in the matching layer;
        # caching the hash removes a measurable share of the cold-path
        # profile (the generated dataclass __hash__ re-hashes the field
        # tuple on every call).
        object.__setattr__(self, "_hash", hash((self.table, self.column)))

    def __hash__(self) -> int:
        return self._hash

    def __str__(self) -> str:
        return f"{self.table}.{self.column}"


@dataclass(frozen=True, order=True)
class FilterPredicate:
    """Range restriction ``low <= attribute <= high`` (closed interval).

    ``low`` may be ``-inf`` and ``high`` may be ``+inf`` for one-sided
    ranges.  Equality predicates are expressed with ``low == high``.
    NULL values (NaN in the engine) never satisfy a filter.
    """

    attribute: Attribute
    low: float
    high: float

    def __post_init__(self) -> None:
        if self.low > self.high:
            raise ValueError(
                f"empty range for {self.attribute}: [{self.low}, {self.high}]"
            )
        # Predicates live in frozensets throughout the library; caching the
        # hash is a measurable win in the getSelectivity inner loop.
        object.__setattr__(
            self, "_hash", hash((self.attribute, self.low, self.high))
        )
        object.__setattr__(self, "_tables", frozenset((self.attribute.table,)))
        object.__setattr__(self, "_attributes", frozenset((self.attribute,)))

    def __hash__(self) -> int:
        return self._hash

    @property
    def tables(self) -> frozenset[str]:
        return self._tables

    @property
    def attributes(self) -> frozenset[Attribute]:
        return self._attributes

    @property
    def is_join(self) -> bool:
        return False

    def __str__(self) -> str:
        cached = self.__dict__.get("_str")
        if cached is None:
            if self.low == self.high:
                cached = f"{self.attribute}={self.low:g}"
            else:
                cached = f"{self.low:g}<={self.attribute}<={self.high:g}"
            object.__setattr__(self, "_str", cached)
        return cached


@dataclass(frozen=True, order=True)
class JoinPredicate:
    """Equi-join predicate ``left = right`` between attributes of two tables.

    The constructor canonicalizes operand order so ``R.x = S.y`` and
    ``S.y = R.x`` compare and hash equal.
    """

    left: Attribute
    right: Attribute

    def __post_init__(self) -> None:
        if self.left.table == self.right.table:
            raise ValueError("self-joins over a single table alias are not supported")
        if self.right < self.left:
            # Swap into canonical (sorted) order; object is frozen so go
            # through object.__setattr__ as dataclasses do internally.
            left, right = self.right, self.left
            object.__setattr__(self, "left", left)
            object.__setattr__(self, "right", right)
        object.__setattr__(self, "_hash", hash((self.left, self.right)))
        object.__setattr__(
            self, "_tables", frozenset((self.left.table, self.right.table))
        )
        object.__setattr__(self, "_attributes", frozenset((self.left, self.right)))

    def __hash__(self) -> int:
        return self._hash

    @property
    def tables(self) -> frozenset[str]:
        return self._tables

    @property
    def attributes(self) -> frozenset[Attribute]:
        return self._attributes

    @property
    def is_join(self) -> bool:
        return True

    def other_side(self, attribute: Attribute) -> Attribute:
        """Return the join operand opposite to ``attribute``."""
        if attribute == self.left:
            return self.right
        if attribute == self.right:
            return self.left
        raise ValueError(f"{attribute} is not an operand of {self}")

    def __str__(self) -> str:
        cached = self.__dict__.get("_str")
        if cached is None:
            cached = f"{self.left}={self.right}"
            object.__setattr__(self, "_str", cached)
        return cached


Predicate = Union[FilterPredicate, JoinPredicate]

#: The canonical representation of a set of predicates.
PredicateSet = frozenset


def predicate_set(predicates: Iterable[Predicate]) -> PredicateSet:
    """Build the canonical ``frozenset`` representation of ``predicates``."""
    return frozenset(predicates)


def tables_of(predicates: Iterable[Predicate]) -> frozenset[str]:
    """``tables(P)`` from the paper: every table referenced by ``P``."""
    out: set[str] = set()
    for predicate in predicates:
        out.update(predicate.tables)
    return frozenset(out)


def attributes_of(predicates: Iterable[Predicate]) -> frozenset[Attribute]:
    """``attr(P)`` from the paper: every attribute mentioned in ``P``."""
    out: set[Attribute] = set()
    for predicate in predicates:
        out.update(predicate.attributes)
    return frozenset(out)


def join_predicates(predicates: Iterable[Predicate]) -> PredicateSet:
    """The join predicates contained in ``predicates``."""
    return frozenset(p for p in predicates if p.is_join)


def filter_predicates(predicates: Iterable[Predicate]) -> PredicateSet:
    """The filter predicates contained in ``predicates``."""
    return frozenset(p for p in predicates if not p.is_join)


def connected_components(predicates: Iterable[Predicate]) -> list[PredicateSet]:
    """Partition ``predicates`` into table-connected components.

    Two predicates belong to the same component when they are linked by a
    chain of predicates with pairwise overlapping table sets.  The result is
    deterministic (sorted by the string form of each component's smallest
    predicate) so callers can rely on a stable standard decomposition.
    """
    preds = list(predicates)
    if not preds:
        return []
    # Union-find over tables; each predicate unions its tables together.
    parent: dict[str, str] = {}

    def find(table: str) -> str:
        root = table
        while parent.setdefault(root, root) != root:
            root = parent[root]
        while parent[table] != root:  # path compression
            parent[table], table = root, parent[table]
        return root

    def union(a: str, b: str) -> None:
        ra, rb = find(a), find(b)
        if ra != rb:
            parent[ra] = rb

    for predicate in preds:
        tables = sorted(predicate.tables)
        for table in tables[1:]:
            union(tables[0], table)

    groups: dict[str, set[Predicate]] = {}
    for predicate in preds:
        root = find(next(iter(predicate.tables)))
        groups.setdefault(root, set()).add(predicate)
    components = [frozenset(group) for group in groups.values()]
    components.sort(key=lambda component: min(str(p) for p in component))
    return components


def is_separable(predicates: Iterable[Predicate]) -> bool:
    """Definition 2 for an unconditioned selectivity: ``Sel_R(P)`` is
    separable when ``P`` splits into two non-empty, table-disjoint parts."""
    return len(connected_components(predicates)) > 1
