"""The paper's primary contribution: conditional selectivity, the
``getSelectivity`` dynamic program, error functions and the GVM baseline."""

from repro.core.decompose import (
    count_decompositions,
    enumerate_decompositions,
    lemma1_bounds,
    standard_decomposition,
)
from repro.core.errors import DiffError, ErrorFunction, NIndError, OptError
from repro.estimators.sit import (
    make_gs_diff,
    make_gs_nind,
    make_gs_opt,
    make_nosit,
)
from repro.core.groupby import cardenas, estimate_group_count
from repro.core.get_selectivity import (
    EstimationResult,
    GetSelectivity,
    NoApplicableStatisticsError,
)
from repro.core.gvm import GreedyViewMatching, GVMEstimate
from repro.core.matching import (
    AttributeMatch,
    FactorMatch,
    ViewMatcher,
    estimate_factor,
)
from repro.core.predicates import (
    Attribute,
    FilterPredicate,
    JoinPredicate,
    Predicate,
    attributes_of,
    connected_components,
    filter_predicates,
    is_separable,
    join_predicates,
    predicate_set,
    tables_of,
)
from repro.core.selectivity import Decomposition, Factor

__all__ = [
    "Attribute",
    "AttributeMatch",
    "Decomposition",
    "DiffError",
    "ErrorFunction",
    "EstimationResult",
    "Factor",
    "FactorMatch",
    "FilterPredicate",
    "GVMEstimate",
    "GetSelectivity",
    "GreedyViewMatching",
    "JoinPredicate",
    "NIndError",
    "NoApplicableStatisticsError",
    "OptError",
    "Predicate",
    "ViewMatcher",
    "attributes_of",
    "cardenas",
    "connected_components",
    "count_decompositions",
    "estimate_group_count",
    "enumerate_decompositions",
    "estimate_factor",
    "filter_predicates",
    "is_separable",
    "join_predicates",
    "lemma1_bounds",
    "make_gs_diff",
    "make_gs_nind",
    "make_gs_opt",
    "make_nosit",
    "predicate_set",
    "standard_decomposition",
    "tables_of",
]
