"""Compiled-plan cache: plan/parameter separation for template workloads.

Production estimation traffic is template-heavy: the same query *shape*
(tables, columns and operator kinds) recurs over and over with different
constants.  The ``getSelectivity`` DP (Figure 3) re-derives the same
winning decomposition and re-runs SIT matching for every instance, yet
for a fixed pool and a plan-stable error function every decision the DP
makes — adjacency and separability, Section 3.3 candidate matching and
maximality, NInd/Diff factor errors, coverage, and the canonical
(size, str-lex) tie-break — depends only on the shape, never on the
filter constants.  This module exploits that invariance:

* :func:`shape_fingerprint` abstracts the constants out of a predicate
  set: each join predicate is its own (constant-free) token, each filter
  collapses to ``("F", attribute)``, and tokens are listed in the
  ``str``-sorted order of the *concrete* predicates.  Pinning the
  positional order makes the fingerprint strong enough that two sets
  with equal fingerprints provably drive the DP through identical
  decisions (the tie-break compares global str ranks, which the
  positional fingerprint fixes).  Instantiations of one SQL template
  whose constants permute the filter sort order land in different
  fingerprints — a deliberate trade of hit rate for bit-identity; the
  variants are bounded and the cache simply warms once per ordering.

* :func:`compile_plan` walks the DP memo after a successful level-0
  estimation and freezes the winning multiplication tree into an
  immutable :class:`CompiledPlan`: per conditional factor, the
  constant-free histogram-join product, the post-join histogram each
  filter attribute reads, and position indices (into the str-sorted
  predicate list) for rebuilding ``Factor`` / ``AttributeMatch``
  objects with fresh constants.

* :meth:`CompiledPlan.replay` re-estimates a new instantiation by
  replaying only the filter-range lookups over the frozen plan —
  microseconds instead of the full ``O(3^n)`` enumeration — and is
  *bit-identical* to the cold DP because every floating-point operation
  of ``estimate_factor`` and the DP's multiplication tree is replayed
  in the exact same order.  :meth:`CompiledPlan.replay_batch` serves a
  whole group of same-shape requests through the vectorized
  :meth:`~repro.histograms.base.Histogram.estimate_range_selectivity_batch`
  kernel (one stacked numpy op per filter slot), with the same
  guarantee.

* :class:`PlanCache` keys plans by (fingerprint, pinned pool version,
  snapshot version) and rides the catalog's single invalidation path:
  every lookup revalidates the pool's derived-state ``version`` counter
  (bumped by ``notify_table_update`` / membership changes), evicting
  all plans on mismatch.  A hot snapshot swap retires the owning
  session — and its cache — wholesale.

Compile safety gates (all checked before a plan is cached):

1. the error function must declare ``plan_stable = True``
   (:class:`~repro.core.errors.NIndError` and
   :class:`~repro.core.errors.DiffError` do; ``OptError`` executes
   queries with the concrete constants and must not be cached);
2. no SIT expression in the pool may contain a filter predicate
   (filters in expressions would make candidate matching and DiffError's
   ``expression_member`` probes constant-dependent); checked once per
   pool version;
3. only level-0 (non-degraded) results are compiled, and the
   degradation ladder's re-plans bypass the cache entirely;
4. the compiled plan is self-verified once against the result it was
   compiled from (selectivity, matches, decomposition) — a structural
   mismatch silently refuses to cache rather than risking drift.
"""

from __future__ import annotations

import hashlib
import math
from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterable, Sequence

import numpy as np

from repro.core.matching import AttributeMatch, FactorMatch
from repro.core.predicates import Attribute, Predicate, PredicateSet
from repro.core.selectivity import Decomposition, Factor
from repro.histograms.base import Histogram
from repro.histograms.maxdiff import DEFAULT_MAX_BUCKETS
from repro.histograms.operations import join_histograms
from repro.stats.pool import SITPool

if TYPE_CHECKING:  # pragma: no cover - cycle guard
    from repro.core.get_selectivity import EstimationResult, GetSelectivity


# ----------------------------------------------------------------------
# Shape fingerprinting
# ----------------------------------------------------------------------
def shape_fingerprint(
    predicates: Iterable[Predicate],
) -> tuple[tuple, tuple[Predicate, ...]]:
    """The template identity of a predicate set, constants abstracted out.

    Returns ``(fingerprint, ordered)`` where ``ordered`` is the
    predicates in their concrete ``str``-sorted order (the order every
    position index of a compiled plan refers to) and ``fingerprint`` is
    the per-position token tuple: joins keep their full (constant-free)
    identity, filters keep only their attribute.
    """
    ordered = tuple(sorted(predicates, key=str))
    fingerprint = tuple(
        ("J", p.left, p.right) if p.is_join else ("F", p.attribute)
        for p in ordered
    )
    return fingerprint, ordered


def fingerprint_digest(fingerprint: tuple) -> str:
    """A short stable hex digest of a fingerprint (metrics label)."""
    return hashlib.blake2b(
        repr(fingerprint).encode("utf-8"), digest_size=4
    ).hexdigest()


# ----------------------------------------------------------------------
# Compiled-plan data model
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class _FilterSlot:
    """One filter-range lookup of a factor replay.

    ``histogram`` is the histogram ``estimate_factor`` reads for this
    attribute *after* all of the factor's joins ran — either the matched
    SIT's histogram or a join-derived one; both are constant-free.
    ``positions`` index the filter predicates (in the str-ordered
    predicate list) whose ranges are intersected for the lookup.
    """

    attribute: Attribute
    histogram: Histogram
    positions: tuple[int, ...]


@dataclass(frozen=True)
class _AttributeTemplate:
    """Positions-based recipe for rebuilding one ``AttributeMatch``."""

    attribute: Attribute
    weight: float
    sit: object
    conditioning_positions: tuple[int, ...]
    assumed_positions: tuple[int, ...]


@dataclass(frozen=True)
class _FactorTemplate:
    """One conditional factor of the plan, constants separated out.

    ``join_selectivity`` is the left-fold product of the factor's
    histogram-join selectivities (the exact float the cold path
    computes); ``zero`` records an early exit inside the join loop, in
    which case the factor is identically ``0.0`` for every constant
    assignment and ``filter_slots`` is empty.
    """

    p_positions: tuple[int, ...]
    q_positions: tuple[int, ...]
    join_selectivity: float
    zero: bool
    filter_slots: tuple[_FilterSlot, ...]
    attribute_templates: tuple[_AttributeTemplate, ...]


class PlanCompileError(Exception):
    """Internal: the DP memo did not support a faithful compilation."""


@dataclass(frozen=True)
class CompiledPlan:
    """An immutable compiled estimation plan for one shape.

    ``templates`` lists the plan's conditional factors in the order the
    DP's result reports them (head-first along conditional chains,
    component order across separable splits); ``tree`` is the nested
    multiplication tree over template indices —
    ``("c", index, tail_or_None)`` for a conditional node,
    ``("s", (child, ...))`` for a separable split — evaluated in the
    exact association order of the cold DP.  ``error`` and ``coverage``
    are constant-free and stored verbatim.
    """

    fingerprint: tuple
    pool_version: int
    snapshot_version: int
    templates: tuple[_FactorTemplate, ...]
    tree: tuple | None
    error: float
    coverage: float
    weight_bytes: int

    # ------------------------------------------------------------------
    def replay(self, ordered: Sequence[Predicate]) -> "EstimationResult":
        """Re-estimate with new constants; bit-identical to the cold DP."""
        templates = self.templates
        values = [
            _replay_factor_scalar(template, ordered) for template in templates
        ]
        selectivity = _eval_tree(self.tree, values)
        return self._build_result(selectivity, ordered)

    def replay_batch(
        self, ordered_batch: Sequence[Sequence[Predicate]]
    ) -> list["EstimationResult"]:
        """Replay a group of same-shape instantiations as stacked numpy ops.

        Each filter slot of each factor becomes *one* vectorized
        histogram lookup over the whole group
        (:meth:`Histogram.estimate_range_selectivity_batch`); per-element
        results are bit-identical to :meth:`replay`.
        """
        count = len(ordered_batch)
        if count == 0:
            return []
        if count == 1:
            return [self.replay(ordered_batch[0])]
        values = [
            _replay_factor_batch(template, ordered_batch)
            for template in self.templates
        ]
        selectivities = _eval_tree_batch(self.tree, values, count)
        return [
            self._build_result(float(selectivities[i]), ordered_batch[i])
            for i in range(count)
        ]

    # ------------------------------------------------------------------
    def _build_result(
        self, selectivity: float, ordered: Sequence[Predicate]
    ) -> "EstimationResult":
        from repro.core.get_selectivity import EstimationResult

        matches = tuple(
            _rebuild_match(template, ordered) for template in self.templates
        )
        decomposition = Decomposition(tuple(m.factor for m in matches))
        return EstimationResult(
            selectivity,
            self.error,
            decomposition,
            matches,
            self.coverage,
            plan_cache_hit=True,
        )


# ----------------------------------------------------------------------
# Factor replay (scalar and batched)
# ----------------------------------------------------------------------
def _replay_factor_scalar(
    template: _FactorTemplate, ordered: Sequence[Predicate]
) -> float:
    """``estimate_factor`` with the joins pre-multiplied: same float ops,
    same order, new filter constants."""
    if template.zero:
        return 0.0
    selectivity = template.join_selectivity
    for slot in template.filter_slots:
        low = -math.inf
        high = math.inf
        for position in slot.positions:
            predicate = ordered[position]
            if predicate.low > low:
                low = predicate.low
            if predicate.high < high:
                high = predicate.high
        if low > high:
            return 0.0
        selectivity *= slot.histogram.estimate_range_selectivity(low, high)
        if selectivity == 0.0:
            return 0.0
    return selectivity


def _replay_factor_batch(
    template: _FactorTemplate, ordered_batch: Sequence[Sequence[Predicate]]
) -> np.ndarray:
    """Vectorized :func:`_replay_factor_scalar` over a same-shape group.

    Early exits are replaced by multiplications with exact zeros
    (``0.0 * x == 0.0`` for the finite non-negative selectivities the
    histogram algebra produces), so each element equals the scalar path
    bit-for-bit.
    """
    count = len(ordered_batch)
    if template.zero:
        return np.zeros(count)
    selectivity = np.full(count, template.join_selectivity)
    for slot in template.filter_slots:
        lows = np.empty(count)
        highs = np.empty(count)
        for i, ordered in enumerate(ordered_batch):
            low = -math.inf
            high = math.inf
            for position in slot.positions:
                predicate = ordered[position]
                if predicate.low > low:
                    low = predicate.low
                if predicate.high < high:
                    high = predicate.high
            lows[i] = low
            highs[i] = high
        # estimate_range_selectivity_batch returns exactly 0.0 for
        # inverted (low > high) ranges, matching the scalar early exit.
        selectivity = selectivity * slot.histogram.estimate_range_selectivity_batch(
            lows, highs
        )
    return selectivity


def _eval_tree(node: tuple | None, values: list[float]) -> float:
    """The DP's multiplication tree, same association order as `_solve`."""
    if node is None:
        return 1.0
    if node[0] == "c":
        # _solve_non_separable line 17: factor * tail (tail of the empty
        # set is the 1.0 of _EMPTY_RESULT).
        return values[node[1]] * _eval_tree(node[2], values)
    # _solve_separable: left-fold over components in component order.
    selectivity = 1.0
    for child in node[1]:
        selectivity *= _eval_tree(child, values)
    return selectivity


def _eval_tree_batch(
    node: tuple | None, values: list[np.ndarray], count: int
) -> np.ndarray:
    if node is None:
        return np.ones(count)
    if node[0] == "c":
        return values[node[1]] * _eval_tree_batch(node[2], values, count)
    selectivity = np.ones(count)
    for child in node[1]:
        selectivity = selectivity * _eval_tree_batch(child, values, count)
    return selectivity


def _rebuild_match(
    template: _FactorTemplate, ordered: Sequence[Predicate]
) -> FactorMatch:
    p = frozenset(ordered[i] for i in template.p_positions)
    q = frozenset(ordered[i] for i in template.q_positions)
    attribute_matches = tuple(
        AttributeMatch(
            attribute=at.attribute,
            weight=at.weight,
            sit=at.sit,
            conditioning=frozenset(
                ordered[i] for i in at.conditioning_positions
            ),
            assumed=frozenset(ordered[i] for i in at.assumed_positions),
        )
        for at in template.attribute_templates
    )
    return FactorMatch(Factor(p, q), attribute_matches)


# ----------------------------------------------------------------------
# Compilation: memo walk -> CompiledPlan
# ----------------------------------------------------------------------
def _compile_factor(
    match: FactorMatch, position_of: dict[Predicate, int]
) -> _FactorTemplate:
    factor = match.factor
    attribute_templates = tuple(
        _AttributeTemplate(
            attribute=am.attribute,
            weight=am.weight,
            sit=am.sit,
            conditioning_positions=tuple(
                sorted(position_of[p] for p in am.conditioning)
            ),
            assumed_positions=tuple(
                sorted(position_of[p] for p in am.assumed)
            ),
        )
        for am in match.attribute_matches
    )
    # Replay estimate_factor's join loop once to freeze the constant-free
    # join product and the post-join histogram each filter attribute
    # reads (Example 3's derived-histogram chaining).
    histograms = {
        am.attribute: am.sit.histogram for am in match.attribute_matches
    }
    selectivity = 1.0
    zero = False
    joins = sorted((p for p in factor.p if p.is_join), key=str)
    for join in joins:
        joined = join_histograms(
            histograms[join.left],
            histograms[join.right],
            max_buckets=DEFAULT_MAX_BUCKETS,
        )
        selectivity *= joined.selectivity
        histograms[join.left] = joined.histogram
        histograms[join.right] = joined.histogram
        if selectivity == 0.0:
            zero = True
            break
    filter_slots: tuple[_FilterSlot, ...] = ()
    if not zero:
        positions_by_attribute: dict[Attribute, list[int]] = {}
        for predicate in factor.p:
            if not predicate.is_join:
                positions_by_attribute.setdefault(
                    predicate.attribute, []
                ).append(position_of[predicate])
        filter_slots = tuple(
            _FilterSlot(
                attribute=attribute,
                histogram=histograms[attribute],
                positions=tuple(sorted(positions_by_attribute[attribute])),
            )
            for attribute in sorted(positions_by_attribute)
        )
    return _FactorTemplate(
        p_positions=tuple(sorted(position_of[p] for p in factor.p)),
        q_positions=tuple(sorted(position_of[p] for p in factor.q)),
        join_selectivity=selectivity,
        zero=zero,
        filter_slots=filter_slots,
        attribute_templates=attribute_templates,
    )


def _plan_weight(templates: tuple[_FactorTemplate, ...]) -> int:
    """A documented *estimate* of a plan's resident bytes: fixed overhead
    per template plus the bucket arrays of join-derived histograms the
    plan keeps alive (SIT histograms are shared with the pool and not
    charged)."""
    weight = 512
    for template in templates:
        weight += 256
        weight += 64 * len(template.attribute_templates)
        shared = {
            id(at.sit.histogram) for at in template.attribute_templates
        }
        for slot in template.filter_slots:
            weight += 64
            if id(slot.histogram) not in shared:
                weight += 40 * slot.histogram.bucket_count
    return weight


def compile_plan(
    algorithm: "GetSelectivity",
    predicates: PredicateSet,
    result: "EstimationResult",
    *,
    pool_version: int,
    snapshot_version: int,
) -> CompiledPlan | None:
    """Freeze a level-0 DP result into a :class:`CompiledPlan`.

    Walks the DP memo to recover the exact multiplication tree the
    result's selectivity was computed through, compiles each conditional
    factor, then self-verifies the plan by replaying it against the very
    predicates it was compiled from — any mismatch returns ``None`` (no
    caching) instead of an unsound plan.
    """
    if result.degradation_level != 0 or getattr(algorithm, "engine", "") != "bitmask":
        return None
    fingerprint, ordered = shape_fingerprint(predicates)
    position_of = {p: i for i, p in enumerate(ordered)}
    universe = algorithm.universe
    memo = algorithm._memo
    templates: list[_FactorTemplate] = []

    def build(mask: int) -> tuple | None:
        if not mask:
            return None
        node_result = memo.get(mask)
        if node_result is None:
            raise PlanCompileError("memo entry missing")
        components = universe.components(mask)
        if len(components) > 1:
            return ("s", tuple(build(component) for component in components))
        if not node_result.matches:
            raise PlanCompileError("non-separable node without a match")
        head = node_result.matches[0]
        p_mask = universe.intern(head.factor.p)
        if p_mask & mask != p_mask:
            raise PlanCompileError("head factor escapes its mask")
        index = len(templates)
        templates.append(_compile_factor(head, position_of))
        return ("c", index, build(mask ^ p_mask))

    try:
        mask = universe.intern(predicates)
        tree = build(mask)
    except (PlanCompileError, KeyError):
        return None
    plan = CompiledPlan(
        fingerprint=fingerprint,
        pool_version=pool_version,
        snapshot_version=snapshot_version,
        templates=tuple(templates),
        tree=tree,
        error=result.error,
        coverage=result.coverage,
        weight_bytes=_plan_weight(tuple(templates)),
    )
    # One-time self-verification against the compiling instance: the
    # replay must reproduce the cold result exactly (selectivity to the
    # bit, matches and decomposition structurally).
    replayed = plan.replay(ordered)
    if (
        replayed.selectivity != result.selectivity
        or replayed.error != result.error
        or replayed.coverage != result.coverage
        or replayed.matches != result.matches
        or replayed.decomposition != result.decomposition
    ):
        return None
    return plan


# ----------------------------------------------------------------------
# The cache
# ----------------------------------------------------------------------
class PlanCache:
    """Shape-keyed compiled plans for one (pool, snapshot) pinning.

    Coherence contract: every lookup and compile revalidates the pinned
    pool's derived-state ``version`` counter — the same counter
    ``StatisticsCatalog.notify_table_update`` bumps through
    ``SITPool.invalidate_derived`` — and drops *all* plans on mismatch
    (counted under ``evictions``).  A snapshot hot-swap retires the
    owning session and therefore the whole cache object.
    """

    def __init__(
        self,
        pool: SITPool | None,
        snapshot_version: int = 0,
        max_plans: int = 512,
    ):
        self.pool = pool
        self.snapshot_version = snapshot_version
        self.max_plans = max_plans
        self._pool_version = pool.version if pool is not None else 0
        self._plans: dict[tuple, CompiledPlan] = {}
        #: fingerprint -> [hits, misses]; bounded alongside the plans
        self._shape_stats: dict[tuple, list[int]] = {}
        self._pool_safe: bool | None = None
        self.hits = 0
        self.misses = 0
        self.compiles = 0
        self.evictions = 0

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._plans)

    @property
    def bytes(self) -> int:
        return sum(plan.weight_bytes for plan in self._plans.values())

    # ------------------------------------------------------------------
    def _validate(self) -> None:
        """Evict everything if the pinned pool's version moved (the
        catalog's single invalidation path)."""
        pool = self.pool
        version = pool.version if pool is not None else 0
        if version != self._pool_version:
            dropped = len(self._plans)
            self._plans.clear()
            self._shape_stats.clear()
            self.evictions += dropped
            self._pool_version = version
            self._pool_safe = None

    def _safe_pool(self) -> bool:
        """Compile gate 2: every SIT expression must be join-only, or SIT
        matching itself would depend on the filter constants."""
        if self._pool_safe is None:
            pool = self.pool
            self._pool_safe = pool is not None and all(
                all(p.is_join for p in sit.expression) for sit in pool
            )
        return self._pool_safe

    def _shape_stat(self, fingerprint: tuple) -> list[int]:
        stat = self._shape_stats.get(fingerprint)
        if stat is None:
            stat = [0, 0]
            if len(self._shape_stats) < 4 * self.max_plans:
                self._shape_stats[fingerprint] = stat
        return stat

    # ------------------------------------------------------------------
    def plan_for(
        self, predicates: PredicateSet
    ) -> tuple[CompiledPlan | None, tuple[Predicate, ...]]:
        """Probe the cache; counts one hit or miss.  Returns the plan (or
        ``None``) and the str-ordered predicates replay will consume."""
        self._validate()
        fingerprint, ordered = shape_fingerprint(predicates)
        plan = self._plans.get(fingerprint)
        stat = self._shape_stat(fingerprint)
        if plan is not None:
            self.hits += 1
            stat[0] += 1
            return plan, ordered
        self.misses += 1
        stat[1] += 1
        return None, ordered

    def estimate(self, predicates: PredicateSet) -> "EstimationResult | None":
        """Template-hit fast path: replay, or ``None`` on a shape miss."""
        plan, ordered = self.plan_for(predicates)
        if plan is None:
            return None
        return plan.replay(ordered)

    # ------------------------------------------------------------------
    def compile(
        self,
        predicates: PredicateSet,
        algorithm: "GetSelectivity",
        result: "EstimationResult",
    ) -> CompiledPlan | None:
        """Compile and cache a fresh level-0 result (all gates applied)."""
        self._validate()
        if result.degradation_level != 0:
            return None
        if not getattr(algorithm.error_function, "plan_stable", False):
            return None
        if not self._safe_pool():
            return None
        plan = compile_plan(
            algorithm,
            predicates,
            result,
            pool_version=self._pool_version,
            snapshot_version=self.snapshot_version,
        )
        if plan is None:
            return None
        if len(self._plans) >= self.max_plans:
            drop = max(1, self.max_plans // 4)
            for key in list(self._plans)[:drop]:
                del self._plans[key]
                self._shape_stats.pop(key, None)
            self.evictions += drop
        self._plans[plan.fingerprint] = plan
        self.compiles += 1
        return plan

    # ------------------------------------------------------------------
    def status(self) -> dict:
        """JSON-ready counters (the ``plan_cache`` observability block)."""
        total = self.hits + self.misses
        return {
            "plans": len(self._plans),
            "hits": self.hits,
            "misses": self.misses,
            "compiles": self.compiles,
            "evictions": self.evictions,
            "bytes": self.bytes,
            "hit_rate": (self.hits / total) if total else 0.0,
            "snapshot_version": self.snapshot_version,
            "pool_version": self._pool_version,
        }

    def stats_namespace(self, shape_limit: int = 8) -> dict[str, float]:
        """The ``plan_cache`` :class:`~repro.obs.snapshot.StatsSnapshot`
        namespace: :meth:`status` (all-numeric) plus the busiest per-shape
        hit rates."""
        out = {key: float(value) for key, value in self.status().items()}
        out.update(self.shape_stats(limit=shape_limit))
        return out

    def shape_stats(self, limit: int = 8) -> dict[str, float]:
        """Per-shape hit rates for the busiest shapes, keyed by digest."""
        ranked = sorted(
            self._shape_stats.items(),
            key=lambda item: -(item[1][0] + item[1][1]),
        )[:limit]
        out: dict[str, float] = {}
        for fingerprint, (hits, misses) in ranked:
            total = hits + misses
            digest = fingerprint_digest(fingerprint)
            out[f"shape.{digest}.hits"] = float(hits)
            out[f"shape.{digest}.hit_rate"] = (
                (hits / total) if total else 0.0
            )
        return out


__all__ = [
    "CompiledPlan",
    "PlanCache",
    "compile_plan",
    "fingerprint_digest",
    "shape_fingerprint",
]
