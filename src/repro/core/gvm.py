"""GVM — the greedy view-matching baseline (Bruno & Chaudhuri, SIGMOD 2002).

Reimplemented from the paper's description of [4]: each sub-plan of the
input query is transformed into an equivalent one that exploits SITs,
selecting SITs with a *greedy* procedure that minimizes the number of
independence assumptions.  Two restrictions — both called out by the paper
as the source of GVM's inferior accuracy — are modelled explicitly:

1. **Single-plan applicability.**  All chosen SITs must be usable in *one*
   rewritten plan, so their generating expressions must be pairwise nested
   or table-disjoint.  This is precisely why the two SITs of the paper's
   Figure 1 (``SIT(total_price | lineitem ⋈ orders)`` and
   ``SIT(nation | orders ⋈ customer)``) cannot be combined: they share
   ``orders`` but neither expression contains the other.
2. **No cross-sub-plan reuse.**  GVM runs from scratch for every sub-plan
   the optimizer asks about, re-invoking the view matching routine each
   time (the efficiency gap of the paper's Figure 6).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.matching import (
    AttributeMatch,
    FactorMatch,
    ViewMatcher,
    estimate_factor,
)
from repro.core.predicates import (
    Attribute,
    PredicateSet,
    join_predicates,
    tables_of,
)
from repro.core.selectivity import Factor
from repro.engine.expressions import Query
from repro.stats.pool import SITPool
from repro.stats.sit import SIT


def _compatible(first: SIT, second: SIT) -> bool:
    """Can two SITs be exploited by a single rewritten plan?"""
    if first.expression <= second.expression:
        return True
    if second.expression <= first.expression:
        return True
    first_tables = tables_of(first.expression)
    second_tables = tables_of(second.expression)
    return not (first_tables & second_tables)


@dataclass
class GVMEstimate:
    """Outcome of one GVM run: the selectivity and the SIT assignment."""

    selectivity: float
    assignment: dict[Attribute, SIT]


@dataclass
class GreedyViewMatching:
    """The GVM estimator over a fixed SIT pool."""

    pool: SITPool
    matcher: ViewMatcher = field(default=None)  # type: ignore[assignment]

    def __post_init__(self) -> None:
        if self.matcher is None:
            self.matcher = ViewMatcher(self.pool)

    # ------------------------------------------------------------------
    def estimate(self, query: Query) -> GVMEstimate:
        """Estimate ``Sel(P)`` of ``query`` with greedily selected SITs."""
        predicates = query.predicates
        if not predicates:
            return GVMEstimate(1.0, {})
        assignment = self._greedy_assignment(predicates)
        selectivity = self._estimate_with_assignment(predicates, assignment)
        return GVMEstimate(selectivity, assignment)

    def estimate_selectivity(self, predicates: PredicateSet) -> float:
        """Convenience wrapper over :meth:`estimate` for a predicate set."""
        return self.estimate(Query(frozenset(predicates))).selectivity

    # ------------------------------------------------------------------
    def _greedy_assignment(
        self, predicates: PredicateSet
    ) -> dict[Attribute, SIT]:
        """Greedily pick one SIT per attribute, most-beneficial first.

        The benefit of ``SIT(a|Q')`` is ``|Q'|`` — each covered join is one
        independence assumption removed.  Every round re-invokes view
        matching for each still-unassigned attribute (no memoization),
        keeps only candidates compatible with the SITs chosen so far, and
        commits the single best one.
        """
        joins = join_predicates(predicates)
        pending = set()
        for predicate in predicates:
            pending.update(predicate.attributes)
        # A SIT can only condition an attribute on joins evaluated *below*
        # it in the rewritten plan; the join an attribute itself belongs to
        # is never below it, so it is excluded from the usable context.
        usable_context = {
            attribute: frozenset(
                j for j in joins if attribute not in j.attributes
            )
            for attribute in pending
        }
        assignment: dict[Attribute, SIT] = {}
        while pending:
            best: tuple[int, str] | None = None
            best_pick: tuple[Attribute, SIT] | None = None
            for attribute in sorted(pending):
                candidates = self.matcher.candidates_for_attribute(
                    attribute, usable_context[attribute]
                )
                for sit in candidates:
                    if not all(
                        _compatible(sit, chosen) for chosen in assignment.values()
                    ):
                        continue
                    score = (-len(sit.expression), str(sit))
                    if best is None or score < best:
                        best = score
                        best_pick = (attribute, sit)
            if best_pick is None:
                # No candidate (not even a base histogram) for the
                # remaining attributes: leave them unassigned.
                break
            attribute, sit = best_pick
            assignment[attribute] = sit
            pending.discard(attribute)
        return assignment

    def _estimate_with_assignment(
        self, predicates: PredicateSet, assignment: dict[Attribute, SIT]
    ) -> float:
        """One-shot estimation: the single decomposition GVM's rewritten
        plan induces, with independence assumed at the top."""
        matches = tuple(
            AttributeMatch(
                attribute=attribute,
                weight=1.0,
                sit=sit,
                conditioning=sit.expression,
                assumed=frozenset(),
            )
            for attribute, sit in sorted(assignment.items())
        )
        if not matches:
            return 0.0
        factor = Factor(predicates, frozenset())
        return estimate_factor(FactorMatch(factor, matches))
