"""Histogram algebra: equi-join, variation distance, compaction.

Section 3.3 of the paper relies on a *histogram join*: joining
``H1 = SIT(x|Q1)`` with ``H2 = SIT(y|Q2)`` returns both the scalar
selectivity ``Sel(x = y | ...)`` and a derived histogram over the join
attribute that can estimate the remaining predicates (Example 3).

Section 3.5 needs a discrepancy measure between two distributions of the
same attribute (the ``diff_H`` value, "similar to mu_count of Gibbons et
al."); :func:`variation_distance` implements the histogram-level
approximation of the paper's total-variation formula.

Both operations align the two histograms on *segments*: the union of all
bucket edges splits the domain into degenerate point segments (one per
edge) and open spans between consecutive edges.  Mass assignment is
conserving: a bucket with ``d`` distinct values covering ``k`` edges gives
each edge one distinct value's share ``f/d`` and spreads the remainder over
its spans proportionally to width.  This makes the common fact-to-dimension
case (point buckets on the dimension key joining wide buckets on the fact
foreign key) exact under the uniform-spread assumption.

Performance: histogram manipulation is the second half of the paper's
Figure 8 time budget, so the mass-assignment kernel is vectorized.  The
sorted edge array indexes segments implicitly (segment ``2k`` is the point
at ``edges[k]``, segment ``2k + 1`` the open span to ``edges[k + 1]``),
``np.searchsorted`` locates each bucket's covered edge range, and per-edge
/ per-span totals come from difference-array (cumsum) range additions —
no Python-level bucket × edge loop.  The original loop implementation is
kept (``join_histograms_reference`` / ``variation_distance_reference``) as
the oracle for the equivalence tests and the baseline for the
``repro.bench.perf`` microbenchmarks.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.histograms.base import Bucket, Histogram


@dataclass(frozen=True)
class Segment:
    """One aligned domain segment: degenerate (low == high) or an open span."""

    low: float
    high: float

    @property
    def is_point(self) -> bool:
        return self.low == self.high


def _merged_segments(histograms: list[Histogram]) -> list[Segment]:
    edges: set[float] = set()
    for histogram in histograms:
        for bucket in histogram.buckets:
            edges.add(bucket.low)
            edges.add(bucket.high)
    ordered = sorted(edges)
    segments: list[Segment] = []
    for index, edge in enumerate(ordered):
        segments.append(Segment(edge, edge))
        if index + 1 < len(ordered):
            segments.append(Segment(edge, ordered[index + 1]))
    return segments


def _assign_mass(
    histogram: Histogram, segments: list[Segment]
) -> tuple[np.ndarray, np.ndarray]:
    """Frequency and distinct-count mass per segment (reference loop)."""
    frequencies = np.zeros(len(segments))
    distincts = np.zeros(len(segments))
    point_positions = {
        segment.low: index for index, segment in enumerate(segments) if segment.is_point
    }
    span_segments = [
        (index, segment) for index, segment in enumerate(segments) if not segment.is_point
    ]
    for bucket in histogram.buckets:
        if bucket.low == bucket.high:
            index = point_positions[bucket.low]
            frequencies[index] += bucket.frequency
            distincts[index] += bucket.distinct
            continue
        covered_edges = [
            index
            for value, index in point_positions.items()
            if bucket.low <= value <= bucket.high
        ]
        edge_count = len(covered_edges)
        distinct = max(bucket.distinct, 1.0)
        if edge_count >= distinct:
            # Degenerate: fewer distinct values than edges; split evenly.
            share = bucket.frequency / edge_count
            for index in covered_edges:
                frequencies[index] += share
                distincts[index] += distinct / edge_count
            continue
        edge_frequency = bucket.frequency / distinct
        for index in covered_edges:
            frequencies[index] += edge_frequency
            distincts[index] += 1.0
        remaining_frequency = bucket.frequency - edge_frequency * edge_count
        remaining_distinct = distinct - edge_count
        width = bucket.width
        for index, segment in span_segments:
            if segment.high <= bucket.low or segment.low >= bucket.high:
                continue
            low = max(segment.low, bucket.low)
            high = min(segment.high, bucket.high)
            fraction = (high - low) / width
            frequencies[index] += remaining_frequency * fraction
            distincts[index] += remaining_distinct * fraction
    return frequencies, distincts


# ----------------------------------------------------------------------
# Vectorized segment algebra
# ----------------------------------------------------------------------
def _merged_edges(histograms: list[Histogram]) -> np.ndarray:
    """Sorted, de-duplicated union of all bucket edges.

    The segment layout is implicit: with ``E`` edges there are ``2E - 1``
    segments, segment ``2k`` being the point at ``edges[k]`` and segment
    ``2k + 1`` the open span ``(edges[k], edges[k + 1])`` — the same order
    :func:`_merged_segments` materializes.
    """
    arrays = []
    for histogram in histograms:
        lows, highs, _, _ = histogram.bucket_arrays()
        arrays.append(lows)
        arrays.append(highs)
    return np.unique(np.concatenate(arrays))


def _assign_mass_arrays(
    histogram: Histogram, edges: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Vectorized :func:`_assign_mass` over the implicit segment layout.

    Every bucket endpoint is guaranteed to be a member of ``edges``, so a
    wide bucket covers a contiguous run of edges (and the spans strictly
    between them, each fully contained in the bucket).  Edge and span
    contributions are therefore range-additions, realized with
    difference arrays + ``cumsum``.
    """
    edge_count_total = len(edges)
    segments = 2 * edge_count_total - 1
    frequencies = np.zeros(segments)
    distincts = np.zeros(segments)
    lows, highs, freqs, dists = histogram.bucket_arrays()
    if lows.size == 0:
        return frequencies, distincts

    point = lows == highs
    if point.any():
        indices = np.searchsorted(edges, lows[point])
        np.add.at(frequencies, 2 * indices, freqs[point])
        np.add.at(distincts, 2 * indices, dists[point])

    wide = ~point
    if wide.any():
        b_low = lows[wide]
        b_high = highs[wide]
        b_freq = freqs[wide]
        b_dist = np.maximum(dists[wide], 1.0)
        first_edge = np.searchsorted(edges, b_low, side="left")
        last_edge = np.searchsorted(edges, b_high, side="right") - 1
        covered = last_edge - first_edge + 1  # >= 2: endpoints are edges
        degenerate = covered >= b_dist

        # Per covered edge: f/d (one distinct value's share) and 1 distinct
        # — or an even split when the bucket has fewer distincts than edges.
        edge_freq = np.where(degenerate, b_freq / covered, b_freq / b_dist)
        edge_dist = np.where(degenerate, b_dist / covered, 1.0)
        delta_f = np.zeros(edge_count_total + 1)
        delta_d = np.zeros(edge_count_total + 1)
        np.add.at(delta_f, first_edge, edge_freq)
        np.add.at(delta_f, last_edge + 1, -edge_freq)
        np.add.at(delta_d, first_edge, edge_dist)
        np.add.at(delta_d, last_edge + 1, -edge_dist)
        frequencies[0::2] += np.cumsum(delta_f[:-1])
        distincts[0::2] += np.cumsum(delta_d[:-1])

        # Remaining mass spreads over the spans inside the bucket
        # proportionally to width: accumulate *densities* (mass / bucket
        # width) with a range-add, then scale by each span's width.
        if edge_count_total > 1:
            width = b_high - b_low
            rem_freq = np.where(degenerate, 0.0, b_freq - edge_freq * covered)
            rem_dist = np.where(degenerate, 0.0, b_dist - covered)
            dens_f = np.zeros(edge_count_total)
            dens_d = np.zeros(edge_count_total)
            np.add.at(dens_f, first_edge, rem_freq / width)
            np.add.at(dens_f, last_edge, -(rem_freq / width))
            np.add.at(dens_d, first_edge, rem_dist / width)
            np.add.at(dens_d, last_edge, -(rem_dist / width))
            span_widths = edges[1:] - edges[:-1]
            frequencies[1::2] += np.cumsum(dens_f[:-1]) * span_widths
            distincts[1::2] += np.cumsum(dens_d[:-1]) * span_widths
    return frequencies, distincts


def _segment_bounds(index: int, edges: np.ndarray) -> tuple[float, float]:
    """(low, high) of implicit segment ``index`` over ``edges``."""
    half, odd = divmod(index, 2)
    if odd:
        return float(edges[half]), float(edges[half + 1])
    return float(edges[half]), float(edges[half])


@dataclass(frozen=True)
class HistogramJoinResult:
    """Outcome of ``H1 join H2``: matched-pair count, scalar selectivity
    (relative to ``H1.total * H2.total``) and the derived histogram over
    the join attribute."""

    pair_count: float
    selectivity: float
    histogram: Histogram


def join_histograms(
    left: Histogram, right: Histogram, max_buckets: int | None = None
) -> HistogramJoinResult:
    """Estimate the equi-join of two attribute distributions.

    Aligned segments contribute ``f1 * f2 / max(d1, d2)`` matched pairs
    (the containment/uniform-spread assumption).  NULLs never match, but
    they stay in the denominator of the returned selectivity, so dangling
    foreign keys correctly depress join selectivity.
    """
    if left.is_empty() or right.is_empty():
        return HistogramJoinResult(0.0, 0.0, Histogram([]))
    edges = _merged_edges([left, right])
    left_freq, left_distinct = _assign_mass_arrays(left, edges)
    right_freq, right_distinct = _assign_mass_arrays(right, edges)

    with np.errstate(divide="ignore", invalid="ignore"):
        pairs = (
            left_freq
            * right_freq
            / np.maximum(left_distinct, right_distinct)
        )
    keep = (left_distinct > 0.0) & (right_distinct > 0.0) & (pairs > 0.0)
    total_pairs = float(pairs[keep].sum())
    min_distinct = np.minimum(left_distinct, right_distinct)

    buckets: list[Bucket] = []
    for index in np.flatnonzero(keep):
        low, high = _segment_bounds(int(index), edges)
        buckets.append(
            Bucket(low, high, float(pairs[index]), float(min_distinct[index]))
        )

    denominator = left.total * right.total
    selectivity = total_pairs / denominator if denominator > 0 else 0.0
    joined = Histogram(_merge_touching(buckets))
    if max_buckets is not None and joined.bucket_count > max_buckets:
        joined = compact(joined, max_buckets)
    return HistogramJoinResult(total_pairs, selectivity, joined)


def join_histograms_reference(
    left: Histogram, right: Histogram, max_buckets: int | None = None
) -> HistogramJoinResult:
    """Pure-Python :func:`join_histograms` (oracle / benchmark baseline)."""
    if left.is_empty() or right.is_empty():
        return HistogramJoinResult(0.0, 0.0, Histogram([]))
    segments = _merged_segments([left, right])
    left_freq, left_distinct = _assign_mass(left, segments)
    right_freq, right_distinct = _assign_mass(right, segments)

    buckets: list[Bucket] = []
    total_pairs = 0.0
    for index, segment in enumerate(segments):
        d1, d2 = left_distinct[index], right_distinct[index]
        if d1 <= 0.0 or d2 <= 0.0:
            continue
        pairs = left_freq[index] * right_freq[index] / max(d1, d2)
        if pairs <= 0.0:
            continue
        total_pairs += pairs
        buckets.append(Bucket(segment.low, segment.high, pairs, min(d1, d2)))

    denominator = left.total * right.total
    selectivity = total_pairs / denominator if denominator > 0 else 0.0
    joined = Histogram(_merge_touching(buckets))
    if max_buckets is not None and joined.bucket_count > max_buckets:
        joined = compact(joined, max_buckets)
    return HistogramJoinResult(total_pairs, selectivity, joined)


def _merge_touching(buckets: list[Bucket]) -> list[Bucket]:
    """Merge a degenerate bucket into an adjacent span sharing its edge.

    Join output alternates point and span buckets over the same dense
    region; folding points into neighbouring spans halves the bucket count
    without changing range estimates materially.
    """
    merged: list[Bucket] = []
    for bucket in buckets:
        if merged:
            previous = merged[-1]
            if previous.high == bucket.low and (
                previous.low == previous.high or bucket.low == bucket.high
            ):
                merged[-1] = Bucket(
                    previous.low,
                    bucket.high,
                    previous.frequency + bucket.frequency,
                    previous.distinct + bucket.distinct,
                )
                continue
        merged.append(bucket)
    return merged


def compact(histogram: Histogram, max_buckets: int) -> Histogram:
    """Reduce ``histogram`` to at most ``max_buckets`` buckets by greedily
    merging the adjacent pair with the smallest combined frequency."""
    if max_buckets < 1:
        raise ValueError("max_buckets must be >= 1")
    buckets = list(histogram.buckets)
    while len(buckets) > max_buckets:
        best = min(
            range(len(buckets) - 1),
            key=lambda i: buckets[i].frequency + buckets[i + 1].frequency,
        )
        first, second = buckets[best], buckets[best + 1]
        buckets[best : best + 2] = [
            Bucket(
                first.low,
                second.high,
                first.frequency + second.frequency,
                first.distinct + second.distinct,
            )
        ]
    return Histogram(buckets, null_count=histogram.null_count)


def variation_distance(first: Histogram, second: Histogram) -> float:
    """Histogram approximation of the paper's diff formula:
    ``1/2 * sum_x |f1(x)/N1 - f2(x)/N2|`` over the (non-NULL) domain.

    Returns a value in [0, 1]; 0 when the normalized distributions agree on
    every aligned segment.
    """
    if first.is_empty() and second.is_empty():
        return 0.0
    if first.is_empty() or second.is_empty():
        return 1.0
    edges = _merged_edges([first, second])
    first_freq, _ = _assign_mass_arrays(first, edges)
    second_freq, _ = _assign_mass_arrays(second, edges)
    p = first_freq / first.frequency
    q = second_freq / second.frequency
    return float(np.abs(p - q).sum() / 2.0)


def variation_distance_reference(first: Histogram, second: Histogram) -> float:
    """Pure-Python :func:`variation_distance` (oracle / benchmark baseline)."""
    if first.is_empty() and second.is_empty():
        return 0.0
    if first.is_empty() or second.is_empty():
        return 1.0
    segments = _merged_segments([first, second])
    first_freq, _ = _assign_mass(first, segments)
    second_freq, _ = _assign_mass(second, segments)
    p = first_freq / first.frequency
    q = second_freq / second.frequency
    return float(np.abs(p - q).sum() / 2.0)
