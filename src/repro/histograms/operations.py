"""Histogram algebra: equi-join, variation distance, compaction.

Section 3.3 of the paper relies on a *histogram join*: joining
``H1 = SIT(x|Q1)`` with ``H2 = SIT(y|Q2)`` returns both the scalar
selectivity ``Sel(x = y | ...)`` and a derived histogram over the join
attribute that can estimate the remaining predicates (Example 3).

Section 3.5 needs a discrepancy measure between two distributions of the
same attribute (the ``diff_H`` value, "similar to mu_count of Gibbons et
al."); :func:`variation_distance` implements the histogram-level
approximation of the paper's total-variation formula.

Both operations align the two histograms on *segments*: the union of all
bucket edges splits the domain into degenerate point segments (one per
edge) and open spans between consecutive edges.  Mass assignment is
conserving: a bucket with ``d`` distinct values covering ``k`` edges gives
each edge one distinct value's share ``f/d`` and spreads the remainder over
its spans proportionally to width.  This makes the common fact-to-dimension
case (point buckets on the dimension key joining wide buckets on the fact
foreign key) exact under the uniform-spread assumption.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.histograms.base import Bucket, Histogram


@dataclass(frozen=True)
class Segment:
    """One aligned domain segment: degenerate (low == high) or an open span."""

    low: float
    high: float

    @property
    def is_point(self) -> bool:
        return self.low == self.high


def _merged_segments(histograms: list[Histogram]) -> list[Segment]:
    edges: set[float] = set()
    for histogram in histograms:
        for bucket in histogram.buckets:
            edges.add(bucket.low)
            edges.add(bucket.high)
    ordered = sorted(edges)
    segments: list[Segment] = []
    for index, edge in enumerate(ordered):
        segments.append(Segment(edge, edge))
        if index + 1 < len(ordered):
            segments.append(Segment(edge, ordered[index + 1]))
    return segments


def _assign_mass(
    histogram: Histogram, segments: list[Segment]
) -> tuple[np.ndarray, np.ndarray]:
    """Frequency and distinct-count mass of ``histogram`` per segment."""
    frequencies = np.zeros(len(segments))
    distincts = np.zeros(len(segments))
    point_positions = {
        segment.low: index for index, segment in enumerate(segments) if segment.is_point
    }
    span_segments = [
        (index, segment) for index, segment in enumerate(segments) if not segment.is_point
    ]
    for bucket in histogram.buckets:
        if bucket.low == bucket.high:
            index = point_positions[bucket.low]
            frequencies[index] += bucket.frequency
            distincts[index] += bucket.distinct
            continue
        covered_edges = [
            index
            for value, index in point_positions.items()
            if bucket.low <= value <= bucket.high
        ]
        edge_count = len(covered_edges)
        distinct = max(bucket.distinct, 1.0)
        if edge_count >= distinct:
            # Degenerate: fewer distinct values than edges; split evenly.
            share = bucket.frequency / edge_count
            for index in covered_edges:
                frequencies[index] += share
                distincts[index] += distinct / edge_count
            continue
        edge_frequency = bucket.frequency / distinct
        for index in covered_edges:
            frequencies[index] += edge_frequency
            distincts[index] += 1.0
        remaining_frequency = bucket.frequency - edge_frequency * edge_count
        remaining_distinct = distinct - edge_count
        width = bucket.width
        for index, segment in span_segments:
            if segment.high <= bucket.low or segment.low >= bucket.high:
                continue
            low = max(segment.low, bucket.low)
            high = min(segment.high, bucket.high)
            fraction = (high - low) / width
            frequencies[index] += remaining_frequency * fraction
            distincts[index] += remaining_distinct * fraction
    return frequencies, distincts


@dataclass(frozen=True)
class HistogramJoinResult:
    """Outcome of ``H1 join H2``: matched-pair count, scalar selectivity
    (relative to ``H1.total * H2.total``) and the derived histogram over
    the join attribute."""

    pair_count: float
    selectivity: float
    histogram: Histogram


def join_histograms(
    left: Histogram, right: Histogram, max_buckets: int | None = None
) -> HistogramJoinResult:
    """Estimate the equi-join of two attribute distributions.

    Aligned segments contribute ``f1 * f2 / max(d1, d2)`` matched pairs
    (the containment/uniform-spread assumption).  NULLs never match, but
    they stay in the denominator of the returned selectivity, so dangling
    foreign keys correctly depress join selectivity.
    """
    if left.is_empty() or right.is_empty():
        return HistogramJoinResult(0.0, 0.0, Histogram([]))
    segments = _merged_segments([left, right])
    left_freq, left_distinct = _assign_mass(left, segments)
    right_freq, right_distinct = _assign_mass(right, segments)

    buckets: list[Bucket] = []
    total_pairs = 0.0
    for index, segment in enumerate(segments):
        d1, d2 = left_distinct[index], right_distinct[index]
        if d1 <= 0.0 or d2 <= 0.0:
            continue
        pairs = left_freq[index] * right_freq[index] / max(d1, d2)
        if pairs <= 0.0:
            continue
        total_pairs += pairs
        buckets.append(Bucket(segment.low, segment.high, pairs, min(d1, d2)))

    denominator = left.total * right.total
    selectivity = total_pairs / denominator if denominator > 0 else 0.0
    joined = Histogram(_merge_touching(buckets))
    if max_buckets is not None and joined.bucket_count > max_buckets:
        joined = compact(joined, max_buckets)
    return HistogramJoinResult(total_pairs, selectivity, joined)


def _merge_touching(buckets: list[Bucket]) -> list[Bucket]:
    """Merge a degenerate bucket into an adjacent span sharing its edge.

    Join output alternates point and span buckets over the same dense
    region; folding points into neighbouring spans halves the bucket count
    without changing range estimates materially.
    """
    merged: list[Bucket] = []
    for bucket in buckets:
        if merged:
            previous = merged[-1]
            if previous.high == bucket.low and (
                previous.low == previous.high or bucket.low == bucket.high
            ):
                merged[-1] = Bucket(
                    previous.low,
                    bucket.high,
                    previous.frequency + bucket.frequency,
                    previous.distinct + bucket.distinct,
                )
                continue
        merged.append(bucket)
    return merged


def compact(histogram: Histogram, max_buckets: int) -> Histogram:
    """Reduce ``histogram`` to at most ``max_buckets`` buckets by greedily
    merging the adjacent pair with the smallest combined frequency."""
    if max_buckets < 1:
        raise ValueError("max_buckets must be >= 1")
    buckets = list(histogram.buckets)
    while len(buckets) > max_buckets:
        best = min(
            range(len(buckets) - 1),
            key=lambda i: buckets[i].frequency + buckets[i + 1].frequency,
        )
        first, second = buckets[best], buckets[best + 1]
        buckets[best : best + 2] = [
            Bucket(
                first.low,
                second.high,
                first.frequency + second.frequency,
                first.distinct + second.distinct,
            )
        ]
    return Histogram(buckets, null_count=histogram.null_count)


def variation_distance(first: Histogram, second: Histogram) -> float:
    """Histogram approximation of the paper's diff formula:
    ``1/2 * sum_x |f1(x)/N1 - f2(x)/N2|`` over the (non-NULL) domain.

    Returns a value in [0, 1]; 0 when the normalized distributions agree on
    every aligned segment.
    """
    if first.is_empty() and second.is_empty():
        return 0.0
    if first.is_empty() or second.is_empty():
        return 1.0
    segments = _merged_segments([first, second])
    first_freq, _ = _assign_mass(first, segments)
    second_freq, _ = _assign_mass(second, segments)
    p = first_freq / first.frequency
    q = second_freq / second.frequency
    return float(np.abs(p - q).sum() / 2.0)
