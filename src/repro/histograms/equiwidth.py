"""Equi-width histogram construction (equal value range per bucket)."""

from __future__ import annotations

import numpy as np

from repro.histograms.base import Bucket, Histogram, values_and_frequencies
from repro.histograms.maxdiff import DEFAULT_MAX_BUCKETS


def build_equiwidth(values: np.ndarray, max_buckets: int = DEFAULT_MAX_BUCKETS) -> Histogram:
    """Build an equi-width histogram of ``values`` (NaN treated as NULL)."""
    if max_buckets < 1:
        raise ValueError("max_buckets must be >= 1")
    distinct, counts, nulls = values_and_frequencies(values)
    if distinct.size == 0:
        return Histogram([], null_count=nulls)
    if distinct.size <= max_buckets:
        buckets = [
            Bucket(float(v), float(v), float(c), 1.0)
            for v, c in zip(distinct, counts)
        ]
        return Histogram(buckets, null_count=nulls)

    low, high = float(distinct[0]), float(distinct[-1])
    edges = np.linspace(low, high, max_buckets + 1)
    # Assign each distinct value to a bucket; the last edge is inclusive.
    assignment = np.clip(
        np.searchsorted(edges, distinct, side="right") - 1, 0, max_buckets - 1
    )
    buckets = []
    for b in range(max_buckets):
        mask = assignment == b
        if not mask.any():
            continue
        group_values = distinct[mask]
        group_counts = counts[mask]
        buckets.append(
            Bucket(
                float(group_values[0]),
                float(group_values[-1]),
                float(group_counts.sum()),
                float(group_values.size),
            )
        )
    return Histogram(buckets, null_count=nulls)
