"""Two-dimensional grid histograms.

Assumption 1 of the paper (minimality of histograms) argues that when a
selectivity factor is separable, two unidimensional histograms are at
least as accurate as — and no larger than — one multidimensional
histogram over the combined attributes.  This module provides the 2-D
histogram needed to *test* that claim empirically (see
``tests/histograms/test_multidim.py`` and the Assumption 1 ablation), and
doubles as a correlation-aware statistic for intra-table attribute pairs.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class GridHistogram2D:
    """An equi-width 2-D grid over two attributes.

    ``frequencies[i, j]`` counts tuples with the first attribute in cell
    ``i`` and the second in cell ``j``.  Rows with a NULL in either
    attribute are excluded from the grid but counted in ``total``.
    """

    x_edges: np.ndarray
    y_edges: np.ndarray
    frequencies: np.ndarray
    total: float

    @property
    def cell_count(self) -> int:
        return int(self.frequencies.size)

    @property
    def frequency(self) -> float:
        return float(self.frequencies.sum())

    def estimate_box_count(
        self, x_low: float, x_high: float, y_low: float, y_high: float
    ) -> float:
        """Estimated tuples inside the closed box, with continuous
        uniformity inside cells."""
        if x_low > x_high or y_low > y_high:
            return 0.0
        x_fractions = _axis_fractions(self.x_edges, x_low, x_high)
        y_fractions = _axis_fractions(self.y_edges, y_low, y_high)
        return float(x_fractions @ self.frequencies @ y_fractions)

    def estimate_box_selectivity(
        self, x_low: float, x_high: float, y_low: float, y_high: float
    ) -> float:
        if self.total <= 0:
            return 0.0
        return min(
            1.0, self.estimate_box_count(x_low, x_high, y_low, y_high) / self.total
        )


def _axis_fractions(edges: np.ndarray, low: float, high: float) -> np.ndarray:
    """Per-cell overlap fraction of [low, high] along one axis."""
    cells = len(edges) - 1
    fractions = np.zeros(cells)
    for index in range(cells):
        cell_low, cell_high = edges[index], edges[index + 1]
        width = cell_high - cell_low
        lo = max(low, cell_low)
        hi = min(high, cell_high)
        if hi < lo:
            continue
        if width <= 0:
            fractions[index] = 1.0
        elif hi == lo:
            # Point query: one unit of the (integer-ish) domain's share.
            fractions[index] = min(1.0, 1.0 / max(width, 1.0))
        else:
            fractions[index] = min(1.0, (hi - lo) / width)
    return fractions


def build_grid2d(
    x_values: np.ndarray,
    y_values: np.ndarray,
    cells_per_axis: int = 14,
) -> GridHistogram2D:
    """Build an equi-width 2-D grid histogram of two aligned columns.

    ``cells_per_axis**2`` should be compared against twice a 1-D
    histogram's bucket budget when testing Assumption 1's space argument
    (14x14 = 196 cells ~ two 100-bucket histograms).
    """
    if cells_per_axis < 1:
        raise ValueError("cells_per_axis must be >= 1")
    x_values = np.asarray(x_values, dtype=np.float64)
    y_values = np.asarray(y_values, dtype=np.float64)
    if x_values.shape != y_values.shape:
        raise ValueError("columns must be aligned (same length)")
    total = float(len(x_values))
    valid = ~(np.isnan(x_values) | np.isnan(y_values))
    x_clean = x_values[valid]
    y_clean = y_values[valid]
    if x_clean.size == 0:
        edges = np.array([0.0, 1.0])
        return GridHistogram2D(edges, edges, np.zeros((1, 1)), total)
    x_edges = _edges(x_clean, cells_per_axis)
    y_edges = _edges(y_clean, cells_per_axis)
    frequencies, _, _ = np.histogram2d(x_clean, y_clean, bins=(x_edges, y_edges))
    return GridHistogram2D(x_edges, y_edges, frequencies, total)


def _edges(values: np.ndarray, cells: int) -> np.ndarray:
    low, high = float(values.min()), float(values.max())
    if low == high:
        high = low + 1.0
    return np.linspace(low, high, cells + 1)
