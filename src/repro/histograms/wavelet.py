"""Haar-wavelet synopses as drop-in histogram builders.

The paper's abstract notes SITs generalize beyond histograms to "other
statistical estimators, such as wavelets or samples".  This module
provides the wavelet instantiation: the attribute's frequency
distribution is binned onto a dyadic grid, Haar-decomposed, thresholded
to the ``B`` largest normalized coefficients (the classic L2-optimal
synopsis), and reconstructed into a :class:`Histogram` so the rest of the
framework — matching, histogram joins, ``diff_H`` — works unchanged.

``build_wavelet`` follows the ``HistogramBuilder`` signature, with the
bucket budget interpreted as the coefficient budget.
"""

from __future__ import annotations

import math

import numpy as np

from repro.histograms.base import Bucket, Histogram, values_and_frequencies

#: grid resolution cap (cells); must be a power of two
MAX_GRID_CELLS = 1024


def haar_decompose(frequencies: np.ndarray) -> list[np.ndarray]:
    """Unnormalized Haar decomposition.

    Returns ``[averages, details_coarsest, ..., details_finest]`` where
    ``averages`` has length 1.  Input length must be a power of two.
    """
    n = len(frequencies)
    if n & (n - 1):
        raise ValueError("input length must be a power of two")
    current = np.asarray(frequencies, dtype=np.float64)
    details: list[np.ndarray] = []
    while len(current) > 1:
        pairs = current.reshape(-1, 2)
        averages = pairs.mean(axis=1)
        details.append((pairs[:, 0] - pairs[:, 1]) / 2.0)
        current = averages
    details.reverse()
    return [current, *details]


def haar_reconstruct(levels: list[np.ndarray]) -> np.ndarray:
    """Inverse of :func:`haar_decompose`."""
    current = np.asarray(levels[0], dtype=np.float64)
    for details in levels[1:]:
        expanded = np.empty(len(current) * 2)
        expanded[0::2] = current + details
        expanded[1::2] = current - details
        current = expanded
    return current


def threshold_levels(levels: list[np.ndarray], keep: int) -> list[np.ndarray]:
    """Zero all but the ``keep`` largest *normalized* detail coefficients.

    Normalization weights a detail at resolution ``2^l`` by ``sqrt`` of
    its support, which makes magnitude thresholding L2-optimal for the
    Haar basis.  The overall average is always kept (it carries the total
    mass).
    """
    if keep < 0:
        raise ValueError("keep must be non-negative")
    weighted: list[tuple[float, int, int]] = []
    for level_index, details in enumerate(levels[1:], start=1):
        support = 2 ** (len(levels) - level_index)
        weight = math.sqrt(support)
        for position, value in enumerate(details):
            weighted.append((abs(value) * weight, level_index, position))
    weighted.sort(reverse=True)
    kept = {(level, position) for _, level, position in weighted[:keep]}
    out = [levels[0].copy()]
    for level_index, details in enumerate(levels[1:], start=1):
        filtered = np.where(
            [(level_index, position) in kept for position in range(len(details))],
            details,
            0.0,
        )
        out.append(filtered)
    return out


def build_wavelet(values: np.ndarray, max_coefficients: int = 200) -> Histogram:
    """Build a Haar-synopsis histogram of ``values`` (NaN treated as NULL)."""
    if max_coefficients < 1:
        raise ValueError("max_coefficients must be >= 1")
    distinct, counts, nulls = values_and_frequencies(values)
    if distinct.size == 0:
        return Histogram([], null_count=nulls)
    if distinct.size <= max_coefficients:
        buckets = [
            Bucket(float(v), float(v), float(c), 1.0)
            for v, c in zip(distinct, counts)
        ]
        return Histogram(buckets, null_count=nulls)

    cells = MAX_GRID_CELLS
    while cells > 2 * max_coefficients and cells > 2:
        cells //= 2
    low, high = float(distinct[0]), float(distinct[-1])
    edges = np.linspace(low, high, cells + 1)
    cell_of = np.clip(
        np.searchsorted(edges, distinct, side="right") - 1, 0, cells - 1
    )
    frequencies = np.bincount(cell_of, weights=counts, minlength=cells)
    distinct_per_cell = np.bincount(cell_of, minlength=cells)

    levels = haar_decompose(frequencies)
    kept = threshold_levels(levels, max_coefficients - 1)
    approximate = np.maximum(haar_reconstruct(kept), 0.0)
    total = counts.sum()
    mass = approximate.sum()
    if mass > 0:
        approximate *= total / mass

    total_distinct = float(distinct.size)
    buckets: list[Bucket] = []
    for index in range(cells):
        frequency = float(approximate[index])
        if frequency <= 0.0:
            continue
        share = frequency / total
        estimated_distinct = max(1.0, min(total_distinct * share, frequency))
        if distinct_per_cell[index] > 0:
            estimated_distinct = float(distinct_per_cell[index])
        buckets.append(
            Bucket(
                float(edges[index]),
                float(edges[index + 1]),
                frequency,
                estimated_distinct,
            )
        )
    return Histogram(buckets, null_count=nulls)
