"""MaxDiff(V,A) histogram construction (Poosala et al., SIGMOD 1996).

This is the histogram class the paper's experiments use ("each SIT is a
unidimensional maxDiff histogram with at most 200 buckets").  MaxDiff(V,A)
sorts the distinct values, computes each value's *area* (frequency times
spread to the next distinct value) and places bucket boundaries at the
``b - 1`` largest adjacent-area differences, which isolates frequency
spikes into their own buckets.
"""

from __future__ import annotations

import numpy as np

from repro.histograms.base import Bucket, Histogram, values_and_frequencies

DEFAULT_MAX_BUCKETS = 200


def build_maxdiff(values: np.ndarray, max_buckets: int = DEFAULT_MAX_BUCKETS) -> Histogram:
    """Build a MaxDiff(V,A) histogram of ``values`` (NaN treated as NULL)."""
    if max_buckets < 1:
        raise ValueError("max_buckets must be >= 1")
    distinct, counts, nulls = values_and_frequencies(values)
    if distinct.size == 0:
        return Histogram([], null_count=nulls)
    if distinct.size <= max_buckets:
        buckets = [
            Bucket(float(v), float(v), float(c), 1.0)
            for v, c in zip(distinct, counts)
        ]
        return Histogram(buckets, null_count=nulls)

    spreads = np.empty_like(distinct)
    spreads[:-1] = np.diff(distinct)
    spreads[-1] = spreads[:-1].mean() if distinct.size > 1 else 1.0
    areas = counts * spreads
    # Boundary *after* position i when |area[i+1] - area[i]| is among the
    # (max_buckets - 1) largest differences.
    differences = np.abs(np.diff(areas))
    boundary_count = min(max_buckets - 1, differences.size)
    if boundary_count == 0:
        cut_positions: list[int] = []
    else:
        cut_after = np.argpartition(differences, -boundary_count)[-boundary_count:]
        cut_positions = sorted(int(i) + 1 for i in cut_after)

    buckets: list[Bucket] = []
    start = 0
    for stop in [*cut_positions, distinct.size]:
        group_values = distinct[start:stop]
        group_counts = counts[start:stop]
        buckets.append(
            Bucket(
                float(group_values[0]),
                float(group_values[-1]),
                float(group_counts.sum()),
                float(group_values.size),
            )
        )
        start = stop
    return Histogram(buckets, null_count=nulls)
