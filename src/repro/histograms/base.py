"""Histogram core: buckets, the histogram container, range estimation.

All histograms in this library are unidimensional, matching the paper's
experimental setup ("each SIT is a unidimensional maxDiff histogram with at
most 200 buckets").  A histogram summarizes the multiset of non-NULL values
of one attribute over some relation (a base table, or the result of a SIT's
generating query expression).

Buckets carry ``(low, high, frequency, distinct)``.  Ranges are estimated
with the standard continuous-uniformity assumption inside buckets; equality
predicates use the ``frequency / distinct`` uniform-spread assumption.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class Bucket:
    """One histogram bucket over the closed value interval [low, high]."""

    low: float
    high: float
    frequency: float
    distinct: float

    def __post_init__(self) -> None:
        if self.low > self.high:
            raise ValueError(f"bucket with low {self.low} > high {self.high}")
        if self.frequency < 0 or self.distinct < 0:
            raise ValueError("bucket frequency/distinct must be non-negative")

    @property
    def width(self) -> float:
        return self.high - self.low

    def overlap_fraction(self, low: float, high: float) -> float:
        """Fraction of this bucket's mass inside [low, high].

        Point buckets (width 0) are either fully inside or outside.  Wide
        buckets use continuous uniformity.
        """
        if high < self.low or low > self.high:
            return 0.0
        if self.width == 0.0:
            return 1.0
        lo = max(low, self.low)
        hi = min(high, self.high)
        if lo > hi:
            return 0.0
        fraction = (hi - lo) / self.width
        # Any non-empty intersection covers at least one distinct value's
        # share of the bucket; taking the max keeps range estimates
        # monotone in the query range while handling point lookups.
        floor = 1.0 / max(self.distinct, 1.0)
        return min(max(fraction, floor), 1.0)


class Histogram:
    """An immutable sequence of ordered, non-overlapping buckets.

    ``total`` is the number of tuples in the summarized relation *including*
    NULLs; ``null_count`` of them fall outside every bucket.  Selectivities
    are fractions of ``total`` (NULL never satisfies a predicate), matching
    SQL semantics.
    """

    def __init__(self, buckets: list[Bucket], null_count: float = 0.0):
        previous_high = -math.inf
        for bucket in buckets:
            if bucket.low < previous_high:
                raise ValueError("buckets must be ordered and non-overlapping")
            previous_high = bucket.high
        self.buckets: tuple[Bucket, ...] = tuple(buckets)
        self.null_count = float(null_count)
        self._frequency = float(sum(b.frequency for b in buckets))
        self.total = self._frequency + self.null_count
        self._lows = np.array([b.low for b in buckets], dtype=np.float64)
        self._highs = np.array([b.high for b in buckets], dtype=np.float64)
        self._freqs = np.array([b.frequency for b in buckets], dtype=np.float64)
        self._dists = np.array([b.distinct for b in buckets], dtype=np.float64)

    @classmethod
    def from_arrays(
        cls,
        lows: np.ndarray,
        highs: np.ndarray,
        frequencies: np.ndarray,
        distincts: np.ndarray,
        null_count: float = 0.0,
    ) -> "Histogram":
        """Build a histogram directly over bucket arrays — zero copy.

        The arrays are adopted as-is (read-only shared-memory views
        included; :mod:`repro.cluster.shm` is the consumer), so N
        processes can serve from one snapshot's bucket memory.
        :class:`Bucket` objects are materialized lazily on first
        ``.buckets`` access; the vectorized paths never need them.

        ``_frequency`` is summed element-by-element in bucket order —
        the same left fold ``__init__`` performs over ``Bucket``
        objects — so estimates from an attached histogram stay
        bit-identical to the original.
        """
        lows = np.asarray(lows, dtype=np.float64)
        highs = np.asarray(highs, dtype=np.float64)
        frequencies = np.asarray(frequencies, dtype=np.float64)
        distincts = np.asarray(distincts, dtype=np.float64)
        if not (lows.shape == highs.shape == frequencies.shape == distincts.shape):
            raise ValueError("bucket arrays must have identical shapes")
        if lows.size and bool(np.any(lows[1:] < highs[:-1])):
            raise ValueError("buckets must be ordered and non-overlapping")
        histogram = object.__new__(cls)
        histogram.null_count = float(null_count)
        histogram._lows = lows
        histogram._highs = highs
        histogram._freqs = frequencies
        histogram._dists = distincts
        histogram._frequency = float(sum(frequencies.tolist()))
        histogram.total = histogram._frequency + histogram.null_count
        return histogram

    def __getattr__(self, name: str):
        # only ``buckets`` is lazily materialized (instances built by
        # ``from_arrays`` skip it); everything else is a genuine miss
        if name == "buckets":
            buckets = tuple(
                Bucket(low, high, frequency, distinct)
                for low, high, frequency, distinct in zip(
                    self._lows.tolist(),
                    self._highs.tolist(),
                    self._freqs.tolist(),
                    self._dists.tolist(),
                )
            )
            self.buckets = buckets
            return buckets
        raise AttributeError(
            f"{type(self).__name__!r} object has no attribute {name!r}"
        )

    def bucket_arrays(self) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """``(lows, highs, frequencies, distincts)`` as float64 arrays.

        Cached at construction; the vectorized histogram algebra in
        :mod:`repro.histograms.operations` consumes these instead of
        looping over :class:`Bucket` objects.
        """
        return self._lows, self._highs, self._freqs, self._dists

    # ------------------------------------------------------------------
    @property
    def bucket_count(self) -> int:
        return len(self.buckets)

    @property
    def frequency(self) -> float:
        """Total non-NULL tuple count."""
        return self._frequency

    @property
    def distinct(self) -> float:
        return float(sum(b.distinct for b in self.buckets))

    @property
    def low(self) -> float:
        if not self.buckets:
            raise ValueError("empty histogram has no domain")
        return self.buckets[0].low

    @property
    def high(self) -> float:
        if not self.buckets:
            raise ValueError("empty histogram has no domain")
        return self.buckets[-1].high

    def is_empty(self) -> bool:
        return not self.buckets or self._frequency == 0.0

    # ------------------------------------------------------------------
    def estimate_range_count(self, low: float, high: float) -> float:
        """Estimated number of tuples with value in the closed [low, high]."""
        if low > high or self.is_empty():
            return 0.0
        count = 0.0
        for bucket in self.buckets:
            if bucket.low > high:
                break
            count += bucket.frequency * bucket.overlap_fraction(low, high)
        return count

    def estimate_range_selectivity(self, low: float, high: float) -> float:
        """Estimated ``Sel(low <= a <= high)`` as a fraction of ``total``."""
        if self.total == 0.0:
            return 0.0
        return min(1.0, self.estimate_range_count(low, high) / self.total)

    def estimate_range_selectivity_batch(
        self, lows: np.ndarray, highs: np.ndarray
    ) -> np.ndarray:
        """Vectorized :meth:`estimate_range_selectivity` over range batches.

        Bit-identical per element to the scalar method (the plan-cache
        batched replay depends on this; ``tests/histograms`` pins it):
        per-bucket overlap fractions replicate :meth:`Bucket.
        overlap_fraction` branch for branch, and the per-row bucket sum
        uses ``cumsum`` — a sequential left fold, the same association
        order as the scalar loop (the scalar early ``break`` only skips
        exact-zero contributions, and ``x + 0.0 == x``).  Inverted
        (``low > high``) ranges yield exactly ``0.0``.
        """
        lows = np.asarray(lows, dtype=np.float64)
        highs = np.asarray(highs, dtype=np.float64)
        if self.total == 0.0 or self.is_empty():
            return np.zeros(lows.shape)
        query_low = lows[:, None]
        query_high = highs[:, None]
        bucket_low = self._lows[None, :]
        bucket_high = self._highs[None, :]
        width = bucket_high - bucket_low
        lo = np.maximum(query_low, bucket_low)
        hi = np.minimum(query_high, bucket_high)
        with np.errstate(divide="ignore", invalid="ignore"):
            fraction = (hi - lo) / width
        floor = 1.0 / np.maximum(self._dists, 1.0)
        fraction = np.minimum(np.maximum(fraction, floor[None, :]), 1.0)
        fraction = np.where(width == 0.0, 1.0, fraction)
        fraction = np.where(lo > hi, 0.0, fraction)
        fraction = np.where(
            (query_high < bucket_low) | (query_low > bucket_high),
            0.0,
            fraction,
        )
        contributions = self._freqs[None, :] * fraction
        counts = np.cumsum(contributions, axis=1)[:, -1]
        return np.minimum(1.0, counts / self.total)

    def estimate_range_distinct(self, low: float, high: float) -> float:
        """Estimated number of distinct values in the closed [low, high]."""
        if low > high or self.is_empty():
            return 0.0
        distinct = 0.0
        for bucket in self.buckets:
            if bucket.low > high:
                break
            distinct += bucket.distinct * bucket.overlap_fraction(low, high)
        return distinct

    def estimate_equality_count(self, value: float) -> float:
        """Estimated number of tuples equal to ``value``."""
        for bucket in self.buckets:
            if bucket.low <= value <= bucket.high:
                if bucket.distinct <= 0:
                    return 0.0
                return bucket.frequency / bucket.distinct
        return 0.0

    # ------------------------------------------------------------------
    def scale(self, factor: float) -> "Histogram":
        """A copy with all frequencies (and null count) multiplied."""
        if factor < 0:
            raise ValueError("scale factor must be non-negative")
        buckets = [
            Bucket(b.low, b.high, b.frequency * factor, b.distinct)
            for b in self.buckets
        ]
        return Histogram(buckets, null_count=self.null_count * factor)

    def __repr__(self) -> str:
        return (
            f"Histogram(buckets={self.bucket_count}, total={self.total:g}, "
            f"nulls={self.null_count:g})"
        )


def values_and_frequencies(values: np.ndarray) -> tuple[np.ndarray, np.ndarray, int]:
    """Distinct non-NULL values, their frequencies, and the NULL count."""
    values = np.asarray(values, dtype=np.float64)
    nulls = int(np.isnan(values).sum())
    clean = values[~np.isnan(values)]
    if clean.size == 0:
        return np.empty(0), np.empty(0, dtype=np.int64), nulls
    distinct, counts = np.unique(clean, return_counts=True)
    return distinct, counts, nulls
