"""Equi-depth histogram construction (equal tuple mass per bucket).

Provided alongside MaxDiff for ablation benchmarks: the framework is
agnostic to the bucketing scheme, and comparing schemes isolates how much
of the accuracy comes from the SIT machinery versus the histogram class.
"""

from __future__ import annotations

import numpy as np

from repro.histograms.base import Bucket, Histogram, values_and_frequencies
from repro.histograms.maxdiff import DEFAULT_MAX_BUCKETS


def build_equidepth(values: np.ndarray, max_buckets: int = DEFAULT_MAX_BUCKETS) -> Histogram:
    """Build an equi-depth histogram of ``values`` (NaN treated as NULL)."""
    if max_buckets < 1:
        raise ValueError("max_buckets must be >= 1")
    distinct, counts, nulls = values_and_frequencies(values)
    if distinct.size == 0:
        return Histogram([], null_count=nulls)
    if distinct.size <= max_buckets:
        buckets = [
            Bucket(float(v), float(v), float(c), 1.0)
            for v, c in zip(distinct, counts)
        ]
        return Histogram(buckets, null_count=nulls)

    total = counts.sum()
    target = total / max_buckets
    cumulative = np.cumsum(counts)
    buckets = []
    start = 0
    consumed = 0.0
    for bucket_index in range(max_buckets):
        if start >= distinct.size:
            break
        goal = consumed + target
        if bucket_index == max_buckets - 1:
            stop = distinct.size
        else:
            stop = int(np.searchsorted(cumulative, goal, side="left")) + 1
            stop = max(stop, start + 1)
            stop = min(stop, distinct.size)
        group_values = distinct[start:stop]
        group_counts = counts[start:stop]
        buckets.append(
            Bucket(
                float(group_values[0]),
                float(group_values[-1]),
                float(group_counts.sum()),
                float(group_values.size),
            )
        )
        consumed = float(cumulative[stop - 1])
        start = stop
    return Histogram(buckets, null_count=nulls)
