"""Unidimensional histograms (MaxDiff, equi-depth, equi-width) and the
histogram algebra (range estimation, equi-join, variation distance)."""

from repro.histograms.base import Bucket, Histogram, values_and_frequencies
from repro.histograms.equidepth import build_equidepth
from repro.histograms.equiwidth import build_equiwidth
from repro.histograms.maxdiff import DEFAULT_MAX_BUCKETS, build_maxdiff
from repro.histograms.multidim import GridHistogram2D, build_grid2d
from repro.histograms.wavelet import build_wavelet
from repro.histograms.operations import (
    HistogramJoinResult,
    compact,
    join_histograms,
    variation_distance,
)

__all__ = [
    "Bucket",
    "DEFAULT_MAX_BUCKETS",
    "Histogram",
    "HistogramJoinResult",
    "GridHistogram2D",
    "build_equidepth",
    "build_equiwidth",
    "build_grid2d",
    "build_maxdiff",
    "build_wavelet",
    "compact",
    "join_histograms",
    "values_and_frequencies",
    "variation_distance",
]
