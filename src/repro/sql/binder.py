"""Name resolution: SQL AST -> canonical predicates against a schema.

The binder resolves table/column references, normalizes comparison
operators into the library's closed-interval :class:`FilterPredicate`
form, merges satisfiable same-attribute ranges (so estimation does not
double-count one attribute), and rejects what the canonical SPJ form
cannot express (self-joins, non-equi joins).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.core.predicates import (
    Attribute,
    FilterPredicate,
    JoinPredicate,
    Predicate,
)
from repro.engine.expressions import Query
from repro.engine.schema import Schema
from repro.sql.parser import (
    BetweenPredicate,
    ColumnRef,
    Comparison,
    JoinComparison,
    SelectStatement,
    parse_select,
)


class BindingError(ValueError):
    """Raised when names do not resolve against the schema."""


@dataclass(frozen=True)
class BoundQuery:
    """A resolved query: canonical predicates plus the projection."""

    query: Query
    projection: tuple[Attribute, ...] | None  # None means SELECT *


class _Scope:
    """Binding-name -> table-name resolution for one FROM clause."""

    def __init__(self, statement: SelectStatement, schema: Schema):
        self.schema = schema
        self.tables: dict[str, str] = {}
        for ref in statement.tables:
            if ref.name not in schema.tables:
                raise BindingError(f"unknown table {ref.name!r}")
            binding = ref.binding
            if binding in self.tables:
                raise BindingError(f"duplicate table binding {binding!r}")
            self.tables[binding] = ref.name
        names = list(self.tables.values())
        if len(set(names)) != len(names):
            raise BindingError(
                "self-joins (the same table twice) are not supported by the "
                "canonical SPJ form"
            )

    def resolve(self, column: ColumnRef) -> Attribute:
        if column.table is not None:
            table = self.tables.get(column.table)
            if table is None:
                raise BindingError(f"unknown table or alias {column.table!r}")
            if column.column not in self.schema.table(table).columns:
                raise BindingError(f"table {table!r} has no column {column.column!r}")
            return Attribute(table, column.column)
        owners = [
            table
            for table in self.tables.values()
            if column.column in self.schema.table(table).columns
        ]
        if not owners:
            raise BindingError(f"unknown column {column.column!r}")
        if len(owners) > 1:
            raise BindingError(
                f"ambiguous column {column.column!r} "
                f"(in tables {', '.join(sorted(owners))})"
            )
        return Attribute(owners[0], column.column)


def _range_of(comparison: Comparison) -> tuple[float, float]:
    value = comparison.value
    if comparison.operator == "=":
        return value, value
    if comparison.operator == "<=":
        return -math.inf, value
    if comparison.operator == ">=":
        return value, math.inf
    if comparison.operator == "<":
        return -math.inf, math.nextafter(value, -math.inf)
    if comparison.operator == ">":
        return math.nextafter(value, math.inf), math.inf
    raise AssertionError(f"unexpected operator {comparison.operator!r}")


def bind(statement: SelectStatement, schema: Schema) -> BoundQuery:
    """Resolve ``statement`` against ``schema``."""
    scope = _Scope(statement, schema)

    # Accumulate filter ranges per attribute so `a > 5 AND a < 10` becomes
    # one predicate; keep genuinely empty intersections as two predicates
    # (the query is unsatisfiable, and the executor evaluates that exactly).
    ranges: dict[Attribute, tuple[float, float]] = {}
    unsatisfiable: list[Predicate] = []
    joins: set[JoinPredicate] = set()

    def add_range(attribute: Attribute, low: float, high: float) -> None:
        if low > high:
            raise BindingError(
                f"empty range for {attribute}: [{low:g}, {high:g}]"
            )
        if attribute in ranges:
            old_low, old_high = ranges[attribute]
            merged_low, merged_high = max(old_low, low), min(old_high, high)
            if merged_low > merged_high:
                unsatisfiable.append(FilterPredicate(attribute, low, high))
                return
            ranges[attribute] = (merged_low, merged_high)
        else:
            ranges[attribute] = (low, high)

    for predicate in statement.predicates:
        if isinstance(predicate, Comparison):
            low, high = _range_of(predicate)
            add_range(scope.resolve(predicate.column), low, high)
        elif isinstance(predicate, BetweenPredicate):
            add_range(scope.resolve(predicate.column), predicate.low, predicate.high)
        elif isinstance(predicate, JoinComparison):
            left = scope.resolve(predicate.left)
            right = scope.resolve(predicate.right)
            if left.table == right.table:
                raise BindingError(
                    f"self-join predicate {left} = {right} is not supported"
                )
            joins.add(JoinPredicate(left, right))
        else:  # pragma: no cover - parser produces only the three kinds
            raise AssertionError(f"unexpected predicate AST {predicate!r}")

    predicates: set[Predicate] = set(joins) | set(unsatisfiable)
    for attribute, (low, high) in ranges.items():
        predicates.add(FilterPredicate(attribute, low, high))

    tables = frozenset(scope.tables.values())
    projection: tuple[Attribute, ...] | None = None
    if statement.projection is not None:
        projection = tuple(scope.resolve(column) for column in statement.projection)
    return BoundQuery(Query(frozenset(predicates), tables=tables), projection)


def parse_query(sql: str, schema: Schema) -> Query:
    """One-call convenience: SQL text -> canonical :class:`Query`."""
    return bind(parse_select(sql), schema).query
