"""SQL front-end: parse conjunctive SELECT-FROM-WHERE statements into the
canonical SPJ predicate form the estimators operate on."""

from repro.sql.binder import BindingError, BoundQuery, bind, parse_query
from repro.sql.lexer import SQLSyntaxError, Token, TokenType, tokenize
from repro.sql.parser import (
    BetweenPredicate,
    ColumnRef,
    Comparison,
    JoinComparison,
    SelectStatement,
    TableRef,
    parse_select,
)

__all__ = [
    "BetweenPredicate",
    "BindingError",
    "BoundQuery",
    "ColumnRef",
    "Comparison",
    "JoinComparison",
    "SQLSyntaxError",
    "SelectStatement",
    "TableRef",
    "Token",
    "TokenType",
    "bind",
    "parse_query",
    "parse_select",
    "tokenize",
]
