"""Tokenizer for the SQL subset the front-end accepts.

The estimator operates on conjunctive SPJ queries, so the lexer covers
exactly what those need: identifiers (optionally qualified), numeric
literals, comparison operators, parentheses, commas, ``*`` and the
keyword set of SELECT/FROM/WHERE/AND/BETWEEN/AS.  Errors carry the
offending position for readable messages.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum


class TokenType(Enum):
    IDENTIFIER = "identifier"
    NUMBER = "number"
    KEYWORD = "keyword"
    OPERATOR = "operator"  # = <> < <= > >=
    COMMA = ","
    DOT = "."
    STAR = "*"
    LPAREN = "("
    RPAREN = ")"
    END = "end"


KEYWORDS = frozenset(
    ("select", "from", "where", "and", "between", "as", "on", "statistics", "create")
)

OPERATOR_CHARS = frozenset("=<>!")


@dataclass(frozen=True)
class Token:
    type: TokenType
    text: str
    position: int

    @property
    def lowered(self) -> str:
        return self.text.lower()

    def __str__(self) -> str:
        return f"{self.text!r}@{self.position}"


class SQLSyntaxError(ValueError):
    """Raised on malformed SQL, with the source position."""

    def __init__(self, message: str, position: int, source: str):
        pointer = " " * position + "^"
        super().__init__(f"{message} at position {position}\n  {source}\n  {pointer}")
        self.position = position


def tokenize(source: str) -> list[Token]:
    """Tokenize ``source``; always ends with an END token."""
    tokens: list[Token] = []
    index = 0
    length = len(source)
    while index < length:
        char = source[index]
        if char.isspace():
            index += 1
            continue
        if char == ",":
            tokens.append(Token(TokenType.COMMA, char, index))
            index += 1
        elif char == ".":
            tokens.append(Token(TokenType.DOT, char, index))
            index += 1
        elif char == "*":
            tokens.append(Token(TokenType.STAR, char, index))
            index += 1
        elif char == "(":
            tokens.append(Token(TokenType.LPAREN, char, index))
            index += 1
        elif char == ")":
            tokens.append(Token(TokenType.RPAREN, char, index))
            index += 1
        elif char in OPERATOR_CHARS:
            stop = index + 1
            while stop < length and source[stop] in OPERATOR_CHARS:
                stop += 1
            text = source[index:stop]
            if text not in ("=", "<", "<=", ">", ">=", "<>", "!="):
                raise SQLSyntaxError(f"unknown operator {text!r}", index, source)
            tokens.append(Token(TokenType.OPERATOR, text, index))
            index = stop
        elif char.isdigit() or (
            char in "+-" and index + 1 < length and source[index + 1].isdigit()
        ):
            stop = index + 1
            seen_dot = False
            seen_exponent = False
            while stop < length:
                nxt = source[stop]
                if nxt.isdigit():
                    stop += 1
                elif nxt == "." and not seen_dot and not seen_exponent:
                    seen_dot = True
                    stop += 1
                elif nxt in "eE" and not seen_exponent and stop + 1 < length:
                    follow = source[stop + 1]
                    if follow.isdigit() or follow in "+-":
                        seen_exponent = True
                        stop += 2
                    else:
                        break
                else:
                    break
            text = source[index:stop]
            try:
                float(text)
            except ValueError:
                raise SQLSyntaxError(f"bad numeric literal {text!r}", index, source)
            tokens.append(Token(TokenType.NUMBER, text, index))
            index = stop
        elif char.isalpha() or char == "_":
            stop = index + 1
            while stop < length and (source[stop].isalnum() or source[stop] == "_"):
                stop += 1
            text = source[index:stop]
            token_type = (
                TokenType.KEYWORD if text.lower() in KEYWORDS else TokenType.IDENTIFIER
            )
            tokens.append(Token(token_type, text, index))
            index = stop
        else:
            raise SQLSyntaxError(f"unexpected character {char!r}", index, source)
    tokens.append(Token(TokenType.END, "", length))
    return tokens
