"""Recursive-descent parser for the conjunctive SPJ SQL subset.

Grammar (keywords case-insensitive)::

    query      := SELECT projection FROM tables [WHERE condition]
    projection := '*' | column (',' column)*
    tables     := table_ref (',' table_ref)*
    table_ref  := identifier [[AS] identifier]
    condition  := predicate (AND predicate)*
    predicate  := column op literal
                | literal op column
                | column '=' column            -- equi-join
                | column BETWEEN literal AND literal
    column     := identifier ['.' identifier]
    op         := '=' | '<' | '<=' | '>' | '>='

The parser produces an untyped AST; name resolution against a schema and
conversion to the canonical predicate form happens in
:mod:`repro.sql.binder`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Union

from repro.sql.lexer import SQLSyntaxError, Token, TokenType, tokenize


@dataclass(frozen=True)
class ColumnRef:
    """A possibly-qualified column reference."""

    table: str | None
    column: str
    position: int

    def __str__(self) -> str:
        return f"{self.table}.{self.column}" if self.table else self.column


@dataclass(frozen=True)
class Literal:
    value: float
    position: int


@dataclass(frozen=True)
class Comparison:
    """``column op literal`` (normalized so the column is on the left)."""

    column: ColumnRef
    operator: str  # '=', '<', '<=', '>', '>='
    value: float


@dataclass(frozen=True)
class BetweenPredicate:
    column: ColumnRef
    low: float
    high: float


@dataclass(frozen=True)
class JoinComparison:
    left: ColumnRef
    right: ColumnRef


PredicateAST = Union[Comparison, BetweenPredicate, JoinComparison]


@dataclass(frozen=True)
class TableRef:
    name: str
    alias: str | None

    @property
    def binding(self) -> str:
        return self.alias if self.alias else self.name


@dataclass(frozen=True)
class SelectStatement:
    projection: tuple[ColumnRef, ...] | None  # None means '*'
    tables: tuple[TableRef, ...]
    predicates: tuple[PredicateAST, ...]


_MIRROR = {"<": ">", "<=": ">=", ">": "<", ">=": "<=", "=": "="}


class _Parser:
    def __init__(self, source: str):
        self.source = source
        self.tokens = tokenize(source)
        self.index = 0

    # -- token helpers --------------------------------------------------
    def peek(self) -> Token:
        return self.tokens[self.index]

    def advance(self) -> Token:
        token = self.tokens[self.index]
        self.index += 1
        return token

    def error(self, message: str, token: Token | None = None) -> SQLSyntaxError:
        token = token if token is not None else self.peek()
        return SQLSyntaxError(message, token.position, self.source)

    def expect_keyword(self, keyword: str) -> Token:
        token = self.advance()
        if token.type is not TokenType.KEYWORD or token.lowered != keyword:
            raise self.error(f"expected {keyword.upper()}", token)
        return token

    def accept_keyword(self, keyword: str) -> bool:
        token = self.peek()
        if token.type is TokenType.KEYWORD and token.lowered == keyword:
            self.advance()
            return True
        return False

    def expect(self, token_type: TokenType) -> Token:
        token = self.advance()
        if token.type is not token_type:
            raise self.error(f"expected {token_type.value}", token)
        return token

    # -- grammar --------------------------------------------------------
    def parse_select(self) -> SelectStatement:
        self.expect_keyword("select")
        projection = self.parse_projection()
        self.expect_keyword("from")
        tables = self.parse_tables()
        predicates: tuple = ()
        if self.accept_keyword("where"):
            predicates = self.parse_condition()
        end = self.advance()
        if end.type is not TokenType.END:
            raise self.error("unexpected trailing input", end)
        return SelectStatement(projection, tables, predicates)

    def parse_projection(self) -> tuple[ColumnRef, ...] | None:
        if self.peek().type is TokenType.STAR:
            self.advance()
            return None
        columns = [self.parse_column()]
        while self.peek().type is TokenType.COMMA:
            self.advance()
            columns.append(self.parse_column())
        return tuple(columns)

    def parse_tables(self) -> tuple[TableRef, ...]:
        tables = [self.parse_table_ref()]
        while self.peek().type is TokenType.COMMA:
            self.advance()
            tables.append(self.parse_table_ref())
        return tuple(tables)

    def parse_table_ref(self) -> TableRef:
        name = self.expect(TokenType.IDENTIFIER).text
        alias = None
        if self.accept_keyword("as"):
            alias = self.expect(TokenType.IDENTIFIER).text
        elif self.peek().type is TokenType.IDENTIFIER:
            alias = self.advance().text
        return TableRef(name, alias)

    def parse_condition(self) -> tuple[PredicateAST, ...]:
        predicates = [self.parse_predicate()]
        while self.accept_keyword("and"):
            predicates.append(self.parse_predicate())
        return tuple(predicates)

    def parse_predicate(self) -> PredicateAST:
        if self.peek().type is TokenType.NUMBER:
            # literal op column
            literal = self.parse_literal()
            operator = self.expect(TokenType.OPERATOR).text
            column = self.parse_column()
            return Comparison(column, _mirror_operator(operator, self), literal.value)
        column = self.parse_column()
        if self.accept_keyword("between"):
            low = self.parse_literal()
            self.expect_keyword("and")
            high = self.parse_literal()
            return BetweenPredicate(column, low.value, high.value)
        operator_token = self.expect(TokenType.OPERATOR)
        operator = operator_token.text
        if operator in ("<>", "!="):
            raise self.error("inequality predicates are not supported", operator_token)
        if self.peek().type is TokenType.NUMBER:
            literal = self.parse_literal()
            return Comparison(column, operator, literal.value)
        other = self.parse_column()
        if operator != "=":
            raise self.error(
                "only equi-joins between columns are supported", operator_token
            )
        return JoinComparison(column, other)

    def parse_column(self) -> ColumnRef:
        first = self.expect(TokenType.IDENTIFIER)
        if self.peek().type is TokenType.DOT:
            self.advance()
            second = self.expect(TokenType.IDENTIFIER)
            return ColumnRef(first.text, second.text, first.position)
        return ColumnRef(None, first.text, first.position)

    def parse_literal(self) -> Literal:
        token = self.expect(TokenType.NUMBER)
        return Literal(float(token.text), token.position)


def _mirror_operator(operator: str, parser: _Parser) -> str:
    if operator in ("<>", "!="):
        raise parser.error("inequality predicates are not supported")
    return _MIRROR[operator]


def parse_select(source: str) -> SelectStatement:
    """Parse a SELECT statement of the supported subset."""
    return _Parser(source).parse_select()
