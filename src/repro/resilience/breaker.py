"""A per-snapshot circuit breaker for :class:`EstimationService`.

The failure domain the service actually has is *the statistics
snapshot*: a refresh that publishes a corrupt pool makes every worker
that pins it fault, while the previous snapshot was fine.  So the
breaker counts worker faults **per snapshot version** inside a sliding
window; when one version accumulates ``threshold`` faults the breaker
*trips on that version* and the service rolls sessions back to the
last-known-good snapshot.  A new catalog version (the operator fixed
the pool and refreshed) resets the trip — classic half-open semantics,
keyed by version instead of wall-clock probes because versions are the
unit that changes when the operator intervenes.

Thread-safe; the clock is injectable for deterministic tests.
"""

from __future__ import annotations

import threading
import time
from typing import Callable


class CircuitBreaker:
    """Trip per snapshot version after repeated faults in a window."""

    def __init__(
        self,
        threshold: int = 3,
        window_s: float = 30.0,
        clock: Callable[[], float] = time.monotonic,
    ):
        if threshold < 1:
            raise ValueError("threshold must be >= 1")
        self.threshold = threshold
        self.window_s = window_s
        self._clock = clock
        self._lock = threading.Lock()
        #: version -> fault timestamps inside the window
        self._faults: dict[int, list[float]] = {}
        #: versions currently tripped
        self._tripped: set[int] = set()
        self._trips = 0

    # ------------------------------------------------------------------
    def record_fault(self, version: int) -> bool:
        """Record one worker fault against ``version``.

        Returns ``True`` iff this fault *trips* the breaker (the caller
        should roll back to the last-known-good snapshot).
        """
        now = self._clock()
        with self._lock:
            if version in self._tripped:
                return False
            window = self._faults.setdefault(version, [])
            window.append(now)
            cutoff = now - self.window_s
            while window and window[0] < cutoff:
                window.pop(0)
            if len(window) >= self.threshold:
                self._tripped.add(version)
                self._trips += 1
                del self._faults[version]
                return True
            return False

    def is_tripped(self, version: int) -> bool:
        with self._lock:
            return version in self._tripped

    def reset(self, version: int | None = None) -> None:
        """Clear trip state (``None`` → everything)."""
        with self._lock:
            if version is None:
                self._tripped.clear()
                self._faults.clear()
            else:
                self._tripped.discard(version)
                self._faults.pop(version, None)

    # ------------------------------------------------------------------
    @property
    def trip_count(self) -> int:
        with self._lock:
            return self._trips

    def as_dict(self) -> dict[str, float]:
        with self._lock:
            out: dict[str, float] = {}
            if self._trips:
                out["breaker_trips"] = float(self._trips)
            if self._tripped:
                out["breaker_open"] = float(len(self._tripped))
            return out


__all__ = ["CircuitBreaker"]
