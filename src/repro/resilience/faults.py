"""Deterministic fault injection for the estimation stack.

A production estimator does not get to choose when a SIT goes missing
mid-refresh, a pool file tears on disk or a worker dies under load — but
a *test* of the estimator must be able to choose exactly that, and
reproducibly.  This module provides the seeded chaos layer:

* **typed faults** (:class:`SITUnavailable`, :class:`HistogramCorrupt`,
  :class:`WorkerCrash`, :class:`StorageTorn`) — the vocabulary every
  degradation/self-healing path in the stack speaks;
* **named injection points** threaded through the hot path (SIT match,
  histogram load/join, snapshot pin, worker batch execution, catalog
  save/load).  Each point costs one module-global load plus a ``None``
  check when no plan is armed, so the zero-fault path stays within the
  serving latency budget;
* a seeded :class:`FaultPlan` of :class:`FaultRule` entries.  Rules fire
  by probability (drawn from the plan's private ``random.Random(seed)``)
  with optional warm-up (``after``), trigger budget (``max_fires``) and a
  substring ``match`` filter on the injection context, so a plan can
  target *one* SIT, *one* snapshot version, or everything at once.  Two
  runs with the same seed and the same call sequence inject the same
  faults — the chaos suite's determinism property.

Arming is process-global (:func:`arm` / :func:`disarm` / the
:func:`armed` context manager): injection points live in modules that
must not know about service objects, and chaos tests want one switch for
the whole stack.
"""

from __future__ import annotations

import json
import pathlib
import threading
from contextlib import contextmanager
from dataclasses import dataclass, field
from random import Random
from typing import Iterable, Iterator, Mapping, Sequence

# ----------------------------------------------------------------------
# Injection points (the names a FaultRule's ``point`` may use)
# ----------------------------------------------------------------------
#: candidate-SIT matching (``ViewMatcher``): a matched SIT "goes missing"
POINT_SIT_MATCH = "sit_match"
#: histogram load/join inside ``estimate_factor``: a histogram is corrupt
POINT_HISTOGRAM_JOIN = "histogram_join"
#: pinning a catalog snapshot when a session/worker starts
POINT_SNAPSHOT_PIN = "snapshot_pin"
#: worker batch execution in :class:`repro.service.EstimationService`
POINT_WORKER_BATCH = "worker_batch"
#: catalog persistence (:func:`repro.stats.io.save_document`)
POINT_CATALOG_SAVE = "catalog_save"
#: catalog restore (:func:`repro.stats.io.load_document`)
POINT_CATALOG_LOAD = "catalog_load"
#: applying one coalesced invalidation epoch in the ingest pipeline
POINT_INGEST_APPLY = "ingest_apply"
#: incremental refresh racing a concurrent invalidation storm
POINT_REFRESH_DURING_STORM = "refresh_during_storm"
#: cluster hot-swap fan-out while writes are arriving
POINT_SWAP_UNDER_WRITE = "swap_under_write"

#: every injection point threaded through the stack
INJECTION_POINTS = (
    POINT_SIT_MATCH,
    POINT_HISTOGRAM_JOIN,
    POINT_SNAPSHOT_PIN,
    POINT_WORKER_BATCH,
    POINT_CATALOG_SAVE,
    POINT_CATALOG_LOAD,
    POINT_INGEST_APPLY,
    POINT_REFRESH_DURING_STORM,
    POINT_SWAP_UNDER_WRITE,
)


# ----------------------------------------------------------------------
# Typed faults
# ----------------------------------------------------------------------
class EstimationFault(Exception):
    """Base of every typed fault the resilience layer handles.

    ``sit_name`` identifies the statistic the fault took down (``None``
    for faults without a SIT identity, e.g. a worker crash); ``injected``
    is ``True`` when a :class:`FaultPlan` raised it, ``False`` for real
    faults wrapped into the same vocabulary.
    """

    kind = "fault"

    def __init__(
        self,
        message: str = "",
        *,
        sit_name: str | None = None,
        point: str | None = None,
        injected: bool = False,
    ):
        super().__init__(message or self.kind)
        self.sit_name = sit_name
        self.point = point
        self.injected = injected


class SITUnavailable(EstimationFault):
    """A matched SIT is unavailable (dropped mid-refresh, evicted, ...)."""

    kind = "sit_unavailable"


class HistogramCorrupt(EstimationFault):
    """A SIT's histogram payload cannot be used (torn read, bad bytes)."""

    kind = "histogram_corrupt"


class WorkerCrash(EstimationFault):
    """An estimation worker died mid-batch."""

    kind = "worker_crash"


class StorageTorn(EstimationFault):
    """Catalog storage failed mid-operation (torn write, short read)."""

    kind = "storage_torn"


#: fault kind -> class, for plan documents (``{"fault": "sit_unavailable"}``)
FAULTS_BY_KIND: Mapping[str, type[EstimationFault]] = {
    cls.kind: cls
    for cls in (SITUnavailable, HistogramCorrupt, WorkerCrash, StorageTorn)
}


# ----------------------------------------------------------------------
# Fault rules and plans
# ----------------------------------------------------------------------
@dataclass
class FaultRule:
    """One armed fault: *where* it can fire, *what* it raises, *how often*.

    ``probability`` is the per-evaluation firing chance; ``after`` skips
    the first N eligible evaluations (warm-up); ``max_fires`` caps the
    total number of firings (``None`` = unbounded); ``match`` restricts
    the rule to injection contexts whose detail string contains it (e.g.
    a SIT's name or a snapshot version).
    """

    point: str
    fault: str = SITUnavailable.kind
    probability: float = 1.0
    max_fires: int | None = 1
    after: int = 0
    match: str | None = None
    #: mutable firing state (not part of the rule's identity)
    evaluations: int = field(default=0, compare=False)
    fires: int = field(default=0, compare=False)

    def __post_init__(self) -> None:
        if self.point not in INJECTION_POINTS:
            raise ValueError(
                f"unknown injection point {self.point!r}; "
                f"expected one of {INJECTION_POINTS}"
            )
        if self.fault not in FAULTS_BY_KIND:
            raise ValueError(
                f"unknown fault kind {self.fault!r}; "
                f"expected one of {tuple(FAULTS_BY_KIND)}"
            )
        if not 0.0 <= self.probability <= 1.0:
            raise ValueError("probability must be in [0, 1]")
        if self.max_fires is not None and self.max_fires < 0:
            raise ValueError("max_fires must be >= 0 (or None)")
        if self.after < 0:
            raise ValueError("after must be >= 0")

    @property
    def exhausted(self) -> bool:
        return self.max_fires is not None and self.fires >= self.max_fires

    def to_dict(self) -> dict:
        out: dict = {
            "point": self.point,
            "fault": self.fault,
            "probability": self.probability,
            "max_fires": self.max_fires,
        }
        if self.after:
            out["after"] = self.after
        if self.match is not None:
            out["match"] = self.match
        return out

    @classmethod
    def from_dict(cls, data: Mapping) -> "FaultRule":
        return cls(
            point=str(data["point"]),
            fault=str(data.get("fault", SITUnavailable.kind)),
            probability=float(data.get("probability", 1.0)),
            max_fires=(
                None
                if data.get("max_fires", 1) is None
                else int(data.get("max_fires", 1))
            ),
            after=int(data.get("after", 0)),
            match=(
                None if data.get("match") is None else str(data["match"])
            ),
        )


class FaultPlan:
    """A seeded, thread-safe set of armed :class:`FaultRule` entries.

    Given the same seed and the same sequence of :meth:`check` calls, a
    plan injects the identical faults — every probabilistic decision is
    drawn from the plan's private ``random.Random(seed)`` in call order.
    """

    def __init__(self, rules: Iterable[FaultRule] = (), seed: int = 0):
        self.rules: list[FaultRule] = list(rules)
        self.seed = int(seed)
        self._rng = Random(self.seed)
        self._lock = threading.Lock()
        #: (point, kind) -> times fired
        self.fired: dict[tuple[str, str], int] = {}

    # ------------------------------------------------------------------
    def check(
        self,
        point: str,
        detail: str = "",
        sits: "Sequence[object] | None" = None,
    ) -> None:
        """Evaluate every armed rule for ``point``; raise on a firing.

        ``detail`` is matched against rules' ``match`` substrings;
        ``sits`` (when given) are the statistics in play at the point —
        the fired fault deterministically picks one (by the plan's RNG
        over the str-sorted names) and carries it as ``sit_name`` so the
        degradation ladder knows what to exclude.
        """
        fault = self.evaluate(point, detail=detail, sits=sits)
        if fault is not None:
            raise fault

    def evaluate(
        self,
        point: str,
        detail: str = "",
        sits: "Sequence[object] | None" = None,
    ) -> EstimationFault | None:
        """Like :meth:`check` but returns the fault instead of raising."""
        with self._lock:
            names: list[str] | None = None
            for rule in self.rules:
                if rule.point != point or rule.exhausted:
                    continue
                if rule.match is not None:
                    if names is None:
                        names = sorted(str(s) for s in (sits or ()))
                    haystack = detail + "\x00" + "\x00".join(names)
                    if rule.match not in haystack:
                        continue
                rule.evaluations += 1
                if rule.evaluations <= rule.after:
                    continue
                # always draw, so the decision sequence (and therefore
                # every later decision) is a pure function of the seed
                # and the call order
                draw = self._rng.random()
                if draw >= rule.probability:
                    continue
                rule.fires += 1
                key = (point, rule.fault)
                self.fired[key] = self.fired.get(key, 0) + 1
                return self._build_fault(rule, point, detail, sits, names)
        return None

    def _build_fault(
        self,
        rule: FaultRule,
        point: str,
        detail: str,
        sits: "Sequence[object] | None",
        names: list[str] | None,
    ) -> EstimationFault:
        fault_cls = FAULTS_BY_KIND[rule.fault]
        sit_name: str | None = None
        if sits:
            if names is None:
                names = sorted(str(s) for s in sits)
            if rule.match is not None:
                matching = [n for n in names if rule.match in n]
                candidates = matching or names
            else:
                candidates = names
            sit_name = candidates[self._rng.randrange(len(candidates))]
        message = f"injected {rule.fault} at {point}"
        if sit_name is not None:
            message += f" ({sit_name})"
        elif detail:
            message += f" ({detail})"
        return fault_cls(
            message, sit_name=sit_name, point=point, injected=True
        )

    # ------------------------------------------------------------------
    @property
    def total_fires(self) -> int:
        with self._lock:
            return sum(self.fired.values())

    def stats(self) -> dict[str, int]:
        """``{"point.kind": fires}`` counters for observability."""
        with self._lock:
            return {
                f"{point}.{kind}": count
                for (point, kind), count in sorted(self.fired.items())
            }

    def reset(self) -> None:
        """Rewind the plan to its just-built state (same seed)."""
        with self._lock:
            self._rng = Random(self.seed)
            self.fired.clear()
            for rule in self.rules:
                rule.evaluations = 0
                rule.fires = 0

    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        return {
            "seed": self.seed,
            "rules": [rule.to_dict() for rule in self.rules],
        }

    @classmethod
    def from_dict(cls, data: Mapping) -> "FaultPlan":
        return cls(
            rules=[FaultRule.from_dict(r) for r in data.get("rules", ())],
            seed=int(data.get("seed", 0)),
        )

    @classmethod
    def from_json(cls, text: str) -> "FaultPlan":
        payload = json.loads(text)
        if not isinstance(payload, dict):
            raise ValueError("a fault plan document must be a JSON object")
        return cls.from_dict(payload)

    @classmethod
    def from_file(cls, path: "str | pathlib.Path") -> "FaultPlan":
        return cls.from_json(pathlib.Path(path).read_text())

    @classmethod
    def parse(cls, spec: str) -> "FaultPlan":
        """Inline JSON (starts with ``{``) or a path to a JSON file —
        the CLI's ``--fault-plan`` argument."""
        spec = spec.strip()
        if spec.startswith("{"):
            return cls.from_json(spec)
        return cls.from_file(spec)

    def __len__(self) -> int:
        return len(self.rules)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"FaultPlan(seed={self.seed}, rules={len(self.rules)})"


# ----------------------------------------------------------------------
# Process-global arming
# ----------------------------------------------------------------------
_ACTIVE: FaultPlan | None = None


def active() -> FaultPlan | None:
    """The armed plan, or ``None``.  Injection points call this first;
    the disarmed cost is one global load and a ``None`` check."""
    return _ACTIVE


def arm(plan: FaultPlan) -> FaultPlan:
    """Arm ``plan`` process-wide; returns it for chaining."""
    global _ACTIVE
    _ACTIVE = plan
    return plan


def disarm() -> None:
    global _ACTIVE
    _ACTIVE = None


@contextmanager
def armed(plan: FaultPlan) -> Iterator[FaultPlan]:
    """``with armed(plan): ...`` — scoped arming for tests."""
    previous = _ACTIVE
    arm(plan)
    try:
        yield plan
    finally:
        if previous is None:
            disarm()
        else:
            arm(previous)


def inject(
    point: str,
    detail: str = "",
    sits: "Sequence[object] | None" = None,
) -> None:
    """Evaluate the armed plan (if any) at ``point``; raises on firing."""
    plan = _ACTIVE
    if plan is None:
        return
    plan.check(point, detail=detail, sits=sits)


__all__ = [
    "EstimationFault",
    "FAULTS_BY_KIND",
    "FaultPlan",
    "FaultRule",
    "HistogramCorrupt",
    "INJECTION_POINTS",
    "POINT_CATALOG_LOAD",
    "POINT_CATALOG_SAVE",
    "POINT_HISTOGRAM_JOIN",
    "POINT_INGEST_APPLY",
    "POINT_REFRESH_DURING_STORM",
    "POINT_SIT_MATCH",
    "POINT_SNAPSHOT_PIN",
    "POINT_SWAP_UNDER_WRITE",
    "POINT_WORKER_BATCH",
    "SITUnavailable",
    "StorageTorn",
    "WorkerCrash",
    "active",
    "arm",
    "armed",
    "disarm",
    "inject",
]
