"""The graceful-degradation ladder: always answer, with the best
statistics still standing.

When a matched SIT or its histogram fails mid-estimation the estimator
does not fail the query; it walks down the ladder:

* **level 0** — the normal ``getSelectivity`` path, all statistics
  available (zero overhead: the happy path returns the DP's result
  object untouched);
* **level 1** — *re-plan*: the failed SITs are excluded from the pool
  and the DP re-runs over what is left, so the estimate still uses every
  healthy conditioned statistic (excluded SITs are reported);
* **level 2** — *base statistics + independence*: the traditional
  optimizer estimate over base-table histograms only (the paper's
  ``noSit`` variant), reached when re-planning keeps faulting or leaves
  an attribute uncovered;
* **level 3** — *fallback estimator*: a peer backend (typically the
  guaranteed-sampling estimator of :mod:`repro.estimators.sampling`,
  wired in by :func:`repro.estimators.create_estimator`) answers from
  statistics independent of the failed SIT machinery, carrying its
  ``backend`` tag and ``error_bound`` through the result.  When no
  fallback estimator is configured — or it fails too — the rung
  terminates in the System-R style *magic constants*: crude but typed,
  deterministic, and never an exception.

``strict=True`` restores fail-fast semantics (faults propagate to the
caller), which is what the chaos tests use to prove injection reaches
each point.

Level semantics are *monotone in the set of failed statistics*: failing
a superset of SITs can only keep the level equal or push it higher —
the property suite pins this.
"""

from __future__ import annotations

import threading
from typing import TYPE_CHECKING, Iterable

from repro.resilience.faults import EstimationFault

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.get_selectivity import EstimationResult

# Degradation levels
LEVEL_NORMAL = 0
LEVEL_REPLAN = 1
LEVEL_BASE_INDEPENDENCE = 2
LEVEL_MAGIC = 3
#: level 3 now covers any last-resort backend, not just magic constants
LEVEL_FALLBACK = LEVEL_MAGIC
LEVELS = (
    LEVEL_NORMAL,
    LEVEL_REPLAN,
    LEVEL_BASE_INDEPENDENCE,
    LEVEL_MAGIC,
)

#: level -> human name (protocol + EXPLAIN rendering)
LEVEL_NAMES = {
    LEVEL_NORMAL: "normal",
    LEVEL_REPLAN: "replan",
    LEVEL_BASE_INDEPENDENCE: "base_independence",
    LEVEL_MAGIC: "magic",
}

#: the classical magic selectivity constants (level 3)
MAGIC_FILTER_SELECTIVITY = 1.0 / 3.0
MAGIC_JOIN_SELECTIVITY = 1.0 / 10.0


def magic_selectivity(predicates: Iterable) -> float:
    """The level-3 estimate: fixed constants under full independence.

    A pure, deterministic function of the predicate set — no statistics
    are touched, so it cannot fault.
    """
    selectivity = 1.0
    for predicate in sorted(predicates, key=str):
        selectivity *= (
            MAGIC_JOIN_SELECTIVITY
            if predicate.is_join
            else MAGIC_FILTER_SELECTIVITY
        )
    return selectivity


def magic_result(
    predicates: frozenset, excluded_sits: tuple[str, ...] = ()
) -> "EstimationResult":
    """The level-3 :class:`EstimationResult` for ``predicates``.

    ``error`` is the full independence-assumption count (one per
    predicate) — the honest statement that *every* assumption was made.
    """
    # local import: resilience must stay importable from inside the core
    # modules that host injection points (no cycle at import time)
    from repro.core.get_selectivity import Decomposition, EstimationResult

    return EstimationResult(
        selectivity=magic_selectivity(predicates),
        error=float(len(predicates)),
        decomposition=Decomposition(()),
        matches=(),
        coverage=0.0,
        degradation_level=LEVEL_MAGIC,
        excluded_sits=excluded_sits,
        backend="magic",
    )


class ResilienceTelemetry:
    """Thread-safe counters for the ``resilience`` snapshot namespace.

    Counts degradation outcomes per level and handled faults per typed
    kind; mergeable so sessions/services can fold worker telemetry up.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._levels: dict[int, int] = {}
        self._faults: dict[str, int] = {}
        self._replans = 0

    # ------------------------------------------------------------------
    def record_level(self, level: int) -> None:
        with self._lock:
            self._levels[level] = self._levels.get(level, 0) + 1

    def record_fault(self, fault: BaseException) -> None:
        kind = getattr(fault, "kind", None) or "error"
        with self._lock:
            self._faults[kind] = self._faults.get(kind, 0) + 1

    def record_replan(self) -> None:
        with self._lock:
            self._replans += 1

    # ------------------------------------------------------------------
    @property
    def degraded_queries(self) -> int:
        """Queries answered below level 0."""
        with self._lock:
            return sum(
                count
                for level, count in self._levels.items()
                if level > LEVEL_NORMAL
            )

    def level_count(self, level: int) -> int:
        with self._lock:
            return self._levels.get(level, 0)

    def fault_count(self, kind: str) -> int:
        with self._lock:
            return self._faults.get(kind, 0)

    # ------------------------------------------------------------------
    def merge(self, other: "ResilienceTelemetry") -> None:
        with other._lock:
            levels = dict(other._levels)
            faults = dict(other._faults)
            replans = other._replans
        with self._lock:
            for level, count in levels.items():
                self._levels[level] = self._levels.get(level, 0) + count
            for kind, count in faults.items():
                self._faults[kind] = self._faults.get(kind, 0) + count
            self._replans += replans

    def as_dict(self) -> dict[str, float]:
        """The ``resilience`` namespace entries this telemetry owns."""
        with self._lock:
            out: dict[str, float] = {}
            for level, count in sorted(self._levels.items()):
                out[f"degraded_level{level}"] = float(count)
            for kind, count in sorted(self._faults.items()):
                out[f"faults_{kind}"] = float(count)
            if self._replans:
                out["replans"] = float(self._replans)
            return out

    def __bool__(self) -> bool:
        with self._lock:
            return bool(self._levels or self._faults or self._replans)


__all__ = [
    "EstimationFault",
    "LEVELS",
    "LEVEL_BASE_INDEPENDENCE",
    "LEVEL_FALLBACK",
    "LEVEL_MAGIC",
    "LEVEL_NAMES",
    "LEVEL_NORMAL",
    "LEVEL_REPLAN",
    "MAGIC_FILTER_SELECTIVITY",
    "MAGIC_JOIN_SELECTIVITY",
    "ResilienceTelemetry",
    "magic_result",
    "magic_selectivity",
]
