"""Client-side retry: exponential backoff with full jitter.

The policy follows the AWS architecture-blog recipe: the *cap* of the
sleep window doubles per attempt (``base * 2**attempt``, clamped to
``max_backoff``) and the actual sleep is drawn uniformly from
``[0, cap]`` — *full* jitter, which empirically de-correlates retry
storms far better than equal-jitter or raw exponential.

Determinism for tests: the policy takes an optional ``rng`` (a
``random.Random``) and a ``sleep`` callable, so a test can pin the seed
and capture the sleeps without waiting on a wall clock.

The *retry budget* is per call: :func:`call_with_retries` gives up after
``policy.max_attempts`` total attempts (initial try included) and
re-raises the last failure, so a persistently failing server costs a
bounded amount of client time.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass, field
from typing import Callable, TypeVar

T = TypeVar("T")


@dataclass(frozen=True)
class RetryPolicy:
    """Budget + backoff shape for one logical client call.

    ``max_attempts`` counts the initial try: ``max_attempts=1`` means
    *no* retries; ``max_attempts=4`` means up to three retries.
    """

    max_attempts: int = 4
    base_backoff_s: float = 0.05
    max_backoff_s: float = 2.0

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if self.base_backoff_s < 0 or self.max_backoff_s < 0:
            raise ValueError("backoff times must be >= 0")

    # ------------------------------------------------------------------
    def backoff(self, attempt: int, rng: random.Random) -> float:
        """Full-jitter sleep before retry number ``attempt`` (0-based)."""
        cap = min(self.max_backoff_s, self.base_backoff_s * (2.0 ** attempt))
        return rng.uniform(0.0, cap)


#: a policy that never retries (the client default stays opt-in safe
#: for non-idempotent callers).
NO_RETRIES = RetryPolicy(max_attempts=1)


@dataclass
class RetryTelemetry:
    """Counts folded into the client's ``service`` namespace."""

    attempts: int = 0
    retries: int = 0
    gave_up: int = 0
    sleeps: list[float] = field(default_factory=list)

    def as_dict(self) -> dict[str, float]:
        out = {
            "retry_attempts": float(self.attempts),
            "retries": float(self.retries),
        }
        if self.gave_up:
            out["retry_exhausted"] = float(self.gave_up)
        return out


def call_with_retries(
    fn: Callable[[], T],
    policy: RetryPolicy,
    *,
    retryable: Callable[[BaseException], bool],
    rng: random.Random | None = None,
    sleep: Callable[[float], None] = time.sleep,
    telemetry: RetryTelemetry | None = None,
) -> T:
    """Run ``fn`` under ``policy``; retry while ``retryable(exc)``.

    Non-retryable failures propagate immediately.  When the budget is
    exhausted the *last* failure is re-raised unchanged, so callers see
    the same typed error they would without retries.
    """
    rng = rng if rng is not None else random.Random()
    last: BaseException | None = None
    for attempt in range(policy.max_attempts):
        if telemetry is not None:
            telemetry.attempts += 1
        try:
            return fn()
        except BaseException as exc:
            if not retryable(exc):
                raise
            last = exc
            if attempt + 1 >= policy.max_attempts:
                if telemetry is not None:
                    telemetry.gave_up += 1
                raise
            pause = policy.backoff(attempt, rng)
            if telemetry is not None:
                telemetry.retries += 1
                telemetry.sleeps.append(pause)
            if pause > 0.0:
                sleep(pause)
    raise last if last is not None else RuntimeError("unreachable")


__all__ = [
    "NO_RETRIES",
    "RetryPolicy",
    "RetryTelemetry",
    "call_with_retries",
]
