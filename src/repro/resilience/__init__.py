"""``repro.resilience`` — fault injection, degradation, self-healing.

Four pieces, each usable alone:

* :mod:`repro.resilience.faults` — typed faults, named injection
  points, and the seeded :class:`FaultPlan` that arms them (the chaos
  layer is *deterministic*: same seed + call order → same faults);
* :mod:`repro.resilience.ladder` — the graceful-degradation ladder
  levels and the :class:`ResilienceTelemetry` counters behind the
  ``resilience`` StatsSnapshot namespace;
* :mod:`repro.resilience.retry` — client-side exponential backoff with
  full jitter under a bounded per-call retry budget;
* :mod:`repro.resilience.breaker` — the per-snapshot circuit breaker
  the service uses to roll back to a last-known-good snapshot.
"""

from repro.resilience.breaker import CircuitBreaker
from repro.resilience.faults import (
    EstimationFault,
    FAULTS_BY_KIND,
    FaultPlan,
    FaultRule,
    HistogramCorrupt,
    INJECTION_POINTS,
    POINT_CATALOG_LOAD,
    POINT_CATALOG_SAVE,
    POINT_HISTOGRAM_JOIN,
    POINT_INGEST_APPLY,
    POINT_REFRESH_DURING_STORM,
    POINT_SIT_MATCH,
    POINT_SNAPSHOT_PIN,
    POINT_SWAP_UNDER_WRITE,
    POINT_WORKER_BATCH,
    SITUnavailable,
    StorageTorn,
    WorkerCrash,
    active,
    arm,
    armed,
    disarm,
    inject,
)
from repro.resilience.ladder import (
    LEVELS,
    LEVEL_BASE_INDEPENDENCE,
    LEVEL_MAGIC,
    LEVEL_NAMES,
    LEVEL_NORMAL,
    LEVEL_REPLAN,
    MAGIC_FILTER_SELECTIVITY,
    MAGIC_JOIN_SELECTIVITY,
    ResilienceTelemetry,
    magic_result,
    magic_selectivity,
)
from repro.resilience.retry import (
    NO_RETRIES,
    RetryPolicy,
    RetryTelemetry,
    call_with_retries,
)

__all__ = [
    "CircuitBreaker",
    "EstimationFault",
    "FAULTS_BY_KIND",
    "FaultPlan",
    "FaultRule",
    "HistogramCorrupt",
    "INJECTION_POINTS",
    "LEVELS",
    "LEVEL_BASE_INDEPENDENCE",
    "LEVEL_MAGIC",
    "LEVEL_NAMES",
    "LEVEL_NORMAL",
    "LEVEL_REPLAN",
    "MAGIC_FILTER_SELECTIVITY",
    "MAGIC_JOIN_SELECTIVITY",
    "NO_RETRIES",
    "POINT_CATALOG_LOAD",
    "POINT_CATALOG_SAVE",
    "POINT_HISTOGRAM_JOIN",
    "POINT_INGEST_APPLY",
    "POINT_REFRESH_DURING_STORM",
    "POINT_SIT_MATCH",
    "POINT_SNAPSHOT_PIN",
    "POINT_SWAP_UNDER_WRITE",
    "POINT_WORKER_BATCH",
    "ResilienceTelemetry",
    "RetryPolicy",
    "RetryTelemetry",
    "SITUnavailable",
    "StorageTorn",
    "WorkerCrash",
    "active",
    "arm",
    "armed",
    "call_with_retries",
    "disarm",
    "inject",
    "magic_result",
    "magic_selectivity",
]
