"""Cascades-style optimizer substrate: memo, transformation rules,
exploration, the Section 4.2 getSelectivity coupling, and a cost model."""

from repro.optimizer.cost import CostModel, PlanNode
from repro.optimizer.execution import execute_plan
from repro.optimizer.explorer import (
    ExplorationResult,
    explore,
    subplan_predicate_sets,
)
from repro.optimizer.integration import GroupEstimate, MemoCoupledEstimator
from repro.optimizer.memo import Entry, Group, GroupKey, Memo, Operator, initial_plan
from repro.optimizer.rules import (
    DEFAULT_RULES,
    JoinAssociativity,
    JoinCommutativity,
    Rule,
    SelectCommutativity,
    SelectPullUp,
    SelectPushDown,
)

__all__ = [
    "CostModel",
    "DEFAULT_RULES",
    "Entry",
    "ExplorationResult",
    "Group",
    "GroupEstimate",
    "GroupKey",
    "JoinAssociativity",
    "JoinCommutativity",
    "Memo",
    "MemoCoupledEstimator",
    "Operator",
    "PlanNode",
    "Rule",
    "SelectCommutativity",
    "SelectPullUp",
    "SelectPushDown",
    "execute_plan",
    "explore",
    "initial_plan",
    "subplan_predicate_sets",
]
