"""Transformation rules for the Cascades-style explorer (Section 4.1).

Rules are antecedent/consequent patterns over memo entries.  The set below
is the classic SPJ exploration kit:

* **join commutativity** — ``A ⋈ B  =>  B ⋈ A``;
* **join associativity** — ``(A ⋈_p2 B) ⋈_p1 C  =>  A ⋈_p2 (B ⋈_p1 C)``
  when ``p1`` only references tables of ``B ∪ C``;
* **select pull-up** — ``T1 ⋈ (sigma_P T2)  =>  sigma_P (T1 ⋈ T2)`` (the
  paper's example rule) and its mirror image;
* **select push-down** — ``sigma_P (T1 ⋈ T2)  =>  (sigma_P T1) ⋈ T2`` when
  ``P`` only references ``T1``'s tables;
* **select-select commutativity** — reorders adjacent filters.

Applying a rule yields new entries in existing or new groups; the explorer
iterates to a fixpoint.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

from repro.core.predicates import JoinPredicate
from repro.optimizer.memo import Entry, Group, GroupKey, Memo, Operator


@dataclass(frozen=True)
class Derived:
    """A rule product: an entry to insert into the group with ``key``."""

    key: GroupKey
    entry: Entry


class Rule:
    """Base class; subclasses implement :meth:`apply`."""

    name = "rule"

    def apply(self, memo: Memo, group: Group, entry: Entry) -> Iterable[Derived]:
        raise NotImplementedError


class JoinCommutativity(Rule):
    name = "join-commutativity"

    def apply(self, memo: Memo, group: Group, entry: Entry) -> Iterable[Derived]:
        if entry.operator is not Operator.JOIN:
            return
        left, right = entry.inputs
        yield Derived(group.key, Entry(Operator.JOIN, entry.parameter, (right, left)))


class JoinAssociativity(Rule):
    """``(A ⋈_p2 B) ⋈_p1 C  =>  A ⋈_p2 (B ⋈_p1 C)``.

    Requires ``p1`` to reference only tables of ``B ∪ C`` so the rotated
    join is well formed.
    """

    name = "join-associativity"

    def apply(self, memo: Memo, group: Group, entry: Entry) -> Iterable[Derived]:
        if entry.operator is not Operator.JOIN:
            return
        outer = entry.parameter
        left_key, right_key = entry.inputs
        left_group = memo.group(left_key)
        for inner in list(left_group.entries):
            if inner.operator is not Operator.JOIN:
                continue
            a_key, b_key = inner.inputs
            if not isinstance(outer, JoinPredicate):
                continue
            if not outer.tables <= (b_key.tables | right_key.tables):
                continue
            bc_key = GroupKey(
                b_key.tables | right_key.tables,
                b_key.predicates | right_key.predicates | {outer},
            )
            yield Derived(bc_key, Entry(Operator.JOIN, outer, (b_key, right_key)))
            yield Derived(
                group.key, Entry(Operator.JOIN, inner.parameter, (a_key, bc_key))
            )


class SelectPullUp(Rule):
    """``T1 ⋈ (sigma_P T2)  =>  sigma_P (T1 ⋈ T2)`` and the mirror image."""

    name = "select-pull-up"

    def apply(self, memo: Memo, group: Group, entry: Entry) -> Iterable[Derived]:
        if entry.operator is not Operator.JOIN:
            return
        left_key, right_key = entry.inputs
        for side, (outer_key, other_key) in enumerate(
            ((left_key, right_key), (right_key, left_key))
        ):
            outer_group = memo.group(outer_key)
            for inner in list(outer_group.entries):
                if inner.operator is not Operator.SELECT:
                    continue
                (child_key,) = inner.inputs
                join_key = GroupKey(
                    child_key.tables | other_key.tables,
                    child_key.predicates
                    | other_key.predicates
                    | {entry.parameter},
                )
                inputs = (
                    (child_key, other_key) if side == 0 else (other_key, child_key)
                )
                yield Derived(
                    join_key, Entry(Operator.JOIN, entry.parameter, inputs)
                )
                yield Derived(
                    group.key,
                    Entry(Operator.SELECT, inner.parameter, (join_key,)),
                )


class SelectPushDown(Rule):
    """``sigma_P (T1 ⋈ T2)  =>  (sigma_P T1) ⋈ T2`` when P fits T1."""

    name = "select-push-down"

    def apply(self, memo: Memo, group: Group, entry: Entry) -> Iterable[Derived]:
        if entry.operator is not Operator.SELECT:
            return
        predicate = entry.parameter
        (child_key,) = entry.inputs
        child_group = memo.group(child_key)
        for inner in list(child_group.entries):
            if inner.operator is not Operator.JOIN:
                continue
            left_key, right_key = inner.inputs
            for side, target_key in enumerate((left_key, right_key)):
                if not predicate.tables <= target_key.tables:
                    continue
                selected_key = GroupKey(
                    target_key.tables, target_key.predicates | {predicate}
                )
                yield Derived(
                    selected_key,
                    Entry(Operator.SELECT, predicate, (target_key,)),
                )
                inputs = (
                    (selected_key, right_key)
                    if side == 0
                    else (left_key, selected_key)
                )
                yield Derived(
                    group.key, Entry(Operator.JOIN, inner.parameter, inputs)
                )


class SelectCommutativity(Rule):
    """``sigma_P1 (sigma_P2 T)  =>  sigma_P2 (sigma_P1 T)``."""

    name = "select-commutativity"

    def apply(self, memo: Memo, group: Group, entry: Entry) -> Iterable[Derived]:
        if entry.operator is not Operator.SELECT:
            return
        (child_key,) = entry.inputs
        child_group = memo.group(child_key)
        for inner in list(child_group.entries):
            if inner.operator is not Operator.SELECT:
                continue
            (grandchild_key,) = inner.inputs
            swapped_key = GroupKey(
                grandchild_key.tables,
                grandchild_key.predicates | {entry.parameter},
            )
            yield Derived(
                swapped_key,
                Entry(Operator.SELECT, entry.parameter, (grandchild_key,)),
            )
            yield Derived(
                group.key, Entry(Operator.SELECT, inner.parameter, (swapped_key,))
            )


DEFAULT_RULES: tuple[Rule, ...] = (
    JoinCommutativity(),
    JoinAssociativity(),
    SelectPullUp(),
    SelectPushDown(),
    SelectCommutativity(),
)
