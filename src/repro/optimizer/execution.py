"""Physical execution of optimizer plans.

Runs a :class:`~repro.optimizer.cost.PlanNode` tree against the database
with the same vectorized primitives the ground-truth executor uses: scans
produce row-index vectors, selections apply boolean masks, joins run as
hash joins.  Because plan trees and the canonical predicate-set executor
must agree tuple-for-tuple, plan execution doubles as an end-to-end check
that exploration preserved query semantics (tested as such).
"""

from __future__ import annotations

import numpy as np

from repro.core.predicates import FilterPredicate, JoinPredicate
from repro.engine.database import Database
from repro.engine.executor import JoinResult, equi_join_pairs
from repro.optimizer.cost import PlanNode
from repro.optimizer.memo import Entry, Operator


def execute_plan(database: Database, plan: PlanNode) -> JoinResult:
    """Execute ``plan`` bottom-up; returns the materialized result."""
    return _execute(database, plan)


def _execute(database: Database, plan: PlanNode) -> JoinResult:
    entry = plan.entry
    if entry.operator is Operator.GET:
        rows = np.arange(database.row_count(entry.table), dtype=np.intp)
        return JoinResult(database, {entry.table: rows})
    if entry.operator is Operator.SELECT:
        child = _execute(database, plan.children[0])
        return _apply_select(database, child, entry)
    if entry.operator is Operator.JOIN:
        left = _execute(database, plan.children[0])
        right = _execute(database, plan.children[1])
        return _apply_join(database, left, right, entry)
    raise AssertionError(f"unknown operator {entry.operator}")


def _apply_select(
    database: Database, child: JoinResult, entry: Entry
) -> JoinResult:
    predicate = entry.parameter
    if isinstance(predicate, FilterPredicate):
        values = child.column(predicate.attribute)
        mask = (values >= predicate.low) & (values <= predicate.high)
    elif isinstance(predicate, JoinPredicate):
        # A join predicate applied as a residual selection (cyclic graphs).
        mask = child.column(predicate.left) == child.column(predicate.right)
    else:  # pragma: no cover - the memo only holds these two kinds
        raise AssertionError(f"unexpected selection parameter {predicate!r}")
    indices = {table: rows[mask] for table, rows in child.indices.items()}
    return JoinResult(database, indices)


def _apply_join(
    database: Database, left: JoinResult, right: JoinResult, entry: Entry
) -> JoinResult:
    predicate = entry.parameter
    if not isinstance(predicate, JoinPredicate):  # pragma: no cover
        raise AssertionError(f"unexpected join parameter {predicate!r}")
    if predicate.left.table in left.indices:
        left_attribute, right_attribute = predicate.left, predicate.right
    else:
        left_attribute, right_attribute = predicate.right, predicate.left
    if (
        left_attribute.table not in left.indices
        or right_attribute.table not in right.indices
    ):
        raise ValueError(
            f"join {predicate} does not connect the plan's inputs "
            f"({sorted(left.indices)} vs {sorted(right.indices)})"
        )
    left_idx, right_idx = equi_join_pairs(
        left.column(left_attribute), right.column(right_attribute)
    )
    indices: dict[str, np.ndarray] = {}
    for table, rows in left.indices.items():
        indices[table] = rows[left_idx]
    for table, rows in right.indices.items():
        indices[table] = rows[right_idx]
    return JoinResult(database, indices)
