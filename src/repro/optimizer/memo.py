"""Cascades-style memoization table (Section 4.1).

A :class:`Memo` stores equivalence classes (:class:`Group`) of logically
equivalent sub-plans.  Each group is keyed by the *logical content* of the
sub-plans it contains — the set of tables touched and the set of predicates
applied — and holds a list of :class:`Entry` objects of the form

    [op, {parameters}, {input groups}]

exactly as the paper describes: ``GET`` leaves, ``SELECT`` entries with a
filter-predicate parameter and one input, and ``JOIN`` entries with a
join-predicate parameter and two inputs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum

from repro.core.predicates import (
    FilterPredicate,
    JoinPredicate,
    Predicate,
    PredicateSet,
    tables_of,
)


class Operator(Enum):
    GET = "get"
    SELECT = "select"
    JOIN = "join"


@dataclass(frozen=True)
class GroupKey:
    """Logical identity of an equivalence class."""

    tables: frozenset[str]
    predicates: PredicateSet

    def __str__(self) -> str:
        predicates = ", ".join(sorted(str(p) for p in self.predicates))
        return f"[{'/'.join(sorted(self.tables))} | {predicates}]"


@dataclass(frozen=True)
class Entry:
    """One logical alternative inside a group.

    ``parameter`` is the predicate the operator applies (``None`` for GET,
    whose parameter is the table name instead); ``inputs`` are the keys of
    the input groups.
    """

    operator: Operator
    parameter: Predicate | None
    inputs: tuple[GroupKey, ...]
    table: str | None = None

    def __str__(self) -> str:
        if self.operator is Operator.GET:
            return f"GET({self.table})"
        inputs = ", ".join(str(i) for i in self.inputs)
        return f"{self.operator.name}({self.parameter}; {inputs})"


@dataclass
class Group:
    """An equivalence class of logically equivalent sub-plans."""

    key: GroupKey
    entries: list[Entry] = field(default_factory=list)

    def add(self, entry: Entry) -> bool:
        """Add ``entry`` if new; returns True when the group changed."""
        if entry in self.entries:
            return False
        self.entries.append(entry)
        return True

    @property
    def is_leaf(self) -> bool:
        return all(entry.operator is Operator.GET for entry in self.entries)


class Memo:
    """The memoization table: group key -> group."""

    def __init__(self) -> None:
        self.groups: dict[GroupKey, Group] = {}

    def group(self, key: GroupKey) -> Group:
        """The group for ``key``, created on first access."""
        existing = self.groups.get(key)
        if existing is None:
            existing = Group(key)
            self.groups[key] = existing
        return existing

    def __contains__(self, key: GroupKey) -> bool:
        return key in self.groups

    def __len__(self) -> int:
        return len(self.groups)

    def entry_count(self) -> int:
        return sum(len(group.entries) for group in self.groups.values())

    # ------------------------------------------------------------------
    # Initial plan construction
    # ------------------------------------------------------------------
    def add_get(self, table: str) -> GroupKey:
        """Ensure the GET leaf group for ``table``; returns its key."""
        key = GroupKey(frozenset((table,)), frozenset())
        self.group(key).add(Entry(Operator.GET, None, (), table=table))
        return key

    def add_select(self, predicate: FilterPredicate, child: GroupKey) -> GroupKey:
        """Add a SELECT entry above ``child``; returns the new group key."""
        key = GroupKey(child.tables, child.predicates | {predicate})
        self.group(key).add(Entry(Operator.SELECT, predicate, (child,)))
        return key

    def add_join(
        self, predicate: JoinPredicate, left: GroupKey, right: GroupKey
    ) -> GroupKey:
        """Add a JOIN entry over two groups; returns the new group key."""
        key = GroupKey(
            left.tables | right.tables,
            left.predicates | right.predicates | {predicate},
        )
        self.group(key).add(Entry(Operator.JOIN, predicate, (left, right)))
        return key


def initial_plan(memo: Memo, tables: frozenset[str], predicates: PredicateSet) -> GroupKey:
    """Seed ``memo`` with one left-deep plan for the canonical SPJ query.

    Filters are pushed onto their base tables; joins are applied in a
    deterministic connectivity-respecting order.  Exploration rules then
    populate the rest of the search space.
    """
    filters_by_table: dict[str, list[FilterPredicate]] = {}
    joins: list[JoinPredicate] = []
    for predicate in sorted(predicates, key=str):
        if isinstance(predicate, JoinPredicate):
            joins.append(predicate)
        else:
            filters_by_table.setdefault(predicate.attribute.table, []).append(
                predicate
            )

    def base_group(table: str) -> GroupKey:
        key = memo.add_get(table)
        for predicate in filters_by_table.get(table, ()):
            key = memo.add_select(predicate, key)
        return key

    referenced = tables_of(predicates) | tables
    if not joins:
        if len(referenced) != 1:
            raise ValueError(
                "initial_plan supports connected queries only (a join-free "
                "query must reference exactly one table)"
            )
        return base_group(next(iter(referenced)))

    join = joins.pop(0)
    left_table, right_table = sorted(join.tables)
    current = memo.add_join(join, base_group(left_table), base_group(right_table))
    placed = set(join.tables)
    while joins:
        progressed = False
        for index, join in enumerate(joins):
            if not join.tables & placed:
                continue
            incoming = next(iter(join.tables - placed), None)
            if incoming is None:
                # Cyclic join graph: both sides already placed; model the
                # extra join predicate as a selection over the current plan.
                new_key = GroupKey(current.tables, current.predicates | {join})
                memo.group(new_key).add(Entry(Operator.SELECT, join, (current,)))
                current = new_key
            else:
                current = memo.add_join(join, current, base_group(incoming))
                placed.add(incoming)
            joins.pop(index)
            progressed = True
            break
        if not progressed:
            raise ValueError("initial_plan supports connected join graphs only")
    if referenced - current.tables:
        raise ValueError("query references tables unreachable through joins")
    return current
