"""A simple cost model over the explored memo.

Cardinality estimation exists to serve plan choice; this module closes the
loop.  Costs follow the classic textbook model for in-memory hash
execution: an operator pays its inputs' costs plus the tuples it touches
and emits.  The best plan per group is the min-cost entry; plan extraction
walks those choices recursively.

The model is deliberately simple — it is the substrate for demonstrating
that better cardinalities change plan choice, not a contribution per se.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.core.predicates import PredicateSet
from repro.engine.database import Database
from repro.optimizer.memo import Entry, GroupKey, Memo, Operator

#: maps a predicate set to an estimated selectivity
SelectivityOracle = Callable[[PredicateSet], float]


@dataclass(frozen=True)
class PlanNode:
    """One node of an extracted physical-ish plan."""

    entry: Entry
    children: tuple["PlanNode", ...]
    cardinality: float
    cost: float

    def render(self, indent: int = 0) -> str:
        """Pretty-print the plan tree with cardinalities and costs."""
        pad = "  " * indent
        head = (
            f"{pad}{self.entry} "
            f"[card={self.cardinality:,.0f} cost={self.cost:,.0f}]"
        )
        lines = [head]
        for child in self.children:
            lines.append(child.render(indent + 1))
        return "\n".join(lines)

    def operators(self) -> list[Entry]:
        out = [self.entry]
        for child in self.children:
            out.extend(child.operators())
        return out


class CostModel:
    """Cost/best-plan computation over an explored memo."""

    def __init__(self, database: Database, selectivity: SelectivityOracle):
        self.database = database
        self.selectivity = selectivity
        self._best: dict[GroupKey, PlanNode] = {}

    # ------------------------------------------------------------------
    def group_cardinality(self, key: GroupKey) -> float:
        """Estimated output cardinality of a memo group."""
        size = self.database.cross_product_size(key.tables)
        if not key.predicates:
            return float(size)
        return self.selectivity(key.predicates) * size

    def best_plan(self, memo: Memo, key: GroupKey) -> PlanNode:
        """Min-cost plan for ``key`` (memoized)."""
        cached = self._best.get(key)
        if cached is not None:
            return cached
        group = memo.groups[key]
        best: PlanNode | None = None
        for entry in group.entries:
            plan = self._plan_for(memo, key, entry)
            if best is None or plan.cost < best.cost:
                best = plan
        if best is None:
            raise ValueError(f"group {key} has no entries")
        self._best[key] = best
        return best

    # ------------------------------------------------------------------
    def _plan_for(self, memo: Memo, key: GroupKey, entry: Entry) -> PlanNode:
        output = self.group_cardinality(key)
        if entry.operator is Operator.GET:
            rows = float(self.database.row_count(entry.table))
            return PlanNode(entry, (), rows, rows)
        children = tuple(memo.groups[k] and self.best_plan(memo, k) for k in entry.inputs)
        cost = output + sum(child.cost for child in children)
        if entry.operator is Operator.SELECT:
            cost += children[0].cardinality  # scan the input
        else:  # JOIN: build + probe
            cost += children[0].cardinality + children[1].cardinality
        return PlanNode(entry, children, output, cost)
