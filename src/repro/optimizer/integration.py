"""Coupling ``getSelectivity`` with the optimizer's search (Section 4.2).

Every memo entry ``E`` in a group representing ``Sel_R(P)`` splits ``P``
into the entry's parameter ``p_E`` and the predicates of its inputs
``Q_E = P - p_E``, inducing the atomic decomposition

    Sel_R(P) = Sel_R(p_E | Q_E) * Sel_R(Q_E)

where ``Sel_R(Q_E)`` separates into the entry's input groups (which have
already been estimated — groups are processed inputs-first).  Instead of
the full ``O(3^n)`` enumeration, only these memo-induced decompositions
are scored; the paper notes this may miss the globally most accurate
decomposition but imposes almost no overhead on the optimizer.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from repro.core.errors import INFINITE_ERROR, ErrorFunction, merge
from repro.core.matching import (
    FactorMatch,
    ViewMatcher,
    estimate_factor,
    select_match,
)
from repro.core.predicates import PredicateSet
from repro.core.selectivity import Factor
from repro.engine.database import Database
from repro.engine.expressions import Query
from repro.obs.metrics import MetricsRegistry
from repro.obs.snapshot import StatsSnapshot
from repro.obs.trace import Trace
from repro.optimizer.explorer import ExplorationResult, explore
from repro.optimizer.memo import Entry, GroupKey, Operator
from repro.stats.pool import SITPool


@dataclass
class GroupEstimate:
    """Best estimate found for one memo group."""

    key: GroupKey
    selectivity: float
    error: float
    best_entry: Entry | None


@dataclass
class MemoCoupledEstimator:
    """The Section 4.2 estimator: getSelectivity restricted to the
    decompositions the optimizer's own search induces.

    ``pool`` accepts any statistics source — a bare
    :class:`~repro.stats.pool.SITPool`, a
    :class:`~repro.catalog.StatisticsCatalog` (pinned to its current
    snapshot in ``__post_init__``) or a
    :class:`~repro.catalog.CatalogSnapshot`; the pinned snapshot, if any,
    is kept on :attr:`snapshot`.
    """

    database: Database
    pool: SITPool
    error_function: ErrorFunction
    matcher: ViewMatcher = field(default=None)  # type: ignore[assignment]
    #: the pinned catalog snapshot (``None`` when built from a bare pool)
    snapshot: object = field(default=None, repr=False)
    #: (P, Q) -> (match, factor_error); memo entries across groups (and
    #: queries over the same pool) repeat factors, so matching each logical
    #: factor once mirrors getSelectivity's factor-match cache.
    _match_cache: dict = field(default_factory=dict, repr=False)
    #: opt-in tracing; ``None`` == disabled (one branch per call site)
    trace: Trace | None = field(default=None, repr=False)
    #: per-instance observability counters (see :meth:`stats_snapshot`)
    match_cache_hits: int = field(default=0, repr=False)
    match_cache_misses: int = field(default=0, repr=False)
    entries_scored: int = field(default=0, repr=False)
    estimation_seconds: float = field(default=0.0, repr=False)

    def __post_init__(self) -> None:
        if not isinstance(self.pool, SITPool):
            from repro.estimators import resolve_statistics

            self.pool, self.snapshot = resolve_statistics(self.pool)
        if self.matcher is None:
            self.matcher = ViewMatcher(self.pool)

    # ------------------------------------------------------------------
    def enable_tracing(self, trace: Trace | None = None) -> Trace:
        """Attach a :class:`Trace` (shared with the matcher) and return it."""
        self.trace = trace if trace is not None else Trace()
        self.matcher.trace = self.trace
        return self.trace

    def disable_tracing(self) -> None:
        self.trace = None
        self.matcher.trace = None

    def metrics_registry(self) -> MetricsRegistry:
        """This estimator's state as a :class:`MetricsRegistry`."""
        registry = MetricsRegistry()
        registry.counter("counters.matcher_calls").inc(self.matcher.calls)
        registry.counter("counters.entries_scored").inc(self.entries_scored)
        registry.gauge("timings.estimation_seconds").set(self.estimation_seconds)
        registry.gauge("caches.match_cache_entries").set(len(self._match_cache))
        registry.counter("caches.match_cache_hits").inc(self.match_cache_hits)
        registry.counter("caches.match_cache_misses").inc(self.match_cache_misses)
        trace = self.trace
        if trace is not None:
            for stage, seconds, calls in trace.stages():
                registry.gauge(f"timings.{stage}_seconds").set(seconds)
                registry.counter(f"counters.{stage}_calls").inc(calls)
            for name, value in sorted(trace.counters.items()):
                registry.counter(f"counters.{name}").inc(value)
        return registry

    def stats_snapshot(self) -> StatsSnapshot:
        """The unified observability snapshot (``StatsSnapshot`` schema)."""
        meta = {
            "estimator": "MemoCoupled",
            "error_function": self.error_function.name,
            "tracing": self.trace is not None,
        }
        if self.snapshot is not None:
            meta["snapshot_version"] = self.snapshot.version
        return StatsSnapshot.from_registry(self.metrics_registry(), meta=meta)

    # ------------------------------------------------------------------
    def estimate(self, query: Query) -> dict[GroupKey, GroupEstimate]:
        """Explore ``query`` and estimate every memo group bottom-up."""
        exploration = explore(query)
        return self.estimate_memo(exploration)

    def estimate_memo(
        self, exploration: ExplorationResult
    ) -> dict[GroupKey, GroupEstimate]:
        memo = exploration.memo
        estimates: dict[GroupKey, GroupEstimate] = {}
        # Inputs always have strictly fewer predicates, so ordering groups
        # by |predicates| processes every entry after its inputs.
        for key in sorted(memo.groups, key=lambda k: (len(k.predicates), str(k))):
            group = memo.groups[key]
            best_selectivity = 1.0
            best_error = INFINITE_ERROR
            best_entry: Entry | None = None
            if not key.predicates:
                estimates[key] = GroupEstimate(key, 1.0, 0.0, None)
                continue
            for entry in group.entries:
                outcome = self._entry_estimate(entry, key, estimates)
                if outcome is None:
                    continue
                selectivity, error = outcome
                if error < best_error:
                    best_selectivity, best_error, best_entry = (
                        selectivity,
                        error,
                        entry,
                    )
            estimates[key] = GroupEstimate(
                key, best_selectivity, best_error, best_entry
            )
        return estimates

    def selectivity(self, query: Query) -> float:
        """Explore ``query`` and return the root group's selectivity."""
        exploration = explore(query)
        estimates = self.estimate_memo(exploration)
        return estimates[exploration.root].selectivity

    def cardinality(self, query: Query) -> float:
        """Estimated output cardinality via the memo-coupled search."""
        return self.selectivity(query) * self.database.cross_product_size(
            query.tables
        )

    # ------------------------------------------------------------------
    def _entry_estimate(
        self,
        entry: Entry,
        key: GroupKey,
        estimates: dict[GroupKey, GroupEstimate],
    ) -> tuple[float, float] | None:
        if entry.operator is Operator.GET:
            return 1.0, 0.0
        self.entries_scored += 1
        q_predicates: PredicateSet = frozenset()
        input_selectivity = 1.0
        input_error = 0.0
        for input_key in entry.inputs:
            estimate = estimates.get(input_key)
            if estimate is None or estimate.error == INFINITE_ERROR:
                return None
            q_predicates |= input_key.predicates
            input_selectivity *= estimate.selectivity
            input_error = merge(input_error, estimate.error)
        factor = Factor(frozenset((entry.parameter,)), q_predicates)
        match, factor_error = self._match(factor)
        if match is None:
            return None
        trace = self.trace
        if trace is not None:
            started = time.perf_counter()
            factor_selectivity = estimate_factor(match)
            elapsed = time.perf_counter() - started
            self.estimation_seconds += elapsed
            trace.add_time("histogram_join", elapsed)
        else:
            started = time.perf_counter()
            factor_selectivity = estimate_factor(match)
            self.estimation_seconds += time.perf_counter() - started
        selectivity = factor_selectivity * input_selectivity
        return selectivity, merge(factor_error, input_error)

    def _match(self, factor: Factor) -> tuple[FactorMatch | None, float]:
        """Match one factor, caching per (P, Q) and counting each logical
        view-matching invocation exactly once (Figure 6 accounting)."""
        key = (factor.p, factor.q)
        self.matcher.count_invocation()
        cached = self._match_cache.get(key)
        if cached is not None:
            self.match_cache_hits += 1
            return cached
        self.match_cache_misses += 1
        trace = self.trace
        if trace is not None:
            with trace.span("factor_matching"):
                candidates = self.matcher.candidates_for_factor(
                    factor, count=False
                )
        else:
            candidates = self.matcher.candidates_for_factor(factor, count=False)
        if candidates is None:
            result: tuple[FactorMatch | None, float] = (None, INFINITE_ERROR)
        elif trace is not None:
            with trace.span("error_scoring"):
                match = select_match(candidates, self.error_function)
                result = (match, self.error_function.factor_error(match))
        else:
            match = select_match(candidates, self.error_function)
            result = (match, self.error_function.factor_error(match))
        self._match_cache[key] = result
        return result
