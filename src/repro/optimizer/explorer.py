"""Exploration loop: applies transformation rules to a fixpoint.

Mirrors the exploration phase of a Cascades optimizer at the logical level:
starting from the initial plan's memo, every rule is applied to every entry
until no rule produces a new entry.  The memo then contains every
equivalence class (sub-plan) reachable by the rule set, which is the search
space ``getSelectivity`` couples with in Section 4.2.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.predicates import PredicateSet
from repro.engine.expressions import Query
from repro.optimizer.memo import GroupKey, Memo, initial_plan
from repro.optimizer.rules import DEFAULT_RULES, Rule


@dataclass
class ExplorationResult:
    """Explored memo plus bookkeeping counters."""

    memo: Memo
    root: GroupKey
    rule_applications: int = 0
    new_entries: int = 0


def explore(
    query: Query,
    rules: tuple[Rule, ...] = DEFAULT_RULES,
    max_iterations: int = 64,
) -> ExplorationResult:
    """Build and fully explore the memo for ``query``."""
    memo = Memo()
    root = initial_plan(memo, query.tables, query.predicates)
    result = ExplorationResult(memo, root)
    for _ in range(max_iterations):
        changed = False
        # Snapshot: rules may add groups/entries while we iterate.
        work = [
            (group, entry)
            for group in list(memo.groups.values())
            for entry in list(group.entries)
        ]
        for group, entry in work:
            for rule in rules:
                for derived in rule.apply(memo, group, entry):
                    result.rule_applications += 1
                    if memo.group(derived.key).add(derived.entry):
                        result.new_entries += 1
                        changed = True
        if not changed:
            break
    return result


def subplan_predicate_sets(result: ExplorationResult) -> list[PredicateSet]:
    """The predicate sets of all explored sub-plans (memo group keys),
    smallest first — the selectivity requests an optimizer would issue."""
    keys = sorted(
        result.memo.groups,
        key=lambda key: (len(key.predicates), str(key)),
    )
    return [key.predicates for key in keys if key.predicates]
