"""repro — a full reproduction of *Conditional Selectivity for Statistics
on Query Expressions* (Bruno & Chaudhuri, SIGMOD 2004).

The public API is re-exported here; the subpackages are:

* :mod:`repro.core` — conditional selectivity, ``getSelectivity``, error
  functions (``nInd``, ``Diff``, ``Opt``) and the GVM baseline;
* :mod:`repro.engine` — the in-memory relational engine used for exact
  ground truth;
* :mod:`repro.histograms` — MaxDiff/equi-depth/equi-width histograms and
  the histogram join;
* :mod:`repro.stats` — SITs: construction, ``diff_H`` and workload pools;
* :mod:`repro.estimators` — the backend-neutral
  :class:`~repro.estimators.Estimator` protocol and its three
  implementations (SIT/DP, Bayesian network, guaranteed sampling),
  selected by name through :func:`~repro.estimators.create_estimator`;
* :mod:`repro.catalog` — the SIT lifecycle behind one versioned,
  snapshot-isolated :class:`~repro.catalog.StatisticsCatalog`
  (build → serve → feedback → invalidate → refresh) plus
  :class:`~repro.catalog.EstimationSession` for cross-query cache reuse;
* :mod:`repro.optimizer` — a Cascades-style memo and the Section 4
  integration;
* :mod:`repro.workload` — the paper's synthetic snowflake database and
  random SPJ query generator;
* :mod:`repro.obs` — observability: per-stage tracing, the metrics
  registry, the unified ``StatsSnapshot`` and ``EXPLAIN ESTIMATE``;
* :mod:`repro.service` — the concurrent estimation-serving subsystem:
  worker pool + micro-batching + admission control behind
  :class:`~repro.service.EstimationService`, the asyncio JSON-lines
  server (``python -m repro serve``) and the one client entrypoint
  :func:`~repro.service.connect`;
* :mod:`repro.cluster` — the multi-process estimation tier: shard
  processes over one shared-memory snapshot behind a consistent-hash
  router with hedged requests (``python -m repro serve --shards N``);
* :mod:`repro.bench` — the experiment harness regenerating every figure.
"""

from repro.core import (
    Attribute,
    DiffError,
    FilterPredicate,
    GreedyViewMatching,
    JoinPredicate,
    NIndError,
    OptError,
    make_gs_diff,
    make_gs_nind,
    make_gs_opt,
    make_nosit,
)
from repro.catalog import (
    CatalogSnapshot,
    EstimationSession,
    RefreshPolicy,
    StatisticsCatalog,
)
from repro.engine import Database, Executor, Query, Schema, Table, TableSchema
from repro.estimators import (
    BACKENDS,
    BayesianNetworkEstimator,
    Estimator,
    GuaranteedSampleEstimator,
    SITEstimator,
    create_estimator,
)
from repro.obs import ExplainResult, MetricsRegistry, StatsSnapshot, Trace
from repro.service import (
    ClusterConfig,
    EstimationService,
    HealingConfig,
    Overloaded,
    ServedEstimate,
    ServiceConfig,
    connect,
)
from repro.stats import SIT, SITBuilder, SITPool, build_workload_pool

__version__ = "1.0.0"

__all__ = [
    "Attribute",
    "BACKENDS",
    "BayesianNetworkEstimator",
    "CatalogSnapshot",
    "ClusterConfig",
    "Database",
    "DiffError",
    "EstimationService",
    "EstimationSession",
    "Estimator",
    "Executor",
    "ExplainResult",
    "FilterPredicate",
    "GreedyViewMatching",
    "GuaranteedSampleEstimator",
    "HealingConfig",
    "JoinPredicate",
    "MetricsRegistry",
    "NIndError",
    "OptError",
    "Overloaded",
    "Query",
    "RefreshPolicy",
    "SIT",
    "SITBuilder",
    "SITEstimator",
    "SITPool",
    "Schema",
    "ServedEstimate",
    "ServiceConfig",
    "StatisticsCatalog",
    "StatsSnapshot",
    "Table",
    "TableSchema",
    "Trace",
    "build_workload_pool",
    "connect",
    "create_estimator",
    "make_gs_diff",
    "make_gs_nind",
    "make_gs_opt",
    "make_nosit",
    "__version__",
]
