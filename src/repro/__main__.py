"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``demo``
    The paper's motivating example (Figures 1-2) on the skewed mini
    TPC-H database.
``estimate --sql "SELECT ..."``
    Estimate the cardinality of a SQL query against the synthetic
    snowflake database, comparing noSit / GVM / GS-Diff with the truth.
``explain "SELECT ..."``
    ``EXPLAIN ESTIMATE``: print the winning ``getSelectivity``
    decomposition factor by factor — the matched SIT (or independence
    fallback) and error contribution of every ``Sel(p | Q)`` — as a text
    tree, or machine-readably with ``--json``.
``figures``
    A quick textual regeneration of the Figure 7 sweep at a small scale
    (the full suite lives in ``pytest benchmarks/ --benchmark-only``).
``catalog <build|save|load|advise|refresh|status>``
    Drive the statistics lifecycle end to end on the synthetic snowflake
    database: build a workload catalog, persist/restore it (v2 format,
    v1 migrates), print advisor scores, simulate table updates
    (``--update-table``) and run an incremental refresh (``--method
    full|sampled``, ``--budget N``), or print the lifecycle status block.
``serve``
    Start the concurrent estimation server (``repro.service``): a
    worker pool with micro-batching, admission control and hot snapshot
    swap behind an asyncio JSON-lines TCP front-end.  ``--shards N``
    (or a ``--config`` file with a ``cluster`` block) serves through
    the multi-process tier (``repro.cluster``) instead: N shard
    processes over one shared-memory snapshot behind the consistent-
    hash router.  Talk to it with ``repro.service.connect("host:port")``
    or one JSON object per line on a raw socket.
``advisor <tune|status|history>``
    Run the safety-gated self-tuning loop (``repro.advisor``) offline on
    the synthetic snowflake database: build a workload catalog, drive
    the workload through an estimation session to collect feedback, run
    tuning tick(s), and print the tuning report / advisor status /
    tick history as JSON.  ``--budget-fraction`` imposes a space budget
    as a fraction of the full conditioned-SIT footprint; an impossible
    budget demonstrates the ``no-solution-found`` path.
``info``
    Version and package inventory.
"""

from __future__ import annotations

import argparse
import sys

import repro

#: every subcommand with its one-line description — the single source of
#: the ``--help`` listing (pinned by tests/test_cli.py)
SUBCOMMANDS: dict[str, str] = {
    "info": "version and package inventory",
    "demo": "the paper's motivating example",
    "estimate": "estimate a SQL query's cardinality",
    "explain": "EXPLAIN ESTIMATE: the winning decomposition of a query",
    "figures": "quick Figure 7 sweep",
    "catalog": "statistics lifecycle: build/save/load/advise/refresh/status",
    "serve": "run the concurrent estimation server (JSON lines over TCP)",
    "advisor": "self-tuning loop: feedback-driven, safety-gated SIT tuning",
}


def _cmd_info(_: argparse.Namespace) -> int:
    print(f"repro {repro.__version__} — Bruno & Chaudhuri, SIGMOD 2004 reproduction")
    print(__doc__)
    return 0


def _demo() -> int:
    from repro.workload.tpch import generate_tpch, motivating_query
    from repro.core.predicates import Attribute
    from repro.core.gvm import GreedyViewMatching
    from repro.engine.executor import Executor
    from repro.estimators import make_gs_diff, make_nosit
    from repro.stats.builder import SITBuilder
    from repro.stats.pool import SITPool

    db = generate_tpch()
    query = motivating_query(db)
    true = Executor(db).cardinality(query.predicates)
    joins = sorted(query.joins, key=str)
    join_lo = next(j for j in joins if "lineitem" in str(j))
    join_oc = next(j for j in joins if "customer" in str(j))
    builder = SITBuilder(db)
    base = [
        builder.build_base(attribute)
        for table in db.schema.tables.values()
        for attribute in table.attributes
    ]
    sit_lo = builder.build(Attribute("orders", "total_price"), frozenset({join_lo}))
    sit_oc = builder.build(Attribute("customer", "nation"), frozenset({join_oc}))
    both = SITPool(list(base) + [sit_lo, sit_oc])
    print(f"query: {query}")
    print(f"true cardinality:   {true:>10,}")
    print(f"noSit:              {make_nosit(db, SITPool(list(base))).cardinality(query):>10,.0f}")
    print(f"GS-Diff, both SITs: {make_gs_diff(db, both).cardinality(query):>10,.0f}")
    gvm = GreedyViewMatching(both)
    size = db.cross_product_size(query.tables)
    print(f"GVM, both SITs:     {gvm.estimate(query).selectivity * size:>10,.0f}")
    return 0


def _cmd_estimate(args: argparse.Namespace) -> int:
    from repro.core.gvm import GreedyViewMatching
    from repro.engine.executor import Executor
    from repro.estimators import make_gs_diff, make_nosit
    from repro.sql import parse_query
    from repro.stats.builder import SITBuilder
    from repro.stats.pool import build_workload_pool
    from repro.workload.snowflake import SnowflakeConfig, generate_snowflake

    database = generate_snowflake(SnowflakeConfig(scale=args.scale, seed=args.seed))
    query = parse_query(args.sql, database.schema)
    pool = build_workload_pool(
        SITBuilder(database), [query], max_joins=min(query.join_count, args.max_joins)
    )
    true = Executor(database).cardinality(query.predicates)
    print(f"canonical form: {query}")
    print(f"SIT pool:       {len(pool)} statistics")
    print(f"true:           {true:>12,}")
    nosit = make_nosit(database, pool)
    print(f"noSit:          {nosit.cardinality(query):>12,.0f}")
    gvm = GreedyViewMatching(pool)
    size = database.cross_product_size(query.tables)
    print(f"GVM:            {gvm.estimate(query).selectivity * size:>12,.0f}")
    gs = make_gs_diff(database, pool)
    print(f"GS-Diff:        {gs.cardinality(query):>12,.0f}")
    return 0


def _cmd_explain(args: argparse.Namespace) -> int:
    from repro.core.errors import DiffError, NIndError
    from repro.estimators import create_estimator
    from repro.sql import parse_query
    from repro.stats.builder import SITBuilder
    from repro.stats.pool import build_workload_pool
    from repro.workload.snowflake import SnowflakeConfig, generate_snowflake

    database = generate_snowflake(SnowflakeConfig(scale=args.scale, seed=args.seed))
    query = parse_query(args.sql, database.schema)
    pool = build_workload_pool(
        SITBuilder(database), [query], max_joins=min(query.join_count, args.max_joins)
    )
    if args.backend == "sit":
        error_function = (
            NIndError() if args.error == "nind" else DiffError(pool)
        )
        estimator = create_estimator(
            "sit",
            database,
            pool,
            error_function=error_function,
            engine=args.engine,
        )
    else:
        # --error / --engine are SIT decomposition knobs; the peer
        # backends build their models straight from the pool's base SITs
        estimator = create_estimator(args.backend, database, pool)
    result = estimator.explain(query)
    if args.json:
        print(result.to_json())
    else:
        print(result.render_text(include_stats=args.stats))
    return 0


def _cmd_figures(args: argparse.Namespace) -> int:
    from repro.bench.harness import Harness
    from repro.bench.reporting import render_figure7
    from repro.estimators import make_gs_diff, make_gs_nind, make_nosit
    from repro.stats.builder import SITBuilder
    from repro.stats.pool import build_workload_pool
    from repro.workload.queries import WorkloadConfig, WorkloadGenerator
    from repro.workload.snowflake import SnowflakeConfig, generate_snowflake

    database = generate_snowflake(SnowflakeConfig(scale=args.scale, seed=args.seed))
    generator = WorkloadGenerator(
        database, WorkloadConfig(join_count=3, filter_count=3, seed=args.seed)
    )
    queries = generator.generate(args.queries)
    pool = build_workload_pool(SITBuilder(database), queries, max_joins=3)
    harness = Harness(database)
    by_pool = {}
    for limit in range(4):
        print(f"evaluating pool J{limit} ...", file=sys.stderr)
        by_pool[f"J{limit}"] = harness.evaluate(
            queries,
            pool.restrict_joins(limit),
            {
                "noSit": make_nosit,
                "GS-nInd": make_gs_nind,
                "GS-Diff": make_gs_diff,
            },
            max_subqueries=30,
        )
    print(render_figure7(by_pool, ["noSit", "GVM", "GS-nInd", "GS-Diff"], 3))
    return 0


def _cmd_catalog(args: argparse.Namespace) -> int:
    import json

    from repro.catalog import RefreshPolicy, StatisticsCatalog
    from repro.workload.queries import WorkloadConfig, WorkloadGenerator
    from repro.workload.snowflake import SnowflakeConfig, generate_snowflake

    database = generate_snowflake(
        SnowflakeConfig(scale=args.scale, seed=args.seed)
    )
    generator = WorkloadGenerator(
        database, WorkloadConfig(join_count=2, filter_count=2, seed=args.seed)
    )
    queries = generator.generate(args.queries)

    def built() -> StatisticsCatalog:
        print(
            f"building J{args.max_joins} catalog over {args.queries} queries "
            f"(scale={args.scale}) ...",
            file=sys.stderr,
        )
        return StatisticsCatalog.build(
            database, queries, max_joins=args.max_joins
        )

    def loaded() -> StatisticsCatalog:
        if args.path is None:
            raise SystemExit("catalog load/status from file requires --path")
        return StatisticsCatalog.load(args.path, database=database)

    action = args.action
    if action == "build":
        catalog = built()
        print(json.dumps(catalog.status(), indent=2, sort_keys=True))
        return 0
    if action == "save":
        if args.path is None:
            raise SystemExit("catalog save requires --path")
        catalog = built()
        catalog.save(args.path)
        print(f"saved {len(catalog)} SITs (v2) to {args.path}")
        return 0
    if action == "load":
        catalog = loaded()
        print(json.dumps(catalog.status(), indent=2, sort_keys=True))
        return 0
    if action == "status":
        catalog = loaded() if args.path is not None else built()
        if args.storm:
            from repro.ingest import IngestConfig, IngestPipeline
            from repro.obs import StalenessTracker

            tracker = StalenessTracker()
            catalog.attach_staleness(tracker)
            tables = sorted(database.tables)
            print(
                f"driving a {args.storm}-event write storm over "
                f"{len(tables)} tables ...",
                file=sys.stderr,
            )
            with IngestPipeline(
                catalog, config=IngestConfig(), tracker=tracker
            ) as pipeline:
                for index in range(args.storm):
                    pipeline.submit(tables[index % len(tables)])
                pipeline.flush()
        print(json.dumps(catalog.status(), indent=2, sort_keys=True))
        return 0
    if action == "advise":
        from repro.catalog.refresh import _advisor_scores
        from repro.catalog.catalog import sit_key

        catalog = loaded() if args.path is not None else built()
        scores = _advisor_scores(list(catalog), queries)
        ranked = sorted(
            (sit for sit in catalog if not sit.is_base),
            key=lambda sit: -scores.get(sit_key(sit), 0.0),
        )
        print(f"{'score':>10}  {'diff':>7}  SIT")
        for sit in ranked[: args.budget if args.budget else len(ranked)]:
            print(
                f"{scores.get(sit_key(sit), 0.0):>10.4f}  "
                f"{sit.diff:>7.4f}  {sit}"
            )
        return 0
    if action == "refresh":
        catalog = loaded() if args.path is not None else built()
        for table in args.update_table or []:
            version = catalog.notify_table_update(table)
            print(f"table {table} -> version {version}", file=sys.stderr)
        policy = RefreshPolicy(method=args.method, max_sits=args.budget)
        report = catalog.refresh(policy, queries)
        print(json.dumps(report.to_dict(), indent=2, sort_keys=True))
        if args.path is not None:
            catalog.save(args.path)
            print(f"saved refreshed catalog to {args.path}", file=sys.stderr)
        return 0
    raise SystemExit(f"unknown catalog action {action!r}")  # pragma: no cover


def _cmd_serve(args: argparse.Namespace) -> int:
    import dataclasses
    import json

    from repro.catalog import StatisticsCatalog
    from repro.resilience import FaultPlan, arm, disarm
    from repro.service import (
        ClusterConfig,
        EstimationService,
        ServiceConfig,
        run_server,
    )
    from repro.workload.queries import WorkloadConfig, WorkloadGenerator
    from repro.workload.snowflake import SnowflakeConfig, generate_snowflake

    fault_plan = None
    if getattr(args, "fault_plan", None):
        fault_plan = FaultPlan.parse(args.fault_plan)
        print(
            f"chaos harness armed: {len(fault_plan.rules)} fault rule(s), "
            f"seed {fault_plan.seed}",
            file=sys.stderr,
        )

    database = generate_snowflake(
        SnowflakeConfig(scale=args.scale, seed=args.seed)
    )
    if args.path is not None:
        catalog = StatisticsCatalog.load(args.path, database=database)
    else:
        generator = WorkloadGenerator(
            database,
            WorkloadConfig(join_count=2, filter_count=2, seed=args.seed),
        )
        queries = generator.generate(args.queries)
        print(
            f"building J{args.max_joins} catalog over {args.queries} queries "
            f"(scale={args.scale}) ...",
            file=sys.stderr,
        )
        catalog = StatisticsCatalog.build(
            database, queries, max_joins=args.max_joins
        )
    # ad-hoc SQL needs base histograms for *every* attribute, not just
    # the build workload's
    assert catalog.builder is not None
    present = {sit.attribute for sit in catalog if sit.is_base}
    for table in database.schema.tables.values():
        for attribute in table.attributes:
            if attribute not in present:
                catalog.add(catalog.builder.build_base(attribute))
    if args.config is not None:
        # one JSON file describes the whole deployment (nested healing
        # and cluster blocks included); address flags still win so one
        # file serves many ports
        with open(args.config, encoding="utf-8") as handle:
            config = ServiceConfig.from_dict(json.load(handle))
        config = dataclasses.replace(config, host=args.host, port=args.port)
    else:
        config = ServiceConfig(
            workers=args.workers,
            queue_depth=args.queue_depth,
            batch_window_s=args.batch_window_ms / 1000.0,
            max_batch=args.max_batch,
            host=args.host,
            port=args.port,
        )
    if args.backend != "sit":
        if args.shards:
            raise SystemExit(
                "--shards supports only --backend sit (shards serve from "
                "a row-free stats snapshot; the bn/sample backends build "
                "from rows) — drop --shards and scale with --workers"
            )
        config = dataclasses.replace(config, backend=args.backend)
    if args.shards:
        config = dataclasses.replace(
            config,
            cluster=ClusterConfig(shards=args.shards, replicas=args.replicas),
        )
    # arm the chaos plan before the workers spin up so every injection
    # point on the serving path (snapshot pin, SIT match, histogram
    # join, worker batch) is live for the server's whole life
    if fault_plan is not None:
        arm(fault_plan)
    try:
        if config.cluster is not None:
            from repro.cluster import EstimationCluster

            print(
                f"spawning {config.cluster.shards} shard(s) + "
                f"{config.cluster.replicas} replica(s) over one "
                "shared-memory snapshot ...",
                file=sys.stderr,
            )
            service = EstimationCluster(catalog, config=config)
        else:
            service = EstimationService(catalog, config=config)

        def ready(address: tuple[str, int]) -> None:
            host, port = address
            tier = (
                f"{config.cluster.shards} shards"
                if config.cluster is not None
                else f"{config.workers} workers"
            )
            print(
                f"serving {len(catalog)} SITs on {host}:{port} "
                f"({tier}, queue {config.queue_depth}, "
                f"batch window {config.batch_window_s * 1000.0}ms) "
                "— Ctrl-C to drain",
                file=sys.stderr,
                flush=True,
            )

        run_server(service, ready=ready)
    finally:
        if fault_plan is not None:
            disarm()
            print(
                f"chaos harness fired: {fault_plan.stats() or 'no faults'}",
                file=sys.stderr,
            )
    return 0


def _cmd_advisor(args: argparse.Namespace) -> int:
    import json

    from repro.advisor import AdvisorConfig, SelfTuningAdvisor
    from repro.advisor.search import sit_space_bytes
    from repro.catalog import StatisticsCatalog
    from repro.catalog.session import EstimationSession
    from repro.workload.queries import WorkloadConfig, WorkloadGenerator
    from repro.workload.snowflake import SnowflakeConfig, generate_snowflake

    database = generate_snowflake(
        SnowflakeConfig(scale=args.scale, seed=args.seed)
    )
    generator = WorkloadGenerator(
        database,
        WorkloadConfig(join_count=2, filter_count=2, seed=args.seed),
    )
    queries = generator.generate(args.queries)
    print(
        f"building J{args.max_joins} catalog over {args.queries} queries "
        f"(scale={args.scale}) ...",
        file=sys.stderr,
    )
    catalog = StatisticsCatalog.build(
        database, queries, max_joins=args.max_joins
    )
    budget = None
    if args.budget_fraction is not None:
        total = sum(
            sit_space_bytes(sit) for sit in catalog if not sit.is_base
        )
        budget = args.budget_fraction * total
        print(
            f"space budget: {budget:,.0f} of {total:,.0f} conditioned "
            f"bytes ({args.budget_fraction:.0%})",
            file=sys.stderr,
        )
    advisor = SelfTuningAdvisor(
        catalog,
        config=AdvisorConfig(
            max_q_error=args.max_q_error,
            space_budget_bytes=budget,
            min_feedback=min(args.queries, 8),
            max_moves=args.max_moves,
            min_interval_s=0.0,
        ),
    )
    session = EstimationSession(catalog)
    session.feedback_sink = advisor.record_result
    for query in queries:
        session.estimate(query)
    reports = [advisor.tick() for _ in range(args.ticks)]
    if args.action == "status":
        payload = advisor.status()
    elif args.action == "history":
        payload = [report.to_dict() for report in reports]
    else:  # tune
        payload = reports[-1].to_dict()
    print(json.dumps(payload, indent=2, sort_keys=True))
    return 0


def main(argv: list[str] | None = None) -> int:
    """CLI dispatcher; returns a process exit code."""
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Conditional selectivity for statistics on query expressions",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("info", help=SUBCOMMANDS["info"])
    sub.add_parser("demo", help=SUBCOMMANDS["demo"])

    estimate = sub.add_parser("estimate", help=SUBCOMMANDS["estimate"])
    estimate.add_argument("--sql", required=True, help="conjunctive SPJ SELECT")
    estimate.add_argument("--scale", type=float, default=0.25)
    estimate.add_argument("--seed", type=int, default=42)
    estimate.add_argument("--max-joins", type=int, default=2, dest="max_joins")

    explain = sub.add_parser("explain", help=SUBCOMMANDS["explain"])
    explain.add_argument(
        "sql", nargs="?", default=None, help="conjunctive SPJ SELECT"
    )
    explain.add_argument(
        "--sql", dest="sql_flag", default=None, help=argparse.SUPPRESS
    )
    explain.add_argument(
        "--backend",
        choices=("sit", "bn", "sample"),
        default="sit",
        help="estimator backend answering the query (default: sit)",
    )
    explain.add_argument(
        "--error",
        choices=("nind", "diff"),
        default="diff",
        help="error function ranking candidate decompositions (default: diff)",
    )
    explain.add_argument(
        "--engine",
        choices=("bitmask", "legacy"),
        default="bitmask",
        help="getSelectivity DP engine (default: bitmask)",
    )
    explain.add_argument(
        "--json", action="store_true", help="emit the machine-readable structure"
    )
    explain.add_argument(
        "--stats", action="store_true", help="append the StatsSnapshot to the tree"
    )
    explain.add_argument("--scale", type=float, default=0.25)
    explain.add_argument("--seed", type=int, default=42)
    explain.add_argument("--max-joins", type=int, default=2, dest="max_joins")

    figures = sub.add_parser("figures", help=SUBCOMMANDS["figures"])
    figures.add_argument("--scale", type=float, default=0.15)
    figures.add_argument("--seed", type=int, default=42)
    figures.add_argument("--queries", type=int, default=5)

    catalog = sub.add_parser("catalog", help=SUBCOMMANDS["catalog"])
    catalog.add_argument(
        "action",
        choices=("build", "save", "load", "advise", "refresh", "status"),
    )
    catalog.add_argument("--path", default=None, help="catalog file (v2 JSON)")
    catalog.add_argument("--scale", type=float, default=0.15)
    catalog.add_argument("--seed", type=int, default=42)
    catalog.add_argument("--queries", type=int, default=3)
    catalog.add_argument("--max-joins", type=int, default=1, dest="max_joins")
    catalog.add_argument(
        "--method",
        choices=("full", "sampled"),
        default="full",
        help="refresh rebuild method (default: full)",
    )
    catalog.add_argument(
        "--budget",
        type=int,
        default=None,
        help="space budget: max conditioned SITs kept after refresh/advise",
    )
    catalog.add_argument(
        "--update-table",
        action="append",
        dest="update_table",
        metavar="TABLE",
        help="simulate a table update before refreshing (repeatable)",
    )
    catalog.add_argument(
        "--storm",
        type=int,
        default=0,
        metavar="N",
        help=(
            "status only: drive N coalesced table updates through the "
            "streaming ingestion pipeline first, so the status report "
            "carries the ingest/staleness block"
        ),
    )

    serve = sub.add_parser("serve", help=SUBCOMMANDS["serve"])
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument(
        "--port", type=int, default=8642, help="0 picks an ephemeral port"
    )
    serve.add_argument(
        "--workers", type=int, default=2, help="estimation worker threads"
    )
    serve.add_argument(
        "--queue-depth",
        type=int,
        default=256,
        dest="queue_depth",
        help="admission-queue bound; beyond it requests are shed",
    )
    serve.add_argument(
        "--batch-window-ms",
        type=float,
        default=2.0,
        dest="batch_window_ms",
        help="micro-batch coalescing window",
    )
    serve.add_argument(
        "--max-batch", type=int, default=32, dest="max_batch"
    )
    serve.add_argument(
        "--backend",
        choices=("sit", "bn", "sample"),
        default="sit",
        help=(
            "estimator backend worker sessions answer with (default: "
            "sit; the only backend --shards supports)"
        ),
    )
    serve.add_argument(
        "--path", default=None, help="serve a saved catalog file (v2 JSON)"
    )
    serve.add_argument(
        "--config",
        default=None,
        help=(
            "deployment config file (nested ServiceConfig JSON, "
            "healing/cluster blocks included); overrides the tuning flags"
        ),
    )
    serve.add_argument(
        "--shards",
        type=int,
        default=0,
        help=(
            "serve through the multi-process cluster tier with this many "
            "shard processes (0 = single-process service)"
        ),
    )
    serve.add_argument(
        "--replicas",
        type=int,
        default=0,
        help="hedge-only replica processes (requires --shards)",
    )
    serve.add_argument(
        "--fault-plan",
        default=None,
        dest="fault_plan",
        help=(
            "chaos harness: inline JSON or a path to a fault-plan file "
            "(see repro.resilience.FaultPlan); armed for the server's "
            "whole life"
        ),
    )
    serve.add_argument("--scale", type=float, default=0.15)
    serve.add_argument("--seed", type=int, default=42)
    serve.add_argument("--queries", type=int, default=3)
    serve.add_argument("--max-joins", type=int, default=1, dest="max_joins")

    advisor = sub.add_parser("advisor", help=SUBCOMMANDS["advisor"])
    advisor.add_argument(
        "action",
        choices=("tune", "status", "history"),
        help=(
            "tune: run tick(s) and print the last tuning report; "
            "status: print the advisor status block; "
            "history: print every tick report of this run"
        ),
    )
    advisor.add_argument("--scale", type=float, default=0.08)
    advisor.add_argument("--seed", type=int, default=42)
    advisor.add_argument(
        "--queries",
        type=int,
        default=12,
        help="workload queries driven as feedback before ticking",
    )
    advisor.add_argument("--max-joins", type=int, default=2, dest="max_joins")
    advisor.add_argument(
        "--budget-fraction",
        type=float,
        default=0.25,
        dest="budget_fraction",
        help=(
            "space budget as a fraction of the full conditioned-SIT "
            "footprint (0 forces no-solution-found; negative values are "
            "rejected by the config)"
        ),
    )
    advisor.add_argument(
        "--max-q-error",
        type=float,
        default=1000.0,
        dest="max_q_error",
        help="safety bound on the worst-case held-out q-error",
    )
    advisor.add_argument(
        "--max-moves",
        type=int,
        default=20,
        dest="max_moves",
        help="greedy-search move budget per tick",
    )
    advisor.add_argument(
        "--ticks", type=int, default=1, help="tuning ticks to run"
    )

    args = parser.parse_args(argv)
    if args.command == "info":
        return _cmd_info(args)
    if args.command == "demo":
        return _demo()
    if args.command == "estimate":
        return _cmd_estimate(args)
    if args.command == "explain":
        if args.sql is None:
            args.sql = args.sql_flag
        if args.sql is None:
            parser.error("explain requires a SQL query (positional or --sql)")
        return _cmd_explain(args)
    if args.command == "figures":
        return _cmd_figures(args)
    if args.command == "catalog":
        return _cmd_catalog(args)
    if args.command == "serve":
        return _cmd_serve(args)
    if args.command == "advisor":
        return _cmd_advisor(args)
    parser.error(f"unknown command {args.command!r}")  # pragma: no cover
    return 2  # pragma: no cover


if __name__ == "__main__":
    raise SystemExit(main())
