"""In-memory column-store tables and the database catalog.

Every column is a ``float64`` numpy array; ``NaN`` is NULL.  The
:class:`Database` is the single object the rest of the library passes
around: ground-truth evaluation, histogram/SIT construction and the
workload generator all read from it.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.predicates import Attribute
from repro.engine.schema import Schema, TableSchema


@dataclass
class Table:
    """One table: a schema plus equal-length column arrays."""

    schema: TableSchema
    data: dict[str, np.ndarray]

    def __post_init__(self) -> None:
        lengths = {column: len(array) for column, array in self.data.items()}
        if set(lengths) != set(self.schema.columns):
            missing = set(self.schema.columns) - set(lengths)
            extra = set(lengths) - set(self.schema.columns)
            raise ValueError(
                f"table {self.schema.name}: column mismatch "
                f"(missing={sorted(missing)}, extra={sorted(extra)})"
            )
        if len(set(lengths.values())) > 1:
            raise ValueError(
                f"table {self.schema.name}: ragged columns {lengths}"
            )
        # Normalize to float64 so NaN-as-NULL works uniformly.
        for column, array in self.data.items():
            self.data[column] = np.asarray(array, dtype=np.float64)

    @property
    def name(self) -> str:
        return self.schema.name

    @property
    def row_count(self) -> int:
        if not self.schema.columns:
            return 0
        return len(self.data[self.schema.columns[0]])

    def column(self, name: str) -> np.ndarray:
        try:
            return self.data[name]
        except KeyError:
            raise KeyError(f"{self.name} has no column {name!r}") from None

    def __len__(self) -> int:
        return self.row_count


@dataclass
class Database:
    """A set of tables plus the system catalog (row counts)."""

    schema: Schema
    tables: dict[str, Table] = field(default_factory=dict)

    def add_table(self, table: Table) -> None:
        if table.name not in self.schema.tables:
            raise ValueError(f"table {table.name!r} is not in the schema")
        self.tables[table.name] = table

    def table(self, name: str) -> Table:
        try:
            return self.tables[name]
        except KeyError:
            raise KeyError(f"table {name!r} has no data loaded") from None

    def column(self, attribute: Attribute) -> np.ndarray:
        return self.table(attribute.table).column(attribute.column)

    def row_count(self, table: str) -> int:
        """Catalog lookup |T|."""
        return self.table(table).row_count

    def cross_product_size(self, tables) -> int:
        """|R1 x ... x Rn| from catalog lookups (Section 2)."""
        size = 1
        for name in tables:
            size *= self.row_count(name)
        return size

    @property
    def table_names(self) -> frozenset[str]:
        return frozenset(self.tables)
