"""In-memory relational engine: schemas, column-store tables, exact SPJ
evaluation used as ground truth for every experiment."""

from repro.engine.database import Database, Table
from repro.engine.executor import Executor, JoinResult, equi_join_pairs
from repro.engine.expressions import Query
from repro.engine.schema import ForeignKey, Schema, TableSchema

__all__ = [
    "Database",
    "Executor",
    "ForeignKey",
    "JoinResult",
    "Query",
    "Schema",
    "Table",
    "TableSchema",
    "equi_join_pairs",
]
