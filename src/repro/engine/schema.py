"""Schema objects for the in-memory relational engine.

The engine stores each table column as a 1-D ``numpy`` array of ``float64``;
``NaN`` encodes SQL ``NULL`` (the workload generator uses NULLs to model
dangling foreign keys, as the paper's data sets do).  Schemas carry enough
metadata — column names, declared foreign keys — for the workload generator
and the optimizer to reason about join paths without touching the data.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.predicates import Attribute


@dataclass(frozen=True)
class ForeignKey:
    """A declared foreign key ``source.column -> target.key``."""

    source_table: str
    source_column: str
    target_table: str
    target_column: str

    @property
    def source(self) -> Attribute:
        return Attribute(self.source_table, self.source_column)

    @property
    def target(self) -> Attribute:
        return Attribute(self.target_table, self.target_column)

    def __str__(self) -> str:
        return f"{self.source} -> {self.target}"


@dataclass(frozen=True)
class TableSchema:
    """Column layout of one table."""

    name: str
    columns: tuple[str, ...]
    primary_key: str | None = None

    def __post_init__(self) -> None:
        if len(set(self.columns)) != len(self.columns):
            raise ValueError(f"duplicate column names in table {self.name}")
        if self.primary_key is not None and self.primary_key not in self.columns:
            raise ValueError(
                f"primary key {self.primary_key!r} is not a column of {self.name}"
            )

    def attribute(self, column: str) -> Attribute:
        if column not in self.columns:
            raise KeyError(f"{self.name} has no column {column!r}")
        return Attribute(self.name, column)

    @property
    def attributes(self) -> tuple[Attribute, ...]:
        return tuple(Attribute(self.name, column) for column in self.columns)


@dataclass
class Schema:
    """A database schema: table layouts plus declared foreign keys."""

    tables: dict[str, TableSchema] = field(default_factory=dict)
    foreign_keys: list[ForeignKey] = field(default_factory=list)

    def add_table(self, table: TableSchema) -> None:
        if table.name in self.tables:
            raise ValueError(f"table {table.name!r} already declared")
        self.tables[table.name] = table

    def add_foreign_key(self, foreign_key: ForeignKey) -> None:
        for endpoint in (
            (foreign_key.source_table, foreign_key.source_column),
            (foreign_key.target_table, foreign_key.target_column),
        ):
            table, column = endpoint
            if table not in self.tables:
                raise ValueError(f"unknown table {table!r} in foreign key")
            if column not in self.tables[table].columns:
                raise ValueError(f"unknown column {table}.{column} in foreign key")
        self.foreign_keys.append(foreign_key)

    def table(self, name: str) -> TableSchema:
        try:
            return self.tables[name]
        except KeyError:
            raise KeyError(f"unknown table {name!r}") from None

    def join_edges(self) -> list[tuple[Attribute, Attribute]]:
        """All (source, target) attribute pairs joinable via declared FKs."""
        return [(fk.source, fk.target) for fk in self.foreign_keys]
