"""Canonical SPJ query representation.

Section 2 of the paper represents every SPJ query as predicates applied to
the cartesian product of the referenced tables; :class:`Query` is that
canonical form.  Projection attributes are irrelevant to cardinality and
are therefore not modelled.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.predicates import (
    Predicate,
    PredicateSet,
    filter_predicates,
    join_predicates,
    tables_of,
)


@dataclass(frozen=True)
class Query:
    """An SPJ query in the paper's canonical form: ``sigma_P(R^x)``.

    ``tables`` may include tables not referenced by any predicate (pure
    cross-product factors); by default it is exactly ``tables(P)``.
    """

    predicates: PredicateSet
    tables: frozenset[str] = field(default=frozenset())

    def __post_init__(self) -> None:
        predicates = frozenset(self.predicates)
        object.__setattr__(self, "predicates", predicates)
        referenced = tables_of(predicates)
        tables = frozenset(self.tables) | referenced
        object.__setattr__(self, "tables", tables)

    @classmethod
    def of(cls, *predicates: Predicate) -> "Query":
        return cls(frozenset(predicates))

    @property
    def joins(self) -> PredicateSet:
        return join_predicates(self.predicates)

    @property
    def filters(self) -> PredicateSet:
        return filter_predicates(self.predicates)

    @property
    def join_count(self) -> int:
        return len(self.joins)

    @property
    def filter_count(self) -> int:
        return len(self.filters)

    def subquery(self, predicates: PredicateSet) -> "Query":
        """The sub-query applying only ``predicates`` (must be a subset)."""
        predicates = frozenset(predicates)
        if not predicates <= self.predicates:
            raise ValueError("sub-query predicates must be a subset of the query")
        return Query(predicates)

    def __str__(self) -> str:
        parts = " AND ".join(sorted(str(p) for p in self.predicates))
        return f"sigma[{parts}]({' x '.join(sorted(self.tables))})"
