"""Vectorized SPJ execution and exact selectivity ground truth.

The paper defines the selectivity of a predicate set ``P`` over tables ``R``
as ``|sigma_P(R^x)| / |R^x|``.  Materializing ``R^x`` is hopeless, so the
executor evaluates ``sigma_P`` per *connected component* of ``P`` (see
:func:`repro.core.predicates.connected_components`) and multiplies the
component cardinalities — exactly Property 2 (separable decomposition),
which holds with no assumptions.  Inside a component, joins run as
vectorized numpy hash joins and filters as boolean masks.

Component cardinalities are memoized, which is what makes evaluating the
ground truth for every sub-query of a 10-predicate workload query feasible:
the ``2^n`` sub-queries share a much smaller set of distinct components.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.predicates import (
    Attribute,
    FilterPredicate,
    JoinPredicate,
    PredicateSet,
    connected_components,
    tables_of,
)
from repro.engine.database import Database


def equi_join_pairs(
    left: np.ndarray, right: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """All index pairs ``(i, j)`` with ``left[i] == right[j]`` (NaN excluded).

    Returns two equal-length int arrays.  Runs in ``O((n + m) log m)`` using
    sort + searchsorted; the pair-expansion step is fully vectorized.
    """
    left = np.asarray(left, dtype=np.float64)
    right = np.asarray(right, dtype=np.float64)
    left_valid = np.flatnonzero(~np.isnan(left))
    right_valid = np.flatnonzero(~np.isnan(right))
    if left_valid.size == 0 or right_valid.size == 0:
        empty = np.empty(0, dtype=np.intp)
        return empty, empty

    right_keys = right[right_valid]
    order = np.argsort(right_keys, kind="stable")
    right_sorted = right_keys[order]

    left_keys = left[left_valid]
    starts = np.searchsorted(right_sorted, left_keys, side="left")
    stops = np.searchsorted(right_sorted, left_keys, side="right")
    counts = stops - starts
    total = int(counts.sum())
    if total == 0:
        empty = np.empty(0, dtype=np.intp)
        return empty, empty

    left_idx = np.repeat(left_valid, counts)
    # Positions within the sorted right array for every emitted pair:
    # for pair group i the positions are starts[i] .. stops[i]-1.
    group_offsets = np.cumsum(counts) - counts
    positions = (
        np.arange(total, dtype=np.intp)
        - np.repeat(group_offsets, counts)
        + np.repeat(starts, counts)
    )
    right_idx = right_valid[order[positions]]
    return left_idx, right_idx


@dataclass
class JoinResult:
    """A materialized join: per-table row-index arrays of equal length.

    ``indices[t][k]`` is the row of table ``t`` participating in result
    tuple ``k``.  Tables absent from ``indices`` were not touched by the
    evaluated predicates.
    """

    database: Database
    indices: dict[str, np.ndarray]

    @property
    def row_count(self) -> int:
        if not self.indices:
            return 0
        return len(next(iter(self.indices.values())))

    def column(self, attribute: Attribute) -> np.ndarray:
        """Values of ``attribute`` over the result tuples."""
        base = self.database.column(attribute)
        return base[self.indices[attribute.table]]


class Executor:
    """Exact SPJ evaluation over a :class:`Database` with memoized counts."""

    def __init__(self, database: Database):
        self.database = database
        self._count_cache: dict[PredicateSet, int] = {}
        #: number of component evaluations that missed the cache (test hook)
        self.cache_misses = 0

    # ------------------------------------------------------------------
    # Cardinality / selectivity ground truth
    # ------------------------------------------------------------------
    def cardinality(
        self, predicates: PredicateSet, tables: frozenset[str] | None = None
    ) -> int:
        """``|sigma_P(R^x)|`` where ``R`` defaults to ``tables(P)``.

        Tables in ``tables`` not referenced by any predicate contribute a
        plain cartesian factor ``|T|``.
        """
        predicates = frozenset(predicates)
        referenced = tables_of(predicates)
        if tables is None:
            tables = referenced
        elif not referenced <= tables:
            raise ValueError("predicates reference tables outside the given set")
        count = 1
        for component in connected_components(predicates):
            count *= self._component_cardinality(component)
            if count == 0:
                break
        for table in tables - referenced:
            count *= self.database.row_count(table)
        return count

    def selectivity(
        self, predicates: PredicateSet, tables: frozenset[str] | None = None
    ) -> float:
        """Exact ``Sel_R(P)`` (Definition 1 with ``Q`` empty)."""
        predicates = frozenset(predicates)
        if tables is None:
            tables = tables_of(predicates)
        if not predicates:
            return 1.0
        denominator = self.database.cross_product_size(tables)
        if denominator == 0:
            return 0.0
        return self.cardinality(predicates, tables) / denominator

    def conditional_selectivity(
        self,
        p_predicates: PredicateSet,
        q_predicates: PredicateSet,
        tables: frozenset[str] | None = None,
    ) -> float:
        """Exact ``Sel_R(P|Q)`` per Definition 1.

        Returns 1.0 when the conditioned relation is empty (the factor is
        vacuous in that case; any decomposition containing it multiplies
        against a zero ``Sel(Q)``).
        """
        p_predicates = frozenset(p_predicates)
        q_predicates = frozenset(q_predicates)
        union = p_predicates | q_predicates
        if tables is None:
            tables = tables_of(union)
        q_card = self.cardinality(q_predicates, tables)
        if q_card == 0:
            return 1.0
        return self.cardinality(union, tables) / q_card

    # ------------------------------------------------------------------
    # Materialized execution (histogram/SIT construction needs values)
    # ------------------------------------------------------------------
    def execute(
        self, predicates: PredicateSet, tables: frozenset[str] | None = None
    ) -> JoinResult:
        """Materialize ``sigma_P`` over the connected closure of ``P``.

        ``tables`` may add unreferenced tables; they are *not* expanded into
        the result (their contribution is a pure cross-product factor), so
        callers that need a column of an unreferenced table should read the
        base column directly — its distribution over the cross product is
        its base distribution.
        """
        predicates = frozenset(predicates)
        referenced = tables_of(predicates)
        if tables is not None and not referenced <= tables:
            raise ValueError("predicates reference tables outside the given set")
        indices: dict[str, np.ndarray] = {}
        for component in connected_components(predicates):
            part = self._evaluate_component(component)
            if not indices:
                indices = part.indices
                continue
            indices = self._cross_indices(indices, part.indices)
        return JoinResult(self.database, indices)

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _component_cardinality(self, component: PredicateSet) -> int:
        cached = self._count_cache.get(component)
        if cached is not None:
            return cached
        self.cache_misses += 1
        count = self._evaluate_component(component).row_count
        self._count_cache[component] = count
        return count

    def _evaluate_component(self, component: PredicateSet) -> JoinResult:
        """Evaluate one table-connected predicate set bottom-up.

        Strategy: pre-filter each table with its filter predicates, seed the
        result with the smallest filtered table, then repeatedly apply join
        predicates — extending the result by a hash join when exactly one
        side is already placed, or by a mask when both are.
        """
        filters: dict[str, list[FilterPredicate]] = {}
        joins: list[JoinPredicate] = []
        for predicate in component:
            if isinstance(predicate, FilterPredicate):
                filters.setdefault(predicate.attribute.table, []).append(predicate)
            else:
                joins.append(predicate)

        tables = tables_of(component)
        surviving: dict[str, np.ndarray] = {}
        for table in tables:
            rows = self.database.row_count(table)
            mask = np.ones(rows, dtype=bool)
            for predicate in filters.get(table, ()):  # NaN compares False
                values = self.database.column(predicate.attribute)
                mask &= (values >= predicate.low) & (values <= predicate.high)
            surviving[table] = np.flatnonzero(mask)

        # Seed with the most selective table for smaller intermediates.
        seed = min(tables, key=lambda t: len(surviving[t]))
        indices: dict[str, np.ndarray] = {seed: surviving[seed]}
        pending = sorted(joins, key=str)  # deterministic order
        while pending:
            progressed = False
            remaining: list[JoinPredicate] = []
            for join in pending:
                left_in = join.left.table in indices
                right_in = join.right.table in indices
                if left_in and right_in:
                    self._apply_join_mask(indices, join)
                    progressed = True
                elif left_in or right_in:
                    placed, incoming = (
                        (join.left, join.right) if left_in else (join.right, join.left)
                    )
                    self._apply_join_extend(indices, placed, incoming, surviving)
                    progressed = True
                else:
                    remaining.append(join)
            pending = remaining
            if pending and not progressed:
                # Connectivity of the component guarantees progress.
                raise AssertionError("disconnected joins inside a component")
        return JoinResult(self.database, indices)

    def _apply_join_mask(self, indices: dict[str, np.ndarray], join: JoinPredicate) -> None:
        left_values = self.database.column(join.left)[indices[join.left.table]]
        right_values = self.database.column(join.right)[indices[join.right.table]]
        mask = left_values == right_values  # NaN == NaN is False
        for table in list(indices):
            indices[table] = indices[table][mask]

    def _apply_join_extend(
        self,
        indices: dict[str, np.ndarray],
        placed: Attribute,
        incoming: Attribute,
        surviving: dict[str, np.ndarray],
    ) -> None:
        placed_values = self.database.column(placed)[indices[placed.table]]
        incoming_rows = surviving[incoming.table]
        incoming_values = self.database.column(incoming)[incoming_rows]
        left_idx, right_idx = equi_join_pairs(placed_values, incoming_values)
        for table in list(indices):
            indices[table] = indices[table][left_idx]
        indices[incoming.table] = incoming_rows[right_idx]

    @staticmethod
    def _cross_indices(
        first: dict[str, np.ndarray], second: dict[str, np.ndarray]
    ) -> dict[str, np.ndarray]:
        """Cartesian product of two disjoint partial results."""
        n = len(next(iter(first.values()))) if first else 0
        m = len(next(iter(second.values()))) if second else 0
        out: dict[str, np.ndarray] = {}
        for table, rows in first.items():
            out[table] = np.repeat(rows, m)
        for table, rows in second.items():
            out[table] = np.tile(rows, n)
        return out
