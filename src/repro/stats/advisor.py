"""Workload-driven SIT selection under a space budget.

The paper assumes a pool of SITs exists and asks how to best *use* it;
deciding which SITs to *build* is the companion problem (studied for [4]
in follow-on work).  This advisor implements the natural greedy policy
suggested by the paper's own findings:

* a SIT only matters if its generating expression actually reshapes the
  attribute's distribution — measured exactly by ``diff_H`` (Section 3.5,
  "H2 provides no benefit over the base histogram" when ``diff = 0``);
* a SIT matters more when more workload queries can apply it;
* SITs over small expressions (1-2 joins) deliver most of the accuracy
  (Section 5.2), so ties favor cheaper expressions.

``score = diff_H * applicability / (1 + joins)`` with the top-``k``
candidates materialized on top of the base histograms.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

from repro.core.predicates import attributes_of
from repro.engine.expressions import Query
from repro.stats.builder import SITBuilder
from repro.stats.pool import SITPool, workload_sit_requests
from repro.stats.sit import SIT


@dataclass(frozen=True)
class AdvisorConfig:
    """Budget and candidate-generation knobs."""

    max_sits: int = 20
    max_joins: int = 2
    #: candidates with diff below this provide no benefit (Example 4)
    min_diff: float = 0.01

    def __post_init__(self) -> None:
        if self.max_sits < 0:
            raise ValueError("max_sits must be non-negative")
        if self.max_joins < 0:
            raise ValueError("max_joins must be non-negative")


@dataclass(frozen=True)
class SITRecommendation:
    """One scored candidate."""

    sit: SIT
    score: float
    applicability: int  # queries whose joins subsume the expression

    def __str__(self) -> str:
        return f"{self.sit} (score={self.score:.3f}, queries={self.applicability})"


@dataclass
class SITAdvisor:
    """Recommends which SITs to materialize for a workload."""

    builder: SITBuilder
    config: AdvisorConfig = field(default_factory=AdvisorConfig)

    def candidates(self, queries: Iterable[Query]) -> list[SITRecommendation]:
        """All scored candidates, best first.

        Candidate generation mirrors the paper's ``J_i`` pools (every
        attribute/connected-join-subset pair present in the workload);
        every candidate is built to obtain its ``diff_H``, which is the
        advisor's whole evidence base.
        """
        queries = list(queries)
        requests = workload_sit_requests(queries, self.config.max_joins)
        recommendations: list[SITRecommendation] = []
        for expression in sorted(
            requests, key=lambda e: (len(e), sorted(map(str, e)))
        ):
            if not expression:
                continue  # base histograms are always built
            applicability = sum(
                1 for query in queries if expression <= query.joins
            )
            if applicability == 0:
                continue
            attributes = sorted(requests[expression])
            for sit in self.builder.build_many(expression, attributes):
                if sit.diff < self.config.min_diff:
                    continue
                score = sit.diff * applicability / (1.0 + sit.join_count)
                recommendations.append(
                    SITRecommendation(sit, score, applicability)
                )
        recommendations.sort(key=lambda r: (-r.score, str(r.sit)))
        return recommendations

    def recommend(self, queries: Iterable[Query]) -> list[SITRecommendation]:
        """The top ``max_sits`` candidates."""
        return self.candidates(queries)[: self.config.max_sits]

    def build_pool(self, queries: Iterable[Query]) -> SITPool:
        """Base histograms plus the recommended SITs."""
        queries = list(queries)
        pool = SITPool()
        for attribute in sorted(
            attributes_of(frozenset().union(*(q.predicates for q in queries)))
            if queries
            else ()
        ):
            pool.add(self.builder.build_base(attribute))
        for recommendation in self.recommend(queries):
            pool.add(recommendation.sit)
        return pool
