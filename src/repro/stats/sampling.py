"""Sample-based SITs.

The paper notes that SITs need not be histograms: "the same ideas can be
applied to other statistical estimators, such as wavelets or samples".
This module provides the sample instantiation, in the spirit of join
synopses (Acharya et al., SIGMOD 1999): instead of scanning the full
expression result, a SIT is built from a uniform row sample of it, and
the sampled histogram is scaled back to the estimated result cardinality
so the rest of the framework (matching, histogram joins, ``diff_H``)
works unchanged.

Sampling trades accuracy for construction cost; the
``bench_sampling_sits`` benchmark quantifies the trade-off.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.histograms.base import Bucket, Histogram, values_and_frequencies
from repro.stats.builder import SITBuilder


def chao1_distinct(values: np.ndarray) -> float:
    """Chao1 lower-bound estimate of the population's distinct count.

    ``D ≈ d + f1² / (2 f2)`` where ``f1``/``f2`` are the numbers of
    values seen exactly once/twice in the sample; the bias-corrected form
    is used when no doubletons exist.
    """
    _, counts, _ = values_and_frequencies(values)
    d = float(counts.size)
    if d == 0.0:
        return 0.0
    f1 = float((counts == 1).sum())
    f2 = float((counts == 2).sum())
    if f2 > 0:
        return d + f1 * f1 / (2.0 * f2)
    return d + f1 * (f1 - 1.0) / 2.0


@dataclass
class SamplingSITBuilder(SITBuilder):
    """Builds SITs from uniform samples of their expression results.

    Parameters (in addition to :class:`SITBuilder`'s):

    sample_fraction:
        Fraction of the expression result to sample (Bernoulli-style via
        a seeded permutation).
    min_sample_rows:
        Small results are taken whole: sampling below this row count
        would add variance without saving anything.
    sampling_seed:
        Seed for the sampling generator (independent of data seeds).
    """

    sample_fraction: float = 0.1
    min_sample_rows: int = 200
    sampling_seed: int = 0

    def __post_init__(self) -> None:
        super().__post_init__()
        if not 0.0 < self.sample_fraction <= 1.0:
            raise ValueError("sample_fraction must be in (0, 1]")
        self._rng = np.random.default_rng(self.sampling_seed)

    # ------------------------------------------------------------------
    def _sample(self, values: np.ndarray) -> tuple[np.ndarray, float]:
        """A uniform sample of ``values`` and the inverse sampling rate."""
        size = len(values)
        target = int(round(size * self.sample_fraction))
        if size <= self.min_sample_rows or target >= size:
            return values, 1.0
        target = max(target, self.min_sample_rows)
        chosen = self._rng.choice(size, size=target, replace=False)
        return values[chosen], size / target

    def _summarize(self, values: np.ndarray) -> Histogram:
        sample, scale = self._sample(np.asarray(values, dtype=np.float64))
        if scale == 1.0:
            return self.histogram_builder(sample, self.max_buckets)
        return self._continuous_histogram(sample, scale)

    def _continuous_histogram(self, sample: np.ndarray, scale: float) -> Histogram:
        """Gap-free equi-depth buckets over the sample, scaled up.

        A sample misses most distinct values, so exact point buckets would
        drop unseen values from the domain entirely (catastrophic for key
        columns feeding histogram joins).  Contiguous range buckets model
        unseen values inside the sampled range; per-bucket frequencies
        scale by the sampling rate and distinct counts by the Chao1
        population estimate.
        """
        distinct, counts, nulls = values_and_frequencies(sample)
        if distinct.size == 0:
            return Histogram([], null_count=nulls * scale)
        population_distinct = chao1_distinct(sample)
        ratio = max(1.0, population_distinct / distinct.size)
        bucket_count = min(self.max_buckets, max(1, distinct.size))
        cumulative = np.cumsum(counts)
        total = float(cumulative[-1])
        buckets: list[Bucket] = []
        start = 0
        for index in range(bucket_count):
            if start >= distinct.size:
                break
            goal = total * (index + 1) / bucket_count
            stop = int(np.searchsorted(cumulative, goal, side="left")) + 1
            stop = min(max(stop, start + 1), distinct.size)
            if index == bucket_count - 1:
                stop = distinct.size
            group_values = distinct[start:stop]
            group_mass = float(counts[start:stop].sum()) * scale
            low = float(group_values[0])
            # Extend to the next group's first value so the sampled domain
            # is covered without gaps (unseen values land in a bucket).
            high = (
                float(distinct[stop]) if stop < distinct.size else float(group_values[-1])
            )
            group_distinct = min(group_mass, group_values.size * ratio)
            buckets.append(Bucket(low, high, group_mass, max(group_distinct, 1.0)))
            start = stop
        return Histogram(buckets, null_count=nulls * scale)

    def _compute_diff(self, attribute, values, histogram) -> float:
        # Estimate diff from the sample too: the estimator is consistent
        # and avoids touching the full result twice.
        sample, _ = self._sample(np.asarray(values, dtype=np.float64))
        return super()._compute_diff(attribute, sample, histogram)
