"""Statistics on query expressions (SITs): definitions, construction from a
database, ``diff_H`` computation and workload-driven pool generation."""

from repro.stats.advisor import AdvisorConfig, SITAdvisor, SITRecommendation
from repro.stats.builder import SITBuilder
from repro.stats.diff import approximate_diff, exact_diff
from repro.stats.feedback import FeedbackEstimator, FeedbackRepository
from repro.stats.io import (
    CatalogDocument,
    PoolFormatError,
    atomic_write_text,
    load_document,
    load_pool,
    migrate_v1_to_v2,
    save_document,
    save_pool,
)
from repro.stats.sampling import SamplingSITBuilder
from repro.stats.pool import (
    SITPool,
    build_workload_pool,
    connected_join_subsets,
    workload_sit_requests,
)
from repro.stats.sit import SIT

__all__ = [
    "AdvisorConfig",
    "CatalogDocument",
    "FeedbackEstimator",
    "FeedbackRepository",
    "SIT",
    "SITAdvisor",
    "SITBuilder",
    "SITRecommendation",
    "SITPool",
    "SamplingSITBuilder",
    "approximate_diff",
    "atomic_write_text",
    "PoolFormatError",
    "build_workload_pool",
    "connected_join_subsets",
    "exact_diff",
    "load_document",
    "load_pool",
    "migrate_v1_to_v2",
    "save_document",
    "save_pool",
    "workload_sit_requests",
]
