"""SIT pools: the sets of available statistics an estimator may use.

The paper's experiments use pools ``J_i`` containing every SIT of the form
``SIT_R(a | Q)`` where ``Q`` is a (connected) set of at most ``i`` join
predicates syntactically present in some workload query and ``a`` is an
attribute of that query whose table participates in ``Q``.  ``J_0``
contains all and only base-table histograms; every ``J_i`` includes them
too ("at most i join predicates").

Separable expressions are excluded per Assumption 1 (minimality of
histograms): a SIT over a cross-product expression is dominated by SITs
over its connected parts.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from itertools import combinations
from typing import Iterable, Iterator

from repro.core.predicates import (
    Attribute,
    PredicateSet,
    attributes_of,
    connected_components,
    tables_of,
)
from repro.engine.expressions import Query
from repro.stats.builder import SITBuilder
from repro.stats.sit import SIT


@dataclass
class SITPool:
    """A queryable collection of SITs, indexed by attribute."""

    sits: list[SIT] = field(default_factory=list)
    _by_attribute: dict[Attribute, list[SIT]] = field(
        init=False, default_factory=dict, repr=False
    )
    _by_member: dict = field(init=False, default_factory=dict, repr=False)
    _expressions_by_attribute: dict[Attribute, list[PredicateSet]] = field(
        init=False, default_factory=dict, repr=False
    )
    #: monotonically increasing counter, bumped on every :meth:`add`.  The
    #: bitmask universe (:mod:`repro.core.universe`) keys its attribute ->
    #: SIT-expression mask index on this so a pool mutation invalidates the
    #: derived masks without the pool knowing about bit layouts.
    version: int = field(init=False, default=0, repr=False)

    def __post_init__(self) -> None:
        sits, self.sits = self.sits, []
        for sit in sits:
            self.add(sit)

    def add(self, sit: SIT) -> None:
        """Add a SIT, maintaining the attribute and expression indexes."""
        self.sits.append(sit)
        self._by_attribute.setdefault(sit.attribute, []).append(sit)
        for predicate in sit.expression:
            self._by_member.setdefault(predicate, []).append(sit)
        if sit.expression:
            expressions = self._expressions_by_attribute.setdefault(
                sit.attribute, []
            )
            if sit.expression not in expressions:
                expressions.append(sit.expression)
        self.version += 1

    # -- the unified query API -----------------------------------------
    def find(
        self,
        attribute: Attribute | None = None,
        *,
        expression_superset: PredicateSet | None = None,
        expression_member=None,
        base_only: bool = False,
    ) -> list[SIT]:
        """The single SIT-query entry point.

        All criteria are optional and conjunctive:

        * ``attribute`` — SITs built over this attribute;
        * ``expression_superset`` — SITs applicable under a conditioning
          ``Q``: generating expression ``⊆ expression_superset``
          (Section 3.3's candidate condition);
        * ``expression_member`` — SITs whose generating expression
          contains this predicate (Section 3.5's dependence probes);
        * ``base_only`` — restrict to base-table histograms.

        Results preserve pool insertion order.
        """
        if attribute is not None:
            candidates = self._by_attribute.get(attribute, [])
        elif expression_member is not None:
            candidates = self._by_member.get(expression_member, [])
        else:
            candidates = self.sits
        out = []
        for sit in candidates:
            if base_only and not sit.is_base:
                continue
            if (
                expression_member is not None
                and expression_member not in sit.expression
            ):
                continue
            if (
                expression_superset is not None
                and not sit.expression <= expression_superset
            ):
                continue
            out.append(sit)
        return out

    def find_expressions(self, attribute: Attribute) -> list[PredicateSet]:
        """Distinct non-empty generating expressions of SITs on ``attribute``.

        This is the (attribute -> expressions) index Section 3.4's pruning
        needs: a decomposition ``Sel(P'|Q)`` is worth exploring iff some
        attribute of ``P'`` has one of these expressions contained in ``Q``.
        """
        return self._expressions_by_attribute.get(attribute, [])

    def find_base(self, attribute: Attribute) -> SIT | None:
        """The base-table histogram on ``attribute``, if present."""
        for sit in self.find(attribute, base_only=True):
            return sit
        return None

    # -- derived-state invalidation ------------------------------------
    def invalidate_derived(self) -> None:
        """Bump :attr:`version` without changing membership.

        The catalog's table-update event path calls this so every structure
        *derived* from the pool (the bitmask universe's Section 3.4 prune
        masks, most importantly) is rebuilt before its next use, even though
        the set of SITs is unchanged.  Rebuilding from identical contents is
        deterministic, so in-flight estimations stay consistent.
        """
        self.version += 1

    def base_only(self) -> "SITPool":
        """The ``J_0`` restriction of this pool (base histograms only)."""
        return SITPool([sit for sit in self.sits if sit.is_base])

    def excluding(self, names: Iterable[str]) -> "SITPool":
        """A pool without the SITs whose ``str`` is in ``names``.

        This is the level-1 re-plan input of the graceful-degradation
        ladder (:mod:`repro.resilience`): the failed statistics are cut
        out and the DP re-runs over everything still standing.  Any SIT
        — conditioned or base — can be excluded; a base histogram that
        is corrupt is just as unusable as a missing SIT.
        """
        excluded = set(names)
        return SITPool([sit for sit in self.sits if str(sit) not in excluded])

    def restrict_joins(self, max_joins: int) -> "SITPool":
        """The ``J_i`` restriction: SITs with at most ``max_joins`` joins."""
        return SITPool([sit for sit in self.sits if sit.join_count <= max_joins])

    def __len__(self) -> int:
        return len(self.sits)

    def __iter__(self) -> Iterator[SIT]:
        return iter(self.sits)

    def __contains__(self, sit: SIT) -> bool:
        return sit in self.sits


def connected_join_subsets(
    joins: PredicateSet, max_size: int
) -> list[PredicateSet]:
    """All non-empty, table-connected subsets of ``joins`` up to ``max_size``."""
    join_list = sorted(joins, key=str)
    subsets: list[PredicateSet] = []
    for size in range(1, min(max_size, len(join_list)) + 1):
        for combo in combinations(join_list, size):
            candidate = frozenset(combo)
            if len(connected_components(candidate)) == 1:
                subsets.append(candidate)
    return subsets


def workload_sit_requests(
    queries: Iterable[Query], max_joins: int
) -> dict[PredicateSet, set[Attribute]]:
    """The (expression -> attributes) map a ``J_{max_joins}`` pool needs.

    An empty-expression entry collects every attribute syntactically present
    in the workload (those get base histograms).
    """
    requests: dict[PredicateSet, set[Attribute]] = {frozenset(): set()}
    for query in queries:
        query_attributes = attributes_of(query.predicates)
        requests[frozenset()].update(query_attributes)
        for expression in connected_join_subsets(query.joins, max_joins):
            expression_tables = tables_of(expression)
            matching = {
                attribute
                for attribute in query_attributes
                if attribute.table in expression_tables
            }
            if matching:
                requests.setdefault(expression, set()).update(matching)
    return requests


def build_workload_pool(
    builder: SITBuilder, queries: Iterable[Query], max_joins: int
) -> SITPool:
    """Build the paper's ``J_{max_joins}`` pool for a workload.

    The returned pool can be cheaply narrowed with
    :meth:`SITPool.restrict_joins` to obtain every smaller ``J_i`` without
    rebuilding, which is how the Figure 7/8 sweeps are produced.
    """
    queries = list(queries)
    requests = workload_sit_requests(queries, max_joins)
    pool = SITPool()
    seen: set[tuple[Attribute, PredicateSet]] = set()
    for expression in sorted(requests, key=lambda e: (len(e), sorted(map(str, e)))):
        attributes = sorted(
            a for a in requests[expression] if (a, expression) not in seen
        )
        if not attributes:
            continue
        for sit in builder.build_many(expression, attributes):
            pool.add(sit)
            seen.add((sit.attribute, expression))
    return pool
