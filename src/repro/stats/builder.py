"""Construction of SITs from a database.

SIT construction executes the generating query expression and builds a
histogram of the requested attribute over the result.  A SIT *pool*
typically contains many SITs sharing the same expression (one per
attribute), so :class:`SITBuilder` groups requests by expression and
executes each expression exactly once.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterable

import numpy as np

from repro.core.predicates import Attribute, PredicateSet, tables_of
from repro.engine.database import Database
from repro.engine.executor import Executor
from repro.histograms.base import Histogram
from repro.histograms.maxdiff import DEFAULT_MAX_BUCKETS, build_maxdiff
from repro.stats.diff import approximate_diff, exact_diff
from repro.stats.sit import SIT

HistogramBuilder = Callable[[np.ndarray, int], Histogram]


@dataclass
class SITBuilder:
    """Builds SITs (and plain base histograms) from a :class:`Database`.

    Parameters
    ----------
    database:
        Source data.
    histogram_builder:
        Bucketing scheme; defaults to MaxDiff(V,A) as in the paper.
    max_buckets:
        Paper default: 200.
    exact_diffs:
        When True (default) ``diff_H`` is computed exactly from tuples; when
        False it is approximated from the two histograms (the cheaper
        variant the paper describes for production use).
    """

    database: Database
    histogram_builder: HistogramBuilder = build_maxdiff
    max_buckets: int = DEFAULT_MAX_BUCKETS
    exact_diffs: bool = True
    _executor: Executor = field(init=False)
    _base_cache: dict[Attribute, SIT] = field(init=False, default_factory=dict)

    def __post_init__(self) -> None:
        self._executor = Executor(self.database)

    # ------------------------------------------------------------------
    def build_base(self, attribute: Attribute) -> SIT:
        """A base-table histogram as a SIT with an empty expression."""
        cached = self._base_cache.get(attribute)
        if cached is not None:
            return cached
        values = self.database.column(attribute)
        histogram = self._summarize(values)
        sit = SIT(attribute, frozenset(), histogram, diff=0.0)
        self._base_cache[attribute] = sit
        return sit

    def invalidate_table(self, table: str) -> int:
        """Evict cached state built from ``table`` (its data changed).

        Drops the memoized base SITs on the table's attributes and the
        executor's component-count memos touching it, so the next build
        reads current data.  Returns the number of evicted base SITs.
        """
        stale = [a for a in self._base_cache if a.table == table]
        for attribute in stale:
            del self._base_cache[attribute]
        counts = self._executor._count_cache
        for component in [c for c in counts if table in tables_of(c)]:
            del counts[component]
        return len(stale)

    def build(self, attribute: Attribute, expression: PredicateSet) -> SIT:
        """Build ``SIT(attribute | expression)``."""
        return self.build_many(expression, [attribute])[0]

    def build_many(
        self, expression: PredicateSet, attributes: Iterable[Attribute]
    ) -> list[SIT]:
        """Build several SITs over one expression with a single execution."""
        expression = frozenset(expression)
        attributes = list(attributes)
        if not expression:
            return [self.build_base(attribute) for attribute in attributes]
        result = self._executor.execute(expression)
        expression_tables = tables_of(expression)
        sits = []
        for attribute in attributes:
            if attribute.table in expression_tables:
                values = result.column(attribute)
            else:
                # Unreferenced table: its distribution over the cross
                # product equals the base distribution.
                values = self.database.column(attribute)
            histogram = self._summarize(values)
            diff = self._compute_diff(attribute, values, histogram)
            sits.append(SIT(attribute, expression, histogram, diff=diff))
        return sits

    # ------------------------------------------------------------------
    def _summarize(self, values: np.ndarray) -> Histogram:
        """Turn the expression-result values into the SIT's statistic.

        Subclasses may summarize differently (e.g. from a sample); the
        returned histogram's ``total`` must still estimate the full result
        cardinality.
        """
        return self.histogram_builder(values, self.max_buckets)

    def _compute_diff(
        self, attribute: Attribute, values: np.ndarray, histogram: Histogram
    ) -> float:
        if self.exact_diffs:
            base_values = self.database.column(attribute)
            return exact_diff(base_values, values)
        base = self.build_base(attribute)
        return approximate_diff(base.histogram, histogram)
