"""The ``diff_H`` discrepancy measure of Section 3.5.

``diff_H`` for ``H = SIT(R.a | Q)`` is half the L1 distance between the
normalized frequency distribution of ``R.a`` on the base table and on
``sigma_Q(T^x)``:

    diff_H = 1/2 * sum_x | f(R, x)/|R|  -  f(T', x)/|T'| |

The paper computes it either exactly from tuples or approximately by
manipulating the two histograms; both are provided.  NULLs are excluded
from both distributions (a NULL join key never reaches the expression
result anyway).
"""

from __future__ import annotations

import numpy as np

from repro.histograms.base import Histogram, values_and_frequencies
from repro.histograms.operations import variation_distance


def exact_diff(base_values: np.ndarray, expression_values: np.ndarray) -> float:
    """Exact total-variation distance between two value multisets."""
    base_distinct, base_counts, _ = values_and_frequencies(base_values)
    expr_distinct, expr_counts, _ = values_and_frequencies(expression_values)
    if base_counts.size == 0 and expr_counts.size == 0:
        return 0.0
    if base_counts.size == 0 or expr_counts.size == 0:
        return 1.0
    domain = np.union1d(base_distinct, expr_distinct)
    p = np.zeros(domain.size)
    q = np.zeros(domain.size)
    p[np.searchsorted(domain, base_distinct)] = base_counts / base_counts.sum()
    q[np.searchsorted(domain, expr_distinct)] = expr_counts / expr_counts.sum()
    return float(np.abs(p - q).sum() / 2.0)


def approximate_diff(base_histogram: Histogram, sit_histogram: Histogram) -> float:
    """Histogram-level approximation of ``diff_H`` (no raw tuples needed)."""
    return min(1.0, variation_distance(base_histogram, sit_histogram))
