"""SIT: a statistic (histogram) built on a query expression.

``SIT_R(a | p1, ..., pk)`` is a histogram over attribute ``a`` built on the
result of ``sigma_{p1 and ... and pk}(R^x)`` (Section 3.3 notation).  An
empty expression is an ordinary base-table histogram.

Each SIT also stores its ``diff`` value (Section 3.5): the variation
distance between the base-table distribution of ``a`` and the distribution
of ``a`` over the expression result.  ``diff`` is computed once at build
time and drives the ``Diff`` error function at estimation time with no
run-time overhead, exactly as the paper prescribes.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.predicates import Attribute, PredicateSet, tables_of
from repro.histograms.base import Histogram


@dataclass(frozen=True)
class SIT:
    """A statistic on a query expression."""

    attribute: Attribute
    expression: PredicateSet
    histogram: Histogram
    diff: float = 0.0

    #: tables of the generating expression plus the attribute's own table
    tables: frozenset[str] = field(default=frozenset())

    def __post_init__(self) -> None:
        expression = frozenset(self.expression)
        object.__setattr__(self, "expression", expression)
        tables = tables_of(expression) | {self.attribute.table}
        object.__setattr__(self, "tables", tables)
        if not 0.0 <= self.diff <= 1.0 + 1e-9:
            raise ValueError(f"diff must be in [0, 1], got {self.diff}")

    @property
    def is_base(self) -> bool:
        """True for an ordinary base-table histogram."""
        return not self.expression

    @property
    def join_count(self) -> int:
        return sum(1 for p in self.expression if p.is_join)

    def __str__(self) -> str:
        # str(sit) is a deterministic tie-breaker inside candidate ranking,
        # so it runs in the matching hot path; cache it on first use.
        cached = self.__dict__.get("_str")
        if cached is None:
            if self.is_base:
                cached = f"SIT({self.attribute})"
            else:
                expr = ", ".join(sorted(str(p) for p in self.expression))
                cached = f"SIT({self.attribute} | {expr})"
            object.__setattr__(self, "_str", cached)
        return cached
