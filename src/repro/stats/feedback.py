"""Execution-feedback corrections (LEO-style, related work [25]).

Stillger et al.'s LEO monitors executed queries and repairs cardinality
estimates from the observed truth.  The paper contrasts its own approach
(multiple context-dependent statistics per attribute) with LEO's single
adjusted histogram; this module implements the feedback idea *on top of*
SITs so the two are complementary:

* :class:`FeedbackRepository` records exact cardinalities observed during
  execution, keyed by the canonical predicate set;
* :class:`FeedbackEstimator` wraps any SIT-backed estimator and
  answers from feedback when the requested predicate set (or a
  table-disjoint composition of recorded sets — Property 2 makes that
  exact) has been observed, falling back to the SIT-based estimate
  otherwise.

Feedback entries are exact at recording time but go stale under updates;
the repository supports invalidation by table for that reason.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.core.predicates import (
    PredicateSet,
    connected_components,
    tables_of,
)
from repro.engine.executor import Executor
from repro.engine.expressions import Query

if TYPE_CHECKING:  # pragma: no cover - avoids a stats <-> core import cycle
    from repro.estimators.sit import SITEstimator


@dataclass
class FeedbackRepository:
    """Observed (predicate set -> exact cardinality) records."""

    _records: dict[PredicateSet, int] = field(default_factory=dict)
    hits: int = 0
    misses: int = 0

    def record(self, predicates: PredicateSet, cardinality: int) -> None:
        """Store an observed exact cardinality for a predicate set."""
        if cardinality < 0:
            raise ValueError("cardinality must be non-negative")
        self._records[frozenset(predicates)] = int(cardinality)

    def record_from_execution(
        self, executor: Executor, predicates: PredicateSet
    ) -> int:
        """Execute once, record the truth, return it."""
        cardinality = executor.cardinality(frozenset(predicates))
        self.record(predicates, cardinality)
        return cardinality

    def lookup(self, predicates: PredicateSet) -> int | None:
        """The recorded cardinality, or None (hit/miss counters update)."""
        value = self._records.get(frozenset(predicates))
        if value is None:
            self.misses += 1
        else:
            self.hits += 1
        return value

    def invalidate_table(self, table: str) -> int:
        """Drop all records touching ``table`` (data changed); returns the
        number of dropped records."""
        stale = [p for p in self._records if table in tables_of(p)]
        for predicates in stale:
            del self._records[predicates]
        return len(stale)

    def __len__(self) -> int:
        return len(self._records)


@dataclass
class FeedbackEstimator:
    """A cardinality estimator that prefers observed truth.

    Resolution order for a query over predicates ``P``:

    1. ``P`` recorded -> the exact observed cardinality;
    2. every connected component of ``P`` recorded -> the exact product
       (separable decomposition holds with no assumptions);
    3. otherwise the wrapped SIT-based estimate, with any recorded
       components substituted for their estimated factors.
    """

    base: "SITEstimator"
    feedback: FeedbackRepository = field(default_factory=FeedbackRepository)

    @property
    def database(self):
        return self.base.database

    def cardinality(self, query: Query) -> float:
        """Feedback-first cardinality (see class docstring for the order)."""
        predicates = query.predicates
        if not predicates:
            return float(self.database.cross_product_size(query.tables))
        exact = self.feedback.lookup(predicates)
        unreferenced = query.tables - tables_of(predicates)
        multiplier = float(self.database.cross_product_size(unreferenced))
        if exact is not None:
            return exact * multiplier
        cardinality = multiplier
        for component in connected_components(predicates):
            observed = self.feedback.lookup(component)
            if observed is not None:
                cardinality *= observed
            else:
                cardinality *= self.base.subquery_cardinality(
                    query, component
                ) / 1.0
        return cardinality

    def observe(self, executor: Executor, query: Query) -> int:
        """Execute ``query`` and feed the truth back (what a LEO-style
        monitor does after plan execution)."""
        return self.feedback.record_from_execution(executor, query.predicates)
