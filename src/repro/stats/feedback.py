"""Execution-feedback corrections (LEO-style, related work [25]).

Stillger et al.'s LEO monitors executed queries and repairs cardinality
estimates from the observed truth.  The paper contrasts its own approach
(multiple context-dependent statistics per attribute) with LEO's single
adjusted histogram; this module implements the feedback idea *on top of*
SITs so the two are complementary:

* :class:`FeedbackRepository` records exact cardinalities observed during
  execution, keyed by the canonical predicate set;
* :class:`FeedbackEstimator` wraps any SIT-backed estimator and
  answers from feedback when the requested predicate set (or a
  table-disjoint composition of recorded sets — Property 2 makes that
  exact) has been observed, falling back to the SIT-based estimate
  otherwise.

Feedback entries are exact at recording time but go stale under updates;
the repository supports invalidation by table for that reason.  Memory
is bounded: past ``max_entries`` records the least-recently-*used* entry
is evicted (a lookup hit refreshes recency), so a long-running monitor
keeps the records its workload still touches.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.core.predicates import (
    PredicateSet,
    connected_components,
    tables_of,
)
from repro.engine.executor import Executor
from repro.engine.expressions import Query

if TYPE_CHECKING:  # pragma: no cover - avoids a stats <-> core import cycle
    from repro.estimators.sit import SITEstimator

#: default bound on retained feedback records
DEFAULT_MAX_ENTRIES = 4096


@dataclass
class FeedbackRepository:
    """Observed (predicate set -> exact cardinality) records, LRU-bounded."""

    #: most-recently-used last (plain dicts preserve insertion order;
    #: hits re-insert to refresh recency)
    _records: dict[PredicateSet, int] = field(default_factory=dict)
    #: retained-record bound; the least-recently-used record is evicted
    #: when a new one would exceed it
    max_entries: int = DEFAULT_MAX_ENTRIES
    hits: int = 0
    misses: int = 0
    evictions: int = 0

    def __post_init__(self) -> None:
        if self.max_entries < 1:
            raise ValueError("max_entries must be >= 1")

    def record(self, predicates: PredicateSet, cardinality: int) -> None:
        """Store an observed exact cardinality for a predicate set,
        evicting the least-recently-used record past ``max_entries``."""
        if cardinality < 0:
            raise ValueError("cardinality must be non-negative")
        key = frozenset(predicates)
        self._records.pop(key, None)
        self._records[key] = int(cardinality)
        while len(self._records) > self.max_entries:
            oldest = next(iter(self._records))
            del self._records[oldest]
            self.evictions += 1

    def record_from_execution(
        self, executor: Executor, predicates: PredicateSet
    ) -> int:
        """Execute once, record the truth, return it."""
        cardinality = executor.cardinality(frozenset(predicates))
        self.record(predicates, cardinality)
        return cardinality

    def lookup(self, predicates: PredicateSet) -> int | None:
        """The recorded cardinality, or None (hit/miss counters update).

        A hit refreshes the record's recency, so working-set records
        survive the LRU bound.
        """
        key = frozenset(predicates)
        value = self._records.get(key)
        if value is None:
            self.misses += 1
        else:
            self.hits += 1
            del self._records[key]
            self._records[key] = value
        return value

    def invalidate_table(self, table: str) -> int:
        """Drop all records touching ``table`` (data changed); returns the
        number of dropped records."""
        stale = [p for p in self._records if table in tables_of(p)]
        for predicates in stale:
            del self._records[predicates]
        return len(stale)

    def counters(self) -> dict[str, float]:
        """Hit/miss/eviction accounting for the stats snapshot."""
        return {
            "feedback_entries": float(len(self._records)),
            "feedback_hits": float(self.hits),
            "feedback_misses": float(self.misses),
            "feedback_evictions": float(self.evictions),
        }

    def __len__(self) -> int:
        return len(self._records)


@dataclass
class FeedbackEstimator:
    """A cardinality estimator that prefers observed truth.

    Resolution order for a query over predicates ``P``:

    1. ``P`` recorded -> the exact observed cardinality;
    2. every connected component of ``P`` recorded -> the exact product
       (separable decomposition holds with no assumptions);
    3. otherwise the wrapped SIT-based estimate, with any recorded
       components substituted for their estimated factors.
    """

    base: "SITEstimator"
    feedback: FeedbackRepository = field(default_factory=FeedbackRepository)

    @property
    def database(self):
        return self.base.database

    def cardinality(self, query: Query) -> float:
        """Feedback-first cardinality (see class docstring for the order)."""
        predicates = query.predicates
        if not predicates:
            return float(self.database.cross_product_size(query.tables))
        exact = self.feedback.lookup(predicates)
        unreferenced = query.tables - tables_of(predicates)
        multiplier = float(self.database.cross_product_size(unreferenced))
        if exact is not None:
            return exact * multiplier
        cardinality = multiplier
        for component in connected_components(predicates):
            observed = self.feedback.lookup(component)
            if observed is not None:
                cardinality *= observed
            else:
                cardinality *= self.base.subquery_cardinality(
                    query, component
                ) / 1.0
        return cardinality

    def observe(self, executor: Executor, query: Query) -> int:
        """Execute ``query`` and feed the truth back (what a LEO-style
        monitor does after plan execution)."""
        return self.feedback.record_from_execution(executor, query.predicates)
