"""Serialization of SITs, pools and catalog documents.

Statistics are built once and used across many optimization sessions, so
they must survive a process restart.  The format is plain JSON — buckets
are small (≤ 200 per SIT) and portability beats compactness here.

Version 2 layout (the current writer)::

    {"version": 2,
     "catalog": {"catalog_version": 3,
                 "table_versions": {"orders": 1, ...}},
     "sits": [{"attribute": {"table": ..., "column": ...},
               "diff": 0.42,
               "expression": [<predicate>, ...],
               "histogram": {"null_count": 0.0,
                              "buckets": [[low, high, frequency, distinct], ...]},
               "meta": {"built_at": 1733.2,
                        "build_seconds": 0.004,
                        "build_method": "full" | "sampled",
                        "source_versions": {"orders": 1, ...}}},
              ...]}

Version 1 (the pre-catalog format) carried no ``catalog`` block and no
per-SIT ``meta``; it still loads through the explicit
:func:`migrate_v1_to_v2` step, which synthesizes conservative metadata
(``build_method="full"``, ``built_at=0.0``, empty source versions — i.e.
"provenance unknown, treat as potentially stale").

Predicates serialize as ``{"kind": "filter"|"join", ...}``.  Infinities
round-trip through the strings ``"-inf"``/``"inf"`` (JSON has no inf).

Crash safety (:mod:`repro.resilience`):

* **atomic saves** — :func:`save_document` / :func:`save_pool` write
  through :func:`atomic_write_text`: tempfile in the target directory,
  ``fsync``, then ``os.replace``.  A crash mid-save leaves either the
  old file or the new file, never a torn hybrid;
* **per-SIT checksums** — the v2 writer stamps every SIT record with a
  CRC-32 over its canonical JSON; :func:`decode_sit` verifies it, so a
  flipped bit inside a histogram surfaces as a typed
  :class:`PoolFormatError` instead of a silently wrong estimate.
  Records without a checksum (older v2 files, v1 migrations) still load;
* **load-time quarantine** — ``loads_document(text, quarantine=True)``
  salvages what it can from a torn or corrupt file: complete SIT
  records load, truncated/corrupt ones are skipped and reported in
  :attr:`CatalogDocument.quarantined` instead of failing the whole
  load.  The default stays strict (raise on first defect).
"""

from __future__ import annotations

import json
import math
import os
import pathlib
import re
import tempfile
import zlib
from dataclasses import dataclass, field
from typing import Any

from repro.resilience.faults import (
    POINT_CATALOG_LOAD,
    POINT_CATALOG_SAVE,
    active as _fault_plan,
)

from repro.core.predicates import (
    Attribute,
    FilterPredicate,
    JoinPredicate,
    Predicate,
)
from repro.histograms.base import Bucket, Histogram
from repro.stats.pool import SITPool
from repro.stats.sit import SIT

FORMAT_VERSION = 2
#: every version :func:`loads_pool` / :func:`loads_document` accepts
SUPPORTED_VERSIONS = (1, 2)


class PoolFormatError(ValueError):
    """Raised when a serialized pool cannot be decoded."""


def _encode_float(value: float) -> Any:
    if value == math.inf:
        return "inf"
    if value == -math.inf:
        return "-inf"
    return value


def _decode_float(value: Any) -> float:
    if value == "inf":
        return math.inf
    if value == "-inf":
        return -math.inf
    return float(value)


def _encode_predicate(predicate: Predicate) -> dict:
    if isinstance(predicate, FilterPredicate):
        return {
            "kind": "filter",
            "table": predicate.attribute.table,
            "column": predicate.attribute.column,
            "low": _encode_float(predicate.low),
            "high": _encode_float(predicate.high),
        }
    if isinstance(predicate, JoinPredicate):
        return {
            "kind": "join",
            "left_table": predicate.left.table,
            "left_column": predicate.left.column,
            "right_table": predicate.right.table,
            "right_column": predicate.right.column,
        }
    raise PoolFormatError(f"unknown predicate type {type(predicate).__name__}")


def _decode_predicate(data: dict) -> Predicate:
    kind = data.get("kind")
    if kind == "filter":
        return FilterPredicate(
            Attribute(data["table"], data["column"]),
            _decode_float(data["low"]),
            _decode_float(data["high"]),
        )
    if kind == "join":
        return JoinPredicate(
            Attribute(data["left_table"], data["left_column"]),
            Attribute(data["right_table"], data["right_column"]),
        )
    raise PoolFormatError(f"unknown predicate kind {kind!r}")


#: Public aliases: the wire protocol (:mod:`repro.service.protocol`)
#: reuses this codec for predicate-set request payloads, keeping one
#: canonical JSON spelling of a predicate across disk and wire.
encode_predicate = _encode_predicate
decode_predicate = _decode_predicate


def _encode_histogram(histogram: Histogram) -> dict:
    return {
        "null_count": histogram.null_count,
        "buckets": [
            [
                _encode_float(b.low),
                _encode_float(b.high),
                b.frequency,
                b.distinct,
            ]
            for b in histogram.buckets
        ],
    }


def _decode_histogram(data: dict) -> Histogram:
    try:
        buckets = [
            Bucket(
                _decode_float(low),
                _decode_float(high),
                float(frequency),
                float(distinct),
            )
            for low, high, frequency, distinct in data["buckets"]
        ]
        return Histogram(buckets, null_count=float(data.get("null_count", 0.0)))
    except (KeyError, TypeError, ValueError) as error:
        raise PoolFormatError(f"bad histogram payload: {error}") from error


# ----------------------------------------------------------------------
# Per-SIT build metadata (the catalog's provenance record)
# ----------------------------------------------------------------------
#: synthesized for v1 payloads and for SITs added without provenance
DEFAULT_SIT_META = {
    "built_at": 0.0,
    "build_seconds": 0.0,
    "build_method": "full",
    "source_versions": {},
}


def _sit_checksum(payload: dict) -> int:
    """CRC-32 of a SIT record's canonical JSON.

    Covers the estimate-affecting core (attribute, diff, expression,
    histogram); the advisory ``meta`` block and the ``checksum`` field
    itself are excluded, so v1→v2 migration (which synthesizes ``meta``)
    does not invalidate existing stamps and meta defects surface as
    *meta* errors rather than masquerading as corruption.
    """
    body = json.dumps(
        {
            key: value
            for key, value in payload.items()
            if key not in ("checksum", "meta")
        },
        sort_keys=True,
        separators=(",", ":"),
    )
    return zlib.crc32(body.encode("utf-8"))


def encode_sit(sit: SIT, meta: dict | None = None) -> dict:
    """Encode one SIT (plus optional catalog metadata) as a JSON dict.

    The record carries a ``checksum`` (CRC-32 over its canonical JSON)
    so load-time corruption is detected per SIT instead of poisoning
    whole-file loads.
    """
    payload = {
        "attribute": {"table": sit.attribute.table, "column": sit.attribute.column},
        "diff": sit.diff,
        "expression": [
            _encode_predicate(p) for p in sorted(sit.expression, key=str)
        ],
        "histogram": _encode_histogram(sit.histogram),
    }
    if meta is not None:
        payload["meta"] = {
            "built_at": float(meta.get("built_at", 0.0)),
            "build_seconds": float(meta.get("build_seconds", 0.0)),
            "build_method": str(meta.get("build_method", "full")),
            "source_versions": {
                str(table): int(version)
                for table, version in sorted(
                    dict(meta.get("source_versions", {})).items()
                )
            },
        }
    payload["checksum"] = _sit_checksum(payload)
    return payload


def decode_sit(data: dict) -> SIT:
    """Decode one SIT; raises :class:`PoolFormatError` on bad payloads.

    Records carrying a ``checksum`` are verified against it first —
    a mismatch means on-disk corruption and fails the record before any
    partially-decoded histogram can leak into a pool.  Records without
    one (older v2 files, v1 migrations) skip the check.
    """
    recorded = data.get("checksum")
    if recorded is not None:
        try:
            expected = int(recorded)
        except (TypeError, ValueError) as error:
            raise PoolFormatError(
                f"bad SIT checksum field: {recorded!r}"
            ) from error
        actual = _sit_checksum(data)
        if actual != expected:
            raise PoolFormatError(
                f"SIT checksum mismatch (stored {expected}, computed "
                f"{actual}): record is corrupt"
            )
    try:
        attribute = Attribute(
            data["attribute"]["table"], data["attribute"]["column"]
        )
        expression = frozenset(
            _decode_predicate(p) for p in data.get("expression", [])
        )
        return SIT(
            attribute,
            expression,
            _decode_histogram(data["histogram"]),
            diff=float(data.get("diff", 0.0)),
        )
    except (KeyError, TypeError) as error:
        raise PoolFormatError(f"bad SIT payload: {error}") from error


def decode_sit_meta(data: dict) -> dict:
    """The per-SIT ``meta`` block, defaults filled in."""
    meta = dict(DEFAULT_SIT_META)
    raw = data.get("meta")
    if isinstance(raw, dict):
        try:
            meta["built_at"] = float(raw.get("built_at", 0.0))
            meta["build_seconds"] = float(raw.get("build_seconds", 0.0))
            meta["build_method"] = str(raw.get("build_method", "full"))
            meta["source_versions"] = {
                str(table): int(version)
                for table, version in dict(
                    raw.get("source_versions", {})
                ).items()
            }
        except (TypeError, ValueError) as error:
            raise PoolFormatError(f"bad SIT meta payload: {error}") from error
    return meta


# ----------------------------------------------------------------------
# Versioning and migration
# ----------------------------------------------------------------------
def migrate_v1_to_v2(payload: dict) -> dict:
    """The explicit v1 → v2 migration.

    A v1 file predates the statistics catalog, so the migration
    synthesizes what v2 requires: an empty ``catalog`` block
    (``catalog_version`` 0, no table versions) and per-SIT default
    metadata marking the provenance as unknown (``built_at`` 0, full-scan
    build, no recorded source-table versions — a subsequent
    ``StatisticsCatalog.refresh`` will treat such SITs as up for rebuild
    only once a table update is actually observed).
    """
    if payload.get("version") != 1:
        raise PoolFormatError(
            f"migrate_v1_to_v2 expects a version-1 payload, got "
            f"{payload.get('version')!r}"
        )
    migrated = {
        "version": 2,
        "catalog": {"catalog_version": 0, "table_versions": {}},
        "sits": [
            {**entry, "meta": dict(DEFAULT_SIT_META)}
            for entry in payload.get("sits", [])
        ],
    }
    return migrated


def _checked_payload(text: str) -> dict:
    try:
        payload = json.loads(text)
    except json.JSONDecodeError as error:
        raise PoolFormatError(f"not valid JSON: {error}") from error
    if not isinstance(payload, dict):
        raise PoolFormatError("top-level payload must be an object")
    version = payload.get("version")
    if version not in SUPPORTED_VERSIONS:
        supported = ", ".join(str(v) for v in SUPPORTED_VERSIONS)
        raise PoolFormatError(
            f"unsupported format version {version!r}; "
            f"supported versions: {supported}"
        )
    if version == 1:
        payload = migrate_v1_to_v2(payload)
    return payload


# ----------------------------------------------------------------------
# Catalog documents: the full v2 unit of persistence
# ----------------------------------------------------------------------
@dataclass
class CatalogDocument:
    """The decoded contents of a v2 file (or a migrated v1 file).

    Plain data only — :class:`repro.catalog.StatisticsCatalog` turns a
    document into a live catalog and back, keeping this module free of a
    stats ↔ catalog import cycle.
    """

    sits: list[SIT] = field(default_factory=list)
    #: parallel to :attr:`sits`: the per-SIT ``meta`` dicts
    sit_meta: list[dict] = field(default_factory=list)
    table_versions: dict[str, int] = field(default_factory=dict)
    catalog_version: int = 0
    #: records skipped by a ``quarantine=True`` load: dicts with a
    #: ``reason`` and (for per-SIT defects) the record ``index``
    quarantined: list[dict] = field(default_factory=list)

    def pool(self) -> SITPool:
        return SITPool(list(self.sits))


def dumps_document(document: CatalogDocument) -> str:
    """Serialize a catalog document to a v2 JSON string."""
    if len(document.sit_meta) not in (0, len(document.sits)):
        raise PoolFormatError(
            "sit_meta must be empty or parallel to sits "
            f"({len(document.sit_meta)} metas for {len(document.sits)} sits)"
        )
    metas = document.sit_meta or [dict(DEFAULT_SIT_META)] * len(document.sits)
    payload = {
        "version": FORMAT_VERSION,
        "catalog": {
            "catalog_version": int(document.catalog_version),
            "table_versions": {
                str(table): int(version)
                for table, version in sorted(document.table_versions.items())
            },
        },
        "sits": [
            encode_sit(sit, meta) for sit, meta in zip(document.sits, metas)
        ],
    }
    return json.dumps(payload)


def _salvage_payload(text: str) -> tuple[dict, list[dict]]:
    """Best-effort recovery of a torn (truncated / trailing-garbage)
    document.

    A v2 file is one JSON object whose ``sits`` array dominates its
    size, so a torn write almost always truncates *inside* a SIT
    record.  The salvager re-parses the header blocks and then walks
    the ``sits`` array record by record with ``raw_decode``; every
    record that decodes completely is kept, the torn tail is reported.
    """
    decoder = json.JSONDecoder()
    notes: list[dict] = []
    version = FORMAT_VERSION
    match = re.search(r'"version"\s*:\s*(\d+)', text)
    if match:
        version = int(match.group(1))
    catalog_block: dict = {}
    catalog_index = text.find('"catalog"')
    if catalog_index != -1:
        brace = text.find("{", catalog_index + len('"catalog"'))
        if brace != -1:
            try:
                candidate, _ = decoder.raw_decode(text, brace)
                if isinstance(candidate, dict):
                    catalog_block = candidate
            except ValueError:
                notes.append({"index": None, "reason": "torn catalog block"})
    entries: list[dict] = []
    sits_index = text.find('"sits"')
    bracket = text.find("[", sits_index) if sits_index != -1 else -1
    if bracket != -1:
        position = bracket + 1
        while position < len(text):
            while position < len(text) and text[position] in " \t\r\n,":
                position += 1
            if position >= len(text) or text[position] != "{":
                break
            try:
                entry, position = decoder.raw_decode(text, position)
            except ValueError:
                notes.append(
                    {
                        "index": len(entries),
                        "reason": "torn SIT record (truncated mid-write)",
                    }
                )
                break
            if isinstance(entry, dict):
                entries.append(entry)
    payload = {"version": version, "catalog": catalog_block, "sits": entries}
    if version == 1:
        payload = migrate_v1_to_v2(payload)
    return payload, notes


def loads_document(text: str, *, quarantine: bool = False) -> CatalogDocument:
    """Deserialize a catalog document (v1 files migrate transparently).

    Strict by default: the first defect raises :class:`PoolFormatError`.
    With ``quarantine=True`` the loader degrades instead of failing —
    a torn file is salvaged record by record, and corrupt SITs (bad
    payloads, checksum mismatches) are skipped and reported in the
    document's :attr:`~CatalogDocument.quarantined` list.
    """
    notes: list[dict] = []
    try:
        payload = _checked_payload(text)
    except PoolFormatError as error:
        if not quarantine:
            raise
        payload, notes = _salvage_payload(text)
        notes.insert(0, {"index": None, "reason": f"document salvaged: {error}"})
    catalog = payload.get("catalog", {})
    if not isinstance(catalog, dict):
        if not quarantine:
            raise PoolFormatError("catalog block must be an object")
        notes.append({"index": None, "reason": "catalog block not an object"})
        catalog = {}
    try:
        table_versions = {
            str(table): int(version)
            for table, version in dict(
                catalog.get("table_versions", {})
            ).items()
        }
        catalog_version = int(catalog.get("catalog_version", 0))
    except (TypeError, ValueError) as error:
        if not quarantine:
            raise PoolFormatError(f"bad catalog block: {error}") from error
        notes.append({"index": None, "reason": f"bad catalog block: {error}"})
        table_versions = {}
        catalog_version = 0
    entries = payload.get("sits", [])
    sits: list[SIT] = []
    sit_meta: list[dict] = []
    for index, entry in enumerate(entries):
        try:
            sit = decode_sit(entry)
            meta = decode_sit_meta(entry)
        except PoolFormatError as error:
            if not quarantine:
                raise
            notes.append({"index": index, "reason": str(error)})
            continue
        sits.append(sit)
        sit_meta.append(meta)
    return CatalogDocument(
        sits=sits,
        sit_meta=sit_meta,
        table_versions=table_versions,
        catalog_version=catalog_version,
        quarantined=notes,
    )


# ----------------------------------------------------------------------
# Crash-safe file writes
# ----------------------------------------------------------------------
def atomic_write_text(path: str | pathlib.Path, text: str) -> None:
    """Write ``text`` to ``path`` atomically.

    Tempfile in the *same directory* (so the final rename cannot cross
    a filesystem boundary), ``fsync`` of the data, then ``os.replace``
    and a best-effort directory ``fsync``.  A crash at any point leaves
    either the previous file or the complete new one — never a torn
    hybrid (the torn-write regression tests pin this by construction).
    """
    target = pathlib.Path(path)
    directory = target.parent if str(target.parent) else pathlib.Path(".")
    handle, temp_name = tempfile.mkstemp(
        dir=str(directory), prefix=target.name + ".", suffix=".tmp"
    )
    try:
        with os.fdopen(handle, "w", encoding="utf-8") as stream:
            stream.write(text)
            stream.flush()
            os.fsync(stream.fileno())
        os.replace(temp_name, target)
    except BaseException:
        try:
            os.unlink(temp_name)
        except OSError:  # pragma: no cover - already renamed/removed
            pass
        raise
    directory_fd: int | None = None
    try:  # make the rename itself durable (best effort; not all
        # platforms allow opening directories)
        directory_fd = os.open(str(directory), os.O_RDONLY)
        os.fsync(directory_fd)
    except OSError:  # pragma: no cover - platform dependent
        pass
    finally:
        if directory_fd is not None:
            os.close(directory_fd)


def save_document(document: CatalogDocument, path: str | pathlib.Path) -> None:
    """Write a catalog document to ``path`` as v2 JSON (atomically)."""
    plan = _fault_plan()
    if plan is not None:
        # catalog-save injection point: the storage layer tears/fails
        # right as the document is persisted
        plan.check(POINT_CATALOG_SAVE, detail=str(path))
    atomic_write_text(path, dumps_document(document))


def load_document(
    path: str | pathlib.Path, *, quarantine: bool = False
) -> CatalogDocument:
    """Read a catalog document written by :func:`save_document` (or a
    v1 pool file, which migrates).  ``quarantine=True`` salvages torn
    or corrupt files instead of raising (see :func:`loads_document`)."""
    plan = _fault_plan()
    if plan is not None:
        plan.check(POINT_CATALOG_LOAD, detail=str(path))
    return loads_document(pathlib.Path(path).read_text(), quarantine=quarantine)


# ----------------------------------------------------------------------
# Pool-level convenience wrappers (the historical public surface)
# ----------------------------------------------------------------------
def dumps_pool(pool: SITPool) -> str:
    """Serialize a bare pool to a v2 JSON string (default metadata)."""
    return dumps_document(CatalogDocument(sits=list(pool)))


def loads_pool(text: str) -> SITPool:
    """Deserialize a pool from a JSON string (v1 or v2)."""
    return loads_document(text).pool()


def save_pool(pool: SITPool, path: str | pathlib.Path) -> None:
    """Write a pool to ``path`` as JSON (atomically; see
    :func:`atomic_write_text`)."""
    save_document(CatalogDocument(sits=list(pool)), path)


def load_pool(
    path: str | pathlib.Path, *, quarantine: bool = False
) -> SITPool:
    """Read a pool previously written by :func:`save_pool`."""
    return load_document(path, quarantine=quarantine).pool()
