"""Serialization of SITs, pools and catalog documents.

Statistics are built once and used across many optimization sessions, so
they must survive a process restart.  The format is plain JSON — buckets
are small (≤ 200 per SIT) and portability beats compactness here.

Version 2 layout (the current writer)::

    {"version": 2,
     "catalog": {"catalog_version": 3,
                 "table_versions": {"orders": 1, ...}},
     "sits": [{"attribute": {"table": ..., "column": ...},
               "diff": 0.42,
               "expression": [<predicate>, ...],
               "histogram": {"null_count": 0.0,
                              "buckets": [[low, high, frequency, distinct], ...]},
               "meta": {"built_at": 1733.2,
                        "build_seconds": 0.004,
                        "build_method": "full" | "sampled",
                        "source_versions": {"orders": 1, ...}}},
              ...]}

Version 1 (the pre-catalog format) carried no ``catalog`` block and no
per-SIT ``meta``; it still loads through the explicit
:func:`migrate_v1_to_v2` step, which synthesizes conservative metadata
(``build_method="full"``, ``built_at=0.0``, empty source versions — i.e.
"provenance unknown, treat as potentially stale").

Predicates serialize as ``{"kind": "filter"|"join", ...}``.  Infinities
round-trip through the strings ``"-inf"``/``"inf"`` (JSON has no inf).
"""

from __future__ import annotations

import json
import math
import pathlib
from dataclasses import dataclass, field
from typing import Any

from repro.core.predicates import (
    Attribute,
    FilterPredicate,
    JoinPredicate,
    Predicate,
)
from repro.histograms.base import Bucket, Histogram
from repro.stats.pool import SITPool
from repro.stats.sit import SIT

FORMAT_VERSION = 2
#: every version :func:`loads_pool` / :func:`loads_document` accepts
SUPPORTED_VERSIONS = (1, 2)


class PoolFormatError(ValueError):
    """Raised when a serialized pool cannot be decoded."""


def _encode_float(value: float) -> Any:
    if value == math.inf:
        return "inf"
    if value == -math.inf:
        return "-inf"
    return value


def _decode_float(value: Any) -> float:
    if value == "inf":
        return math.inf
    if value == "-inf":
        return -math.inf
    return float(value)


def _encode_predicate(predicate: Predicate) -> dict:
    if isinstance(predicate, FilterPredicate):
        return {
            "kind": "filter",
            "table": predicate.attribute.table,
            "column": predicate.attribute.column,
            "low": _encode_float(predicate.low),
            "high": _encode_float(predicate.high),
        }
    if isinstance(predicate, JoinPredicate):
        return {
            "kind": "join",
            "left_table": predicate.left.table,
            "left_column": predicate.left.column,
            "right_table": predicate.right.table,
            "right_column": predicate.right.column,
        }
    raise PoolFormatError(f"unknown predicate type {type(predicate).__name__}")


def _decode_predicate(data: dict) -> Predicate:
    kind = data.get("kind")
    if kind == "filter":
        return FilterPredicate(
            Attribute(data["table"], data["column"]),
            _decode_float(data["low"]),
            _decode_float(data["high"]),
        )
    if kind == "join":
        return JoinPredicate(
            Attribute(data["left_table"], data["left_column"]),
            Attribute(data["right_table"], data["right_column"]),
        )
    raise PoolFormatError(f"unknown predicate kind {kind!r}")


def _encode_histogram(histogram: Histogram) -> dict:
    return {
        "null_count": histogram.null_count,
        "buckets": [
            [
                _encode_float(b.low),
                _encode_float(b.high),
                b.frequency,
                b.distinct,
            ]
            for b in histogram.buckets
        ],
    }


def _decode_histogram(data: dict) -> Histogram:
    try:
        buckets = [
            Bucket(
                _decode_float(low),
                _decode_float(high),
                float(frequency),
                float(distinct),
            )
            for low, high, frequency, distinct in data["buckets"]
        ]
        return Histogram(buckets, null_count=float(data.get("null_count", 0.0)))
    except (KeyError, TypeError, ValueError) as error:
        raise PoolFormatError(f"bad histogram payload: {error}") from error


# ----------------------------------------------------------------------
# Per-SIT build metadata (the catalog's provenance record)
# ----------------------------------------------------------------------
#: synthesized for v1 payloads and for SITs added without provenance
DEFAULT_SIT_META = {
    "built_at": 0.0,
    "build_seconds": 0.0,
    "build_method": "full",
    "source_versions": {},
}


def encode_sit(sit: SIT, meta: dict | None = None) -> dict:
    """Encode one SIT (plus optional catalog metadata) as a JSON dict."""
    payload = {
        "attribute": {"table": sit.attribute.table, "column": sit.attribute.column},
        "diff": sit.diff,
        "expression": [
            _encode_predicate(p) for p in sorted(sit.expression, key=str)
        ],
        "histogram": _encode_histogram(sit.histogram),
    }
    if meta is not None:
        payload["meta"] = {
            "built_at": float(meta.get("built_at", 0.0)),
            "build_seconds": float(meta.get("build_seconds", 0.0)),
            "build_method": str(meta.get("build_method", "full")),
            "source_versions": {
                str(table): int(version)
                for table, version in sorted(
                    dict(meta.get("source_versions", {})).items()
                )
            },
        }
    return payload


def decode_sit(data: dict) -> SIT:
    """Decode one SIT; raises :class:`PoolFormatError` on bad payloads."""
    try:
        attribute = Attribute(
            data["attribute"]["table"], data["attribute"]["column"]
        )
        expression = frozenset(
            _decode_predicate(p) for p in data.get("expression", [])
        )
        return SIT(
            attribute,
            expression,
            _decode_histogram(data["histogram"]),
            diff=float(data.get("diff", 0.0)),
        )
    except (KeyError, TypeError) as error:
        raise PoolFormatError(f"bad SIT payload: {error}") from error


def decode_sit_meta(data: dict) -> dict:
    """The per-SIT ``meta`` block, defaults filled in."""
    meta = dict(DEFAULT_SIT_META)
    raw = data.get("meta")
    if isinstance(raw, dict):
        try:
            meta["built_at"] = float(raw.get("built_at", 0.0))
            meta["build_seconds"] = float(raw.get("build_seconds", 0.0))
            meta["build_method"] = str(raw.get("build_method", "full"))
            meta["source_versions"] = {
                str(table): int(version)
                for table, version in dict(
                    raw.get("source_versions", {})
                ).items()
            }
        except (TypeError, ValueError) as error:
            raise PoolFormatError(f"bad SIT meta payload: {error}") from error
    return meta


# ----------------------------------------------------------------------
# Versioning and migration
# ----------------------------------------------------------------------
def migrate_v1_to_v2(payload: dict) -> dict:
    """The explicit v1 → v2 migration.

    A v1 file predates the statistics catalog, so the migration
    synthesizes what v2 requires: an empty ``catalog`` block
    (``catalog_version`` 0, no table versions) and per-SIT default
    metadata marking the provenance as unknown (``built_at`` 0, full-scan
    build, no recorded source-table versions — a subsequent
    ``StatisticsCatalog.refresh`` will treat such SITs as up for rebuild
    only once a table update is actually observed).
    """
    if payload.get("version") != 1:
        raise PoolFormatError(
            f"migrate_v1_to_v2 expects a version-1 payload, got "
            f"{payload.get('version')!r}"
        )
    migrated = {
        "version": 2,
        "catalog": {"catalog_version": 0, "table_versions": {}},
        "sits": [
            {**entry, "meta": dict(DEFAULT_SIT_META)}
            for entry in payload.get("sits", [])
        ],
    }
    return migrated


def _checked_payload(text: str) -> dict:
    try:
        payload = json.loads(text)
    except json.JSONDecodeError as error:
        raise PoolFormatError(f"not valid JSON: {error}") from error
    if not isinstance(payload, dict):
        raise PoolFormatError("top-level payload must be an object")
    version = payload.get("version")
    if version not in SUPPORTED_VERSIONS:
        supported = ", ".join(str(v) for v in SUPPORTED_VERSIONS)
        raise PoolFormatError(
            f"unsupported format version {version!r}; "
            f"supported versions: {supported}"
        )
    if version == 1:
        payload = migrate_v1_to_v2(payload)
    return payload


# ----------------------------------------------------------------------
# Catalog documents: the full v2 unit of persistence
# ----------------------------------------------------------------------
@dataclass
class CatalogDocument:
    """The decoded contents of a v2 file (or a migrated v1 file).

    Plain data only — :class:`repro.catalog.StatisticsCatalog` turns a
    document into a live catalog and back, keeping this module free of a
    stats ↔ catalog import cycle.
    """

    sits: list[SIT] = field(default_factory=list)
    #: parallel to :attr:`sits`: the per-SIT ``meta`` dicts
    sit_meta: list[dict] = field(default_factory=list)
    table_versions: dict[str, int] = field(default_factory=dict)
    catalog_version: int = 0

    def pool(self) -> SITPool:
        return SITPool(list(self.sits))


def dumps_document(document: CatalogDocument) -> str:
    """Serialize a catalog document to a v2 JSON string."""
    if len(document.sit_meta) not in (0, len(document.sits)):
        raise PoolFormatError(
            "sit_meta must be empty or parallel to sits "
            f"({len(document.sit_meta)} metas for {len(document.sits)} sits)"
        )
    metas = document.sit_meta or [dict(DEFAULT_SIT_META)] * len(document.sits)
    payload = {
        "version": FORMAT_VERSION,
        "catalog": {
            "catalog_version": int(document.catalog_version),
            "table_versions": {
                str(table): int(version)
                for table, version in sorted(document.table_versions.items())
            },
        },
        "sits": [
            encode_sit(sit, meta) for sit, meta in zip(document.sits, metas)
        ],
    }
    return json.dumps(payload)


def loads_document(text: str) -> CatalogDocument:
    """Deserialize a catalog document (v1 files migrate transparently)."""
    payload = _checked_payload(text)
    catalog = payload.get("catalog", {})
    if not isinstance(catalog, dict):
        raise PoolFormatError("catalog block must be an object")
    try:
        table_versions = {
            str(table): int(version)
            for table, version in dict(
                catalog.get("table_versions", {})
            ).items()
        }
        catalog_version = int(catalog.get("catalog_version", 0))
    except (TypeError, ValueError) as error:
        raise PoolFormatError(f"bad catalog block: {error}") from error
    entries = payload.get("sits", [])
    return CatalogDocument(
        sits=[decode_sit(entry) for entry in entries],
        sit_meta=[decode_sit_meta(entry) for entry in entries],
        table_versions=table_versions,
        catalog_version=catalog_version,
    )


def save_document(document: CatalogDocument, path: str | pathlib.Path) -> None:
    """Write a catalog document to ``path`` as v2 JSON."""
    pathlib.Path(path).write_text(dumps_document(document))


def load_document(path: str | pathlib.Path) -> CatalogDocument:
    """Read a catalog document written by :func:`save_document` (or a
    v1 pool file, which migrates)."""
    return loads_document(pathlib.Path(path).read_text())


# ----------------------------------------------------------------------
# Pool-level convenience wrappers (the historical public surface)
# ----------------------------------------------------------------------
def dumps_pool(pool: SITPool) -> str:
    """Serialize a bare pool to a v2 JSON string (default metadata)."""
    return dumps_document(CatalogDocument(sits=list(pool)))


def loads_pool(text: str) -> SITPool:
    """Deserialize a pool from a JSON string (v1 or v2)."""
    return loads_document(text).pool()


def save_pool(pool: SITPool, path: str | pathlib.Path) -> None:
    """Write a pool to ``path`` as JSON."""
    pathlib.Path(path).write_text(dumps_pool(pool))


def load_pool(path: str | pathlib.Path) -> SITPool:
    """Read a pool previously written by :func:`save_pool`."""
    return loads_pool(pathlib.Path(path).read_text())
