"""Serialization of SITs and pools.

Statistics are built once and used across many optimization sessions, so
they must survive a process restart.  The format is plain JSON — buckets
are small (≤ 200 per SIT) and portability beats compactness here.

Layout::

    {"version": 1,
     "sits": [{"attribute": {"table": ..., "column": ...},
               "diff": 0.42,
               "expression": [<predicate>, ...],
               "histogram": {"null_count": 0.0,
                              "buckets": [[low, high, frequency, distinct], ...]}},
              ...]}

Predicates serialize as ``{"kind": "filter"|"join", ...}``.  Infinities
round-trip through the strings ``"-inf"``/``"inf"`` (JSON has no inf).
"""

from __future__ import annotations

import json
import math
import pathlib
from typing import Any

from repro.core.predicates import (
    Attribute,
    FilterPredicate,
    JoinPredicate,
    Predicate,
)
from repro.histograms.base import Bucket, Histogram
from repro.stats.pool import SITPool
from repro.stats.sit import SIT

FORMAT_VERSION = 1


class PoolFormatError(ValueError):
    """Raised when a serialized pool cannot be decoded."""


def _encode_float(value: float) -> Any:
    if value == math.inf:
        return "inf"
    if value == -math.inf:
        return "-inf"
    return value


def _decode_float(value: Any) -> float:
    if value == "inf":
        return math.inf
    if value == "-inf":
        return -math.inf
    return float(value)


def _encode_predicate(predicate: Predicate) -> dict:
    if isinstance(predicate, FilterPredicate):
        return {
            "kind": "filter",
            "table": predicate.attribute.table,
            "column": predicate.attribute.column,
            "low": _encode_float(predicate.low),
            "high": _encode_float(predicate.high),
        }
    if isinstance(predicate, JoinPredicate):
        return {
            "kind": "join",
            "left_table": predicate.left.table,
            "left_column": predicate.left.column,
            "right_table": predicate.right.table,
            "right_column": predicate.right.column,
        }
    raise PoolFormatError(f"unknown predicate type {type(predicate).__name__}")


def _decode_predicate(data: dict) -> Predicate:
    kind = data.get("kind")
    if kind == "filter":
        return FilterPredicate(
            Attribute(data["table"], data["column"]),
            _decode_float(data["low"]),
            _decode_float(data["high"]),
        )
    if kind == "join":
        return JoinPredicate(
            Attribute(data["left_table"], data["left_column"]),
            Attribute(data["right_table"], data["right_column"]),
        )
    raise PoolFormatError(f"unknown predicate kind {kind!r}")


def _encode_histogram(histogram: Histogram) -> dict:
    return {
        "null_count": histogram.null_count,
        "buckets": [
            [b.low, b.high, b.frequency, b.distinct] for b in histogram.buckets
        ],
    }


def _decode_histogram(data: dict) -> Histogram:
    try:
        buckets = [
            Bucket(float(low), float(high), float(frequency), float(distinct))
            for low, high, frequency, distinct in data["buckets"]
        ]
        return Histogram(buckets, null_count=float(data.get("null_count", 0.0)))
    except (KeyError, TypeError, ValueError) as error:
        raise PoolFormatError(f"bad histogram payload: {error}") from error


def encode_sit(sit: SIT) -> dict:
    """Encode one SIT as a JSON-serializable dict."""
    return {
        "attribute": {"table": sit.attribute.table, "column": sit.attribute.column},
        "diff": sit.diff,
        "expression": [
            _encode_predicate(p) for p in sorted(sit.expression, key=str)
        ],
        "histogram": _encode_histogram(sit.histogram),
    }


def decode_sit(data: dict) -> SIT:
    """Decode one SIT; raises :class:`PoolFormatError` on bad payloads."""
    try:
        attribute = Attribute(
            data["attribute"]["table"], data["attribute"]["column"]
        )
        expression = frozenset(
            _decode_predicate(p) for p in data.get("expression", [])
        )
        return SIT(
            attribute,
            expression,
            _decode_histogram(data["histogram"]),
            diff=float(data.get("diff", 0.0)),
        )
    except (KeyError, TypeError) as error:
        raise PoolFormatError(f"bad SIT payload: {error}") from error


def dumps_pool(pool: SITPool) -> str:
    """Serialize a pool to a JSON string."""
    payload = {
        "version": FORMAT_VERSION,
        "sits": [encode_sit(sit) for sit in pool],
    }
    return json.dumps(payload)


def loads_pool(text: str) -> SITPool:
    """Deserialize a pool from a JSON string."""
    try:
        payload = json.loads(text)
    except json.JSONDecodeError as error:
        raise PoolFormatError(f"not valid JSON: {error}") from error
    if not isinstance(payload, dict):
        raise PoolFormatError("top-level payload must be an object")
    version = payload.get("version")
    if version != FORMAT_VERSION:
        raise PoolFormatError(f"unsupported format version {version!r}")
    return SITPool([decode_sit(entry) for entry in payload.get("sits", [])])


def save_pool(pool: SITPool, path: str | pathlib.Path) -> None:
    """Write a pool to ``path`` as JSON."""
    pathlib.Path(path).write_text(dumps_pool(pool))


def load_pool(path: str | pathlib.Path) -> SITPool:
    """Read a pool previously written by :func:`save_pool`."""
    return loads_pool(pathlib.Path(path).read_text())
