"""The paper's synthetic snowflake database (Section 5, "Data Sets").

Eight tables in a snowflake around a ``sales`` fact table, with:

* **skewed foreign keys** — the number of fact tuples per dimension key
  follows a Zipfian distribution (the intro's "number of line-items for a
  given order follows a Zipfian distribution");
* **correlated attributes** — fact measures derive from dimension
  attributes through the foreign key (e.g. ``sales.price`` follows
  ``product.list_price``), so filters interact with joins;
* **dangling foreign keys** — a configurable 5-20% of fact tuples carry a
  NULL foreign key, chosen uniformly or correlated with an attribute, so
  some foreign-key joins violate referential integrity exactly as the
  paper's data does.

Row counts scale with ``config.scale`` (also settable via the
``REPRO_SCALE`` environment variable in the benchmark harness); the
default is laptop-sized while preserving the paper's 3-orders-of-magnitude
spread between the largest and smallest table.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.engine.database import Database, Table
from repro.engine.schema import ForeignKey, Schema, TableSchema

#: (table, rows at scale 1.0); the fact table is 2000x the smallest table.
_BASE_ROWS = {
    "sales": 20_000,
    "customer": 2_000,
    "product": 1_000,
    "store": 200,
    "promotion": 100,
    "nation": 50,
    "category": 40,
    "region": 10,
}


@dataclass(frozen=True)
class SnowflakeConfig:
    """Knobs of the synthetic database generator."""

    scale: float = 1.0
    seed: int = 42
    #: Zipf exponent for foreign-key frequency skew (0 = uniform).
    skew: float = 1.0
    #: fraction of fact-table foreign keys replaced by NULL (per FK edge
    #: listed in ``dangling_edges``); the paper uses 5%-20%.
    dangling_fraction: float = 0.10
    #: 'random' or 'correlated' (dangling rows are the highest-price sales)
    dangling_mode: str = "random"
    #: FK columns of ``sales`` that receive dangling NULLs
    dangling_edges: tuple[str, ...] = ("customer_id", "promotion_id")

    def __post_init__(self) -> None:
        if self.scale <= 0:
            raise ValueError("scale must be positive")
        if not 0.0 <= self.dangling_fraction < 1.0:
            raise ValueError("dangling_fraction must be in [0, 1)")
        if self.dangling_mode not in ("random", "correlated"):
            raise ValueError("dangling_mode must be 'random' or 'correlated'")


def snowflake_schema() -> Schema:
    """The 8-table snowflake schema with its 7 foreign-key edges."""
    schema = Schema()
    schema.add_table(
        TableSchema(
            "sales",
            (
                "customer_id",
                "product_id",
                "store_id",
                "promotion_id",
                "price",
                "quantity",
                "discount",
                "ship_days",
            ),
        )
    )
    schema.add_table(
        TableSchema(
            "customer",
            ("customer_id", "nation_id", "age", "income", "segment"),
            primary_key="customer_id",
        )
    )
    schema.add_table(
        TableSchema(
            "product",
            ("product_id", "category_id", "weight", "list_price"),
            primary_key="product_id",
        )
    )
    schema.add_table(
        TableSchema(
            "store",
            ("store_id", "size_sqft", "opened_year", "staff"),
            primary_key="store_id",
        )
    )
    schema.add_table(
        TableSchema(
            "promotion",
            ("promotion_id", "budget", "media_type", "duration"),
            primary_key="promotion_id",
        )
    )
    schema.add_table(
        TableSchema(
            "nation",
            ("nation_id", "region_id", "population", "gdp"),
            primary_key="nation_id",
        )
    )
    schema.add_table(
        TableSchema(
            "category",
            ("category_id", "margin", "shelf_level", "turnover"),
            primary_key="category_id",
        )
    )
    schema.add_table(
        TableSchema(
            "region",
            ("region_id", "climate", "tax_rate", "area"),
            primary_key="region_id",
        )
    )
    for fk in (
        ForeignKey("sales", "customer_id", "customer", "customer_id"),
        ForeignKey("sales", "product_id", "product", "product_id"),
        ForeignKey("sales", "store_id", "store", "store_id"),
        ForeignKey("sales", "promotion_id", "promotion", "promotion_id"),
        ForeignKey("customer", "nation_id", "nation", "nation_id"),
        ForeignKey("product", "category_id", "category", "category_id"),
        ForeignKey("nation", "region_id", "region", "region_id"),
    ):
        schema.add_foreign_key(fk)
    return schema


def _zipf_keys(rng: np.ndarray, count: int, domain: int, skew: float) -> np.ndarray:
    """``count`` foreign-key values over ``0..domain-1`` with Zipfian
    frequencies; the rank-to-key mapping is shuffled so key identity does
    not encode popularity."""
    ranks = np.arange(1, domain + 1, dtype=np.float64)
    weights = ranks ** (-skew) if skew > 0 else np.ones(domain)
    weights /= weights.sum()
    permutation = rng.permutation(domain)
    drawn = rng.choice(domain, size=count, p=weights)
    return permutation[drawn].astype(np.float64)


def generate_snowflake(config: SnowflakeConfig | None = None) -> Database:
    """Generate the full synthetic snowflake database."""
    config = config if config is not None else SnowflakeConfig()
    rng = np.random.default_rng(config.seed)
    rows = {
        name: max(4, int(round(base * config.scale)))
        for name, base in _BASE_ROWS.items()
    }
    schema = snowflake_schema()
    database = Database(schema)

    # --- region ------------------------------------------------------
    n = rows["region"]
    region = {
        "region_id": np.arange(n, dtype=np.float64),
        "climate": rng.integers(0, 5, n).astype(np.float64),
        "tax_rate": np.round(rng.uniform(5, 25, n)),
        "area": np.round(rng.lognormal(3.0, 1.0, n)),
    }
    database.add_table(Table(schema.table("region"), region))

    # --- nation: population correlated with region ------------------
    n = rows["nation"]
    nation_region = _zipf_keys(rng, n, rows["region"], config.skew * 0.6)
    nation = {
        "nation_id": np.arange(n, dtype=np.float64),
        "region_id": nation_region,
        "population": np.round(
            rng.lognormal(4.0, 0.8, n) * (1.0 + nation_region)
        ),
        "gdp": np.round(rng.lognormal(5.0, 1.0, n)),
    }
    database.add_table(Table(schema.table("nation"), nation))

    # --- category ----------------------------------------------------
    n = rows["category"]
    category = {
        "category_id": np.arange(n, dtype=np.float64),
        "margin": np.round(rng.uniform(5, 60, n)),
        "shelf_level": rng.integers(0, 4, n).astype(np.float64),
        "turnover": np.round(rng.lognormal(3.0, 0.7, n)),
    }
    database.add_table(Table(schema.table("category"), category))

    # --- promotion ---------------------------------------------------
    n = rows["promotion"]
    promotion = {
        "promotion_id": np.arange(n, dtype=np.float64),
        "budget": np.round(rng.lognormal(6.0, 1.2, n)),
        "media_type": rng.integers(0, 6, n).astype(np.float64),
        "duration": rng.integers(1, 60, n).astype(np.float64),
    }
    database.add_table(Table(schema.table("promotion"), promotion))

    # --- store -------------------------------------------------------
    n = rows["store"]
    store = {
        "store_id": np.arange(n, dtype=np.float64),
        "size_sqft": np.round(rng.lognormal(7.0, 0.5, n)),
        "opened_year": rng.integers(1970, 2004, n).astype(np.float64),
        "staff": np.round(rng.lognormal(2.5, 0.6, n)),
    }
    database.add_table(Table(schema.table("store"), store))

    # --- product: list_price skewed, weight correlated with category --
    n = rows["product"]
    product_category = _zipf_keys(rng, n, rows["category"], config.skew * 0.8)
    product = {
        "product_id": np.arange(n, dtype=np.float64),
        "category_id": product_category,
        "weight": np.round(rng.lognormal(1.5, 0.8, n) * (1 + product_category % 7)),
        "list_price": np.round(rng.lognormal(3.5, 1.0, n)),
    }
    database.add_table(Table(schema.table("product"), product))

    # --- customer: income correlated with nation ---------------------
    n = rows["customer"]
    customer_nation = _zipf_keys(rng, n, rows["nation"], config.skew)
    nation_income_level = rng.permutation(rows["nation"]).astype(np.float64)
    customer = {
        "customer_id": np.arange(n, dtype=np.float64),
        "nation_id": customer_nation,
        "age": rng.integers(18, 90, n).astype(np.float64),
        "income": np.round(
            rng.lognormal(3.0, 0.5, n)
            * (1.0 + nation_income_level[customer_nation.astype(int)])
        ),
        "segment": rng.integers(0, 5, n).astype(np.float64),
    }
    database.add_table(Table(schema.table("customer"), customer))

    # --- sales fact table --------------------------------------------
    n = rows["sales"]
    sales_customer = _zipf_keys(rng, n, rows["customer"], config.skew)
    sales_product = _zipf_keys(rng, n, rows["product"], config.skew)
    sales_store = _zipf_keys(rng, n, rows["store"], config.skew * 0.7)
    sales_promotion = _zipf_keys(rng, n, rows["promotion"], config.skew * 0.5)
    list_price = product["list_price"][sales_product.astype(int)]
    discount = np.round(rng.uniform(0, 50, n))
    price = np.round(list_price * (1.0 - discount / 200.0) + rng.normal(0, 2, n))
    price = np.maximum(price, 1.0)
    quantity = np.maximum(1.0, np.round(rng.lognormal(1.2, 0.7, n) * 50.0 / (price + 10.0)))
    sales = {
        "customer_id": sales_customer,
        "product_id": sales_product,
        "store_id": sales_store,
        "promotion_id": sales_promotion,
        "price": price,
        "quantity": quantity,
        "discount": discount,
        "ship_days": rng.integers(1, 30, n).astype(np.float64),
    }
    _apply_dangling(sales, config, rng)
    database.add_table(Table(schema.table("sales"), sales))
    return database


def _apply_dangling(
    sales: dict[str, np.ndarray], config: SnowflakeConfig, rng: np.random.Generator
) -> None:
    """Replace a fraction of fact foreign keys with NULL (NaN)."""
    if config.dangling_fraction <= 0.0:
        return
    n = len(sales["price"])
    k = int(round(n * config.dangling_fraction))
    if k == 0:
        return
    for column in config.dangling_edges:
        if column not in sales:
            raise ValueError(f"unknown dangling edge column {column!r}")
        if config.dangling_mode == "random":
            rows = rng.choice(n, size=k, replace=False)
        else:  # correlated: the most expensive sales dangle
            rows = np.argsort(sales["price"])[-k:]
        values = sales[column].copy()
        values[rows] = np.nan
        sales[column] = values
