"""Miniature TPC-H-style database for the paper's motivating example.

Figure 1 of the paper uses the query

    SELECT * FROM lineitem L, orders O, customer C
    WHERE L.orderkey = O.orderkey AND O.custkey = C.custkey
      AND C.nation = 'USA' AND O.total_price > 100K

over a *skewed* TPC-H instance where (i) the number of line-items per
order is Zipfian and expensive orders consist of many line-items, and
(ii) the majority of customers live in the US.  Under those two skews a
traditional optimizer underestimates the query cardinality badly, one SIT
fixes one skew source, and only using both SITs together (the paper's
conditional-selectivity framework) fixes both.

This generator reproduces both skew mechanisms with tunable strength.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.predicates import Attribute, FilterPredicate, JoinPredicate
from repro.engine.database import Database, Table
from repro.engine.expressions import Query
from repro.engine.schema import ForeignKey, Schema, TableSchema

#: numeric code of the dominant nation ('USA' in the paper's narrative)
USA = 0.0


@dataclass(frozen=True)
class TPCHConfig:
    """Skew knobs for the motivating-example database."""

    customers: int = 200
    orders: int = 1000
    seed: int = 17
    #: Zipf exponent for line-items-per-order (higher = more skew)
    lineitem_skew: float = 1.3
    #: Zipf exponent for orders-per-customer; frequent customers are
    #: preferentially in the dominant nation, so the nation filter
    #: correlates with the orders-customer join (the intro's second skew)
    order_skew: float = 1.1
    #: fraction of customers in the dominant nation
    usa_fraction: float = 0.75
    nations: int = 25


def tpch_schema() -> Schema:
    """The customer/orders/lineitem schema with its two FK edges."""
    schema = Schema()
    schema.add_table(
        TableSchema(
            "customer", ("custkey", "nation", "acctbal"), primary_key="custkey"
        )
    )
    schema.add_table(
        TableSchema(
            "orders",
            ("orderkey", "custkey", "total_price"),
            primary_key="orderkey",
        )
    )
    schema.add_table(
        TableSchema("lineitem", ("orderkey", "quantity", "extended_price"))
    )
    schema.add_foreign_key(ForeignKey("orders", "custkey", "customer", "custkey"))
    schema.add_foreign_key(ForeignKey("lineitem", "orderkey", "orders", "orderkey"))
    return schema


def generate_tpch(config: TPCHConfig | None = None) -> Database:
    """Generate the skewed mini TPC-H instance."""
    config = config if config is not None else TPCHConfig()
    rng = np.random.default_rng(config.seed)
    schema = tpch_schema()
    database = Database(schema)

    # customers: most live in the dominant nation
    n = config.customers
    nation = np.where(
        rng.random(n) < config.usa_fraction,
        USA,
        rng.integers(1, config.nations, n).astype(np.float64),
    )
    customer = {
        "custkey": np.arange(n, dtype=np.float64),
        "nation": nation,
        "acctbal": np.round(rng.lognormal(6.0, 1.0, n)),
    }
    database.add_table(Table(schema.table("customer"), customer))

    # orders: line-items per order Zipfian; total_price grows with the
    # number of line-items, so "expensive orders have many line-items".
    m = config.orders
    ranks = np.arange(1, m + 1, dtype=np.float64)
    weights = ranks ** (-config.lineitem_skew)
    weights /= weights.sum()
    expected_items = np.maximum(1, np.round(weights * m * 6)).astype(int)
    items_per_order = rng.permutation(expected_items)
    unit_price = rng.lognormal(3.0, 0.3, m)
    total_price = np.round(items_per_order * unit_price * 10)
    # Orders per customer are Zipfian, and the busy customers are mostly in
    # the dominant nation: nation = USA then correlates with the O-C join.
    customer_ranks = np.arange(1, n + 1, dtype=np.float64)
    customer_weights = customer_ranks ** (-config.order_skew)
    customer_weights /= customer_weights.sum()
    usa_customers = np.flatnonzero(nation == USA)
    other_customers = np.flatnonzero(nation != USA)
    rank_to_customer = np.concatenate(
        [rng.permutation(usa_customers), rng.permutation(other_customers)]
    )
    custkey = rank_to_customer[rng.choice(n, size=m, p=customer_weights)]
    orders = {
        "orderkey": np.arange(m, dtype=np.float64),
        "custkey": custkey.astype(np.float64),
        "total_price": total_price,
    }
    database.add_table(Table(schema.table("orders"), orders))

    # lineitems: exactly items_per_order[k] rows for order k
    orderkey = np.repeat(np.arange(m, dtype=np.float64), items_per_order)
    k = orderkey.size
    lineitem = {
        "orderkey": orderkey,
        "quantity": rng.integers(1, 50, k).astype(np.float64),
        "extended_price": np.round(rng.lognormal(3.0, 0.4, k) * 10),
    }
    database.add_table(Table(schema.table("lineitem"), lineitem))
    return database


def motivating_query(database: Database, price_quantile: float = 0.9) -> Query:
    """The Figure 1 query: both joins plus the two skew-correlated filters.

    ``total_price > (quantile)`` plays the paper's ``> 100K`` role and
    ``nation = USA`` the nation filter.
    """
    prices = database.column(Attribute("orders", "total_price"))
    threshold = float(np.quantile(prices, price_quantile))
    join_lo = JoinPredicate(
        Attribute("lineitem", "orderkey"), Attribute("orders", "orderkey")
    )
    join_oc = JoinPredicate(
        Attribute("orders", "custkey"), Attribute("customer", "custkey")
    )
    price_filter = FilterPredicate(
        Attribute("orders", "total_price"), threshold, float("inf")
    )
    nation_filter = FilterPredicate(Attribute("customer", "nation"), USA, USA)
    return Query.of(join_lo, join_oc, price_filter, nation_filter)
