"""Synthetic data and workload generation: the paper's snowflake database,
random SPJ workloads, and the motivating mini TPC-H instance."""

from repro.workload.queries import (
    WorkloadConfig,
    WorkloadGenerator,
    connected_subqueries,
)
from repro.workload.snowflake import (
    SnowflakeConfig,
    generate_snowflake,
    snowflake_schema,
)
from repro.workload.tpch import (
    TPCHConfig,
    generate_tpch,
    motivating_query,
    tpch_schema,
)

__all__ = [
    "SnowflakeConfig",
    "TPCHConfig",
    "WorkloadConfig",
    "WorkloadGenerator",
    "connected_subqueries",
    "generate_snowflake",
    "generate_tpch",
    "motivating_query",
    "snowflake_schema",
    "tpch_schema",
]
