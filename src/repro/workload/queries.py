"""Random SPJ workload generation (Section 5, "Workloads").

Each workload consists of randomly generated SPJ queries with ``J`` join
predicates (a connected subtree of the schema's foreign-key graph) and
``F`` filter predicates.  Filters target a base-table selectivity around
0.05 (the paper's default); when a generated query returns no tuples its
filter ranges are progressively stretched until at least one tuple
survives, as the paper prescribes.

The module also defines the *sub-query* universe used by the accuracy
metric: every predicate subset that forms a single table-connected
component — precisely the sub-plans an optimizer's memo enumerates.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import combinations

import numpy as np

from repro.core.predicates import (
    Attribute,
    FilterPredicate,
    JoinPredicate,
    PredicateSet,
    connected_components,
)
from repro.engine.database import Database
from repro.engine.executor import Executor
from repro.engine.expressions import Query


@dataclass(frozen=True)
class WorkloadConfig:
    """Shape of one generated workload."""

    join_count: int = 3
    filter_count: int = 3
    target_selectivity: float = 0.05
    seed: int = 7
    #: widen factor applied per stretch round when a query comes up empty
    stretch_factor: float = 1.6
    max_stretch_rounds: int = 30

    def __post_init__(self) -> None:
        if self.join_count < 0:
            raise ValueError("join_count must be non-negative")
        if self.filter_count < 0:
            raise ValueError("filter_count must be non-negative")
        if not 0.0 < self.target_selectivity <= 1.0:
            raise ValueError("target_selectivity must be in (0, 1]")


def _key_columns(database: Database) -> set[Attribute]:
    """Attributes acting as keys (PKs and FK endpoints) — not filterable."""
    keys: set[Attribute] = set()
    for table in database.schema.tables.values():
        if table.primary_key is not None:
            keys.add(Attribute(table.name, table.primary_key))
    for fk in database.schema.foreign_keys:
        keys.add(fk.source)
        keys.add(fk.target)
    return keys


class WorkloadGenerator:
    """Generates reproducible random SPJ workloads over a database."""

    def __init__(self, database: Database, config: WorkloadConfig):
        self.database = database
        self.config = config
        self._rng = np.random.default_rng(config.seed)
        self._executor = Executor(database)
        self._edges = [
            JoinPredicate(fk.source, fk.target)
            for fk in database.schema.foreign_keys
        ]
        if config.join_count > len(self._edges):
            raise ValueError(
                f"join_count {config.join_count} exceeds the schema's "
                f"{len(self._edges)} foreign-key edges"
            )
        keys = _key_columns(database)
        self._filterable: dict[str, list[Attribute]] = {}
        for table in database.schema.tables.values():
            columns = [a for a in table.attributes if a not in keys]
            if columns:
                self._filterable[table.name] = columns

    # ------------------------------------------------------------------
    def generate(self, count: int) -> list[Query]:
        """Generate ``count`` non-empty queries."""
        return [self.generate_one() for _ in range(count)]

    def generate_one(self) -> Query:
        """Generate one non-empty random SPJ query."""
        joins = self._random_join_subtree()
        filters = self._random_filters(joins)
        query = Query(frozenset(joins) | frozenset(filters))
        return self._ensure_non_empty(query)

    # ------------------------------------------------------------------
    def _random_join_subtree(self) -> list[JoinPredicate]:
        """A random connected subgraph with ``join_count`` edges, grown by
        repeatedly attaching a random incident edge."""
        target = self.config.join_count
        if target == 0:
            return []
        order = self._rng.permutation(len(self._edges))
        chosen = [self._edges[int(order[0])]]
        tables = set(chosen[0].tables)
        while len(chosen) < target:
            candidates = [
                edge
                for edge in self._edges
                if edge not in chosen and (edge.tables & tables)
            ]
            if not candidates:  # should not happen on a connected FK graph
                candidates = [e for e in self._edges if e not in chosen]
            edge = candidates[int(self._rng.integers(len(candidates)))]
            chosen.append(edge)
            tables.update(edge.tables)
        return chosen

    def _random_filters(self, joins: list[JoinPredicate]) -> list[FilterPredicate]:
        if joins:
            tables = sorted({t for j in joins for t in j.tables})
        else:
            tables = sorted(self._filterable)
        attributes = [a for t in tables for a in self._filterable.get(t, [])]
        if not attributes:
            return []
        count = min(self.config.filter_count, len(attributes))
        picked_indices = self._rng.choice(len(attributes), size=count, replace=False)
        return [self._filter_around_quantile(attributes[int(i)]) for i in picked_indices]

    def _filter_around_quantile(self, attribute: Attribute) -> FilterPredicate:
        """A range filter of ~``target_selectivity`` on the base table,
        centred at a random quantile of the (non-NULL) values."""
        values = self.database.column(attribute)
        values = np.sort(values[~np.isnan(values)])
        if values.size == 0:
            return FilterPredicate(attribute, 0.0, 0.0)
        width = self.config.target_selectivity
        start = float(self._rng.uniform(0.0, max(1e-9, 1.0 - width)))
        low = float(values[int(start * (values.size - 1))])
        high = float(values[int(min(1.0, start + width) * (values.size - 1))])
        if high < low:
            low, high = high, low
        return FilterPredicate(attribute, low, high)

    def _ensure_non_empty(self, query: Query) -> Query:
        """Stretch filter ranges until the query returns at least one tuple."""
        executor = self._executor
        current = query
        for _ in range(self.config.max_stretch_rounds):
            if executor.cardinality(current.predicates) > 0:
                return current
            stretched: set = set(current.joins)
            for predicate in current.filters:
                stretched.add(self._stretch(predicate))
            widened = Query(frozenset(stretched))
            if widened.predicates == current.predicates:
                break
            current = widened
        if executor.cardinality(current.predicates) == 0:
            # Last resort: drop the filters entirely (joins stay).
            current = Query(current.joins)
        return current

    def _stretch(self, predicate: FilterPredicate) -> FilterPredicate:
        values = self.database.column(predicate.attribute)
        values = values[~np.isnan(values)]
        lo_bound = float(values.min()) if values.size else predicate.low
        hi_bound = float(values.max()) if values.size else predicate.high
        width = max(predicate.high - predicate.low, 1.0)
        grow = width * (self.config.stretch_factor - 1.0) / 2.0
        return FilterPredicate(
            predicate.attribute,
            max(lo_bound, predicate.low - grow),
            min(hi_bound, predicate.high + grow),
        )


# ----------------------------------------------------------------------
# The sub-query universe for accuracy metrics
# ----------------------------------------------------------------------
def connected_subqueries(
    query: Query, max_count: int | None = None, seed: int = 0
) -> list[PredicateSet]:
    """All non-empty predicate subsets forming one connected component.

    These are the sub-plans an optimizer would materialize in its memo.
    With ``max_count`` the list is down-sampled deterministically (the full
    query itself is always kept).
    """
    items = sorted(query.predicates, key=str)
    subsets: list[PredicateSet] = []
    for size in range(1, len(items) + 1):
        for combo in combinations(items, size):
            candidate = frozenset(combo)
            if len(connected_components(candidate)) == 1:
                subsets.append(candidate)
    if max_count is not None and len(subsets) > max_count:
        rng = np.random.default_rng(seed)
        keep = rng.choice(len(subsets) - 1, size=max_count - 1, replace=False)
        sampled = [subsets[int(i)] for i in sorted(keep)]
        sampled.append(subsets[-1])  # the full query
        subsets = sampled
    return subsets
